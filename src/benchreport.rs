//! `ssp bench report` — the perf-trajectory service over
//! `BENCH_history.jsonl`.
//!
//! Where `bench-diff` compares exactly two artifacts under one global
//! threshold, this module reads the *whole* accumulated trajectory and
//! renders, per cell and per `*_ms` metric, a unicode sparkline across
//! revisions together with best/latest/delta columns — and judges the
//! latest point against the cell's own **history-calibrated noise band**
//! (`ssp_probe::calib`, robust dispersion over a trailing window) instead
//! of a one-size-fits-all percentage. A 6 µs cell and a 1.3 s cell each
//! get the band their own run-to-run noise earns.
//!
//! Flagged rows are linked to root causes when the bench harness attached
//! a probe trace (see `ssp_bench::trajectory`): the report looks for
//! `<trace_dir>/<bench>__<key>.jsonl`, diffs it against
//! `<trace_dir>/baseline/<same>.jsonl` when a baseline exists, and folds
//! the hottest spans otherwise — so "got slower" comes annotated with
//! "which span / which counter".

use crate::benchdata::BenchRun;
use std::fmt::Write as _;

/// Trailing history runs a cell's noise band is calibrated over (matches
/// `ssp_bench::trajectory::DEFAULT_WINDOW`).
pub const DEFAULT_WINDOW: usize = 8;

/// Default noise floor in milliseconds (same convention as `bench-diff`).
pub const DEFAULT_MIN_MS: f64 = 0.05;

/// Sparkline width cap: only the trailing this-many points are drawn.
const SPARK_POINTS: usize = 24;

/// One (bench, cell, metric) trajectory with its calibrated verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Bench id the cell belongs to.
    pub bench: String,
    /// Cell key (`family=...,n=...`).
    pub key: String,
    /// Metric name (`fast_ms`, ...).
    pub metric: String,
    /// Finite samples in run order (runs missing the metric are skipped).
    pub series: Vec<f64>,
    /// Fastest point ever seen.
    pub best: f64,
    /// The most recent point.
    pub latest: f64,
    /// Median of the trailing window *before* the latest point; `None`
    /// when the trajectory has a single point (nothing to compare).
    pub baseline: Option<f64>,
    /// Calibrated relative band over that window.
    pub band: f64,
    /// `latest/baseline - 1`, when a baseline exists.
    pub delta: Option<f64>,
    /// Latest point crossed the calibrated band (above the noise floor).
    pub flagged: bool,
}

/// Fold parsed history runs into per-cell metric trajectories, verdicting
/// each latest point against the median and [`ssp_probe::calib`] band of
/// the `window` points preceding it. Rows appear in first-seen order
/// (bench, then cell, then metric).
pub fn trajectory_rows(runs: &[BenchRun], window: usize, min_ms: f64) -> Vec<MetricRow> {
    let mut rows: Vec<MetricRow> = Vec::new();
    for run in runs {
        for cell in &run.cells {
            for &(ref metric, value) in &cell.metrics {
                if !value.is_finite() {
                    continue;
                }
                let found = rows
                    .iter_mut()
                    .find(|r| r.bench == run.bench && r.key == cell.key && &r.metric == metric);
                match found {
                    Some(row) => row.series.push(value),
                    None => rows.push(MetricRow {
                        bench: run.bench.clone(),
                        key: cell.key.clone(),
                        metric: metric.clone(),
                        series: vec![value],
                        best: 0.0,
                        latest: 0.0,
                        baseline: None,
                        band: 0.0,
                        delta: None,
                        flagged: false,
                    }),
                }
            }
        }
    }
    for row in &mut rows {
        let n = row.series.len();
        row.latest = row.series[n - 1];
        row.best = row.series.iter().copied().fold(f64::INFINITY, f64::min);
        let prior = &row.series[..n - 1];
        let start = prior.len().saturating_sub(window.max(1));
        let trailing = &prior[start..];
        row.baseline = ssp_probe::calib::median(trailing);
        row.band = ssp_probe::calib::noise_band(trailing);
        if let Some(baseline) = row.baseline {
            row.delta = Some(row.latest / baseline - 1.0);
            row.flagged = ssp_probe::calib::crosses(row.latest, baseline, row.band, min_ms);
        }
    }
    rows
}

/// Render a series as a unicode sparkline (trailing `SPARK_POINTS`
/// points, min-max normalized; a flat series draws mid-height blocks).
pub fn sparkline(series: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let start = series.len().saturating_sub(SPARK_POINTS);
    let tail = &series[start..];
    let lo = tail.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    tail.iter()
        .map(|v| {
            if hi <= lo {
                BLOCKS[3]
            } else {
                let t = (v - lo) / (hi - lo);
                BLOCKS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Number of flagged rows.
pub fn flagged(rows: &[MetricRow]) -> usize {
    rows.iter().filter(|r| r.flagged).count()
}

/// Render the trajectory table, either as aligned text or as a
/// GitHub-flavored markdown table (one table per bench in both cases).
pub fn render(rows: &[MetricRow], markdown: bool) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("no bench_run lines in the trajectory\n");
        return out;
    }
    let mut benches: Vec<&str> = Vec::new();
    for row in rows {
        if !benches.contains(&row.bench.as_str()) {
            benches.push(&row.bench);
        }
    }
    for bench in benches {
        let bench_rows: Vec<&MetricRow> = rows.iter().filter(|r| r.bench == bench).collect();
        if markdown {
            let _ = writeln!(out, "### {bench}\n");
            let _ = writeln!(
                out,
                "| cell | metric | runs | trend | best | latest | delta | band | |"
            );
            let _ = writeln!(out, "|---|---|---:|---|---:|---:|---:|---:|---|");
            for r in bench_rows {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {:.4} | {:.4} | {} | {} | {} |",
                    r.key,
                    r.metric,
                    r.series.len(),
                    sparkline(&r.series),
                    r.best,
                    r.latest,
                    delta_cell(r),
                    band_cell(r),
                    if r.flagged { "**regressed**" } else { "" }
                );
            }
            out.push('\n');
        } else {
            let _ = writeln!(out, "bench {bench}");
            let _ = writeln!(
                out,
                "  {:<34} {:<16} {:>4} {:<24} {:>10} {:>10} {:>8} {:>6}",
                "cell", "metric", "runs", "trend", "best", "latest", "delta", "band"
            );
            for r in bench_rows {
                let _ = writeln!(
                    out,
                    "  {:<34} {:<16} {:>4} {:<24} {:>10.4} {:>10.4} {:>8} {:>6}{}",
                    r.key,
                    r.metric,
                    r.series.len(),
                    sparkline(&r.series),
                    r.best,
                    r.latest,
                    delta_cell(r),
                    band_cell(r),
                    if r.flagged { " !" } else { "" }
                );
            }
        }
    }
    let n = flagged(rows);
    let _ = writeln!(
        out,
        "{n} regression(s) past the history-calibrated band{}",
        if markdown { "" } else { " (flagged with !)" }
    );
    out
}

fn delta_cell(r: &MetricRow) -> String {
    match r.delta {
        Some(d) => format!("{:+.1}%", d * 100.0),
        None => "-".to_string(),
    }
}

fn band_cell(r: &MetricRow) -> String {
    if r.baseline.is_some() {
        format!("{:.0}%", r.band * 100.0)
    } else {
        "-".to_string()
    }
}

/// A cell key as a filesystem-safe file stem — the same convention
/// `ssp_bench::trajectory::sanitize_key` applies on the writer side
/// (asserted equivalent by the round-trip in EXP-25).
pub fn sanitize_key(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render the root-cause section for flagged rows: for every flagged cell
/// with an attached trace under `dir`, either a span/counter/histogram
/// diff against `dir/baseline/<same file>` (when a baseline trace exists)
/// or the hottest folded stacks of the attached trace alone. Cells
/// without an attachment are listed so the absence is visible.
pub fn render_attachments(rows: &[MetricRow], dir: &str) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    for row in rows.iter().filter(|r| r.flagged) {
        let stem = format!("{}__{}.jsonl", row.bench, sanitize_key(&row.key));
        if seen.contains(&stem) {
            continue;
        }
        seen.push(stem.clone());
        if out.is_empty() {
            out.push_str("attached traces:\n");
        }
        let path = std::path::Path::new(dir).join(&stem);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                let _ = writeln!(
                    out,
                    "  {} {}: no attached trace ({} not found)",
                    row.bench,
                    row.key,
                    path.display()
                );
                continue;
            }
        };
        let trace = match ssp_probe::Trace::parse(&text) {
            Ok(trace) => trace,
            Err(e) => {
                let _ = writeln!(out, "  {} {}: unreadable trace: {e}", row.bench, row.key);
                continue;
            }
        };
        let base_path = std::path::Path::new(dir).join("baseline").join(&stem);
        let base = std::fs::read_to_string(&base_path)
            .ok()
            .and_then(|t| ssp_probe::Trace::parse(&t).ok());
        match base {
            Some(base) => {
                let _ = writeln!(
                    out,
                    "  {} {}: trace diff vs baseline (threshold = calibrated band {:.0}%)",
                    row.bench,
                    row.key,
                    row.band * 100.0
                );
                for line in ssp_probe::diff(&base, &trace, row.band).lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {} {}: hottest spans of the attached trace (no baseline at {})",
                    row.bench,
                    row.key,
                    base_path.display()
                );
                for line in hottest_folded(&trace, 10) {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
    }
    out
}

/// The `fold` output of a trace, sorted by self time, truncated to `top`
/// stacks.
fn hottest_folded(trace: &ssp_probe::Trace, top: usize) -> Vec<String> {
    let self_ns = |line: &str| -> u64 {
        line.rsplit(' ')
            .next()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    let mut lines: Vec<String> = trace.folded().lines().map(str::to_string).collect();
    lines.sort_by_key(|l| std::cmp::Reverse(self_ns(l)));
    lines.truncate(top);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchdata::parse_history;

    fn history(bench: &str, values: &[f64]) -> String {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                format!(
                    "{{\"type\":\"bench_run\",\"bench\":\"{bench}\",\"rev\":\"r{i}\",\"cells\":[{{\"family\":\"agreeable\",\"n\":200,\"fast_ms\":{v}}}]}}"
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn calibrated_band_flags_step_but_not_noise() {
        // ±2% noise then a 20% step: flagged.
        let step = history("yds_kernel", &[0.100, 0.102, 0.098, 0.101, 0.099, 0.120]);
        let (runs, _) = parse_history(&step);
        let rows = trajectory_rows(&runs, DEFAULT_WINDOW, DEFAULT_MIN_MS);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.key, "family=agreeable,n=200");
        assert_eq!(r.series.len(), 6);
        assert!((r.latest - 0.120).abs() < 1e-12);
        assert!((r.best - 0.098).abs() < 1e-12);
        assert!(r.flagged, "20% step must cross the band: {r:?}");
        assert!(render(&rows, false).contains(" !"));
        // The same history ending inside the noise: clean.
        let quiet = history("yds_kernel", &[0.100, 0.102, 0.098, 0.101, 0.099, 0.101]);
        let (runs, _) = parse_history(&quiet);
        let rows = trajectory_rows(&runs, DEFAULT_WINDOW, DEFAULT_MIN_MS);
        assert!(!rows[0].flagged, "{:?}", rows[0]);
        assert!(render(&rows, false).contains("0 regression(s)"));
    }

    #[test]
    fn single_point_and_sub_floor_rows_never_flag() {
        let (runs, _) = parse_history(&history("b", &[0.5]));
        let rows = trajectory_rows(&runs, DEFAULT_WINDOW, DEFAULT_MIN_MS);
        assert_eq!(rows[0].baseline, None);
        assert!(!rows[0].flagged);
        assert!(render(&rows, false).contains('-'), "dash for no baseline");
        // 3x slowdown under the floor: visible delta, no flag.
        let (runs, _) = parse_history(&history("b", &[0.010, 0.010, 0.010, 0.030]));
        let rows = trajectory_rows(&runs, DEFAULT_WINDOW, DEFAULT_MIN_MS);
        assert!(!rows[0].flagged);
        assert_eq!(rows[0].delta.map(|d| d > 1.9), Some(true));
    }

    #[test]
    fn sparkline_normalizes_and_caps() {
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▄▄▄");
        let line = sparkline(&[0.0, 1.0]);
        assert_eq!(line.chars().count(), 2);
        assert!(line.starts_with('▁') && line.ends_with('█'));
        let long: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(sparkline(&long).chars().count(), SPARK_POINTS);
    }

    #[test]
    fn markdown_renders_github_table() {
        let (runs, _) = parse_history(&history("yds_kernel", &[0.1, 0.1, 0.1, 0.2]));
        let md = render(&trajectory_rows(&runs, 8, 0.05), true);
        assert!(md.contains("### yds_kernel"));
        assert!(md.contains("| cell | metric | runs | trend | best | latest | delta | band | |"));
        assert!(md.contains("**regressed**"));
    }

    #[test]
    fn attachments_fold_without_baseline_and_diff_with_one() {
        let dir = std::env::temp_dir().join(format!("ssp_report_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("baseline")).unwrap();
        let (runs, _) = parse_history(&history("yds_kernel", &[0.1, 0.1, 0.1, 0.2]));
        let rows = trajectory_rows(&runs, 8, 0.05);
        assert_eq!(flagged(&rows), 1);
        let dir_s = dir.to_string_lossy().into_owned();

        // No attachment at all: the absence is reported.
        let out = render_attachments(&rows, &dir_s);
        assert!(out.contains("no attached trace"), "{out}");

        // Attachment without baseline: hottest folded stacks.
        let stem = "yds_kernel__family_agreeable_n_200.jsonl";
        let trace_text = "{\"type\":\"meta\",\"version\":2,\"spans\":2,\"counters\":1,\"hists\":0}\n\
             {\"type\":\"span\",\"id\":1,\"parent\":0,\"thread\":1,\"name\":\"yds\",\"start_ns\":0,\"end_ns\":9000}\n\
             {\"type\":\"span\",\"id\":2,\"parent\":1,\"thread\":1,\"name\":\"yds.peel\",\"start_ns\":100,\"end_ns\":8100}\n\
             {\"type\":\"counter\",\"name\":\"yds.peels\",\"value\":40}\n";
        std::fs::write(dir.join(stem), trace_text).unwrap();
        let out = render_attachments(&rows, &dir_s);
        assert!(out.contains("hottest spans"), "{out}");
        assert!(out.contains("yds;yds.peel"), "folded stack present: {out}");

        // With a (faster) baseline: an in-process trace diff names the span.
        let base_text = trace_text
            .replace("\"end_ns\":9000", "\"end_ns\":4000")
            .replace("\"end_ns\":8100", "\"end_ns\":3100")
            .replace("\"value\":40", "\"value\":20");
        std::fs::write(dir.join("baseline").join(stem), base_text).unwrap();
        let out = render_attachments(&rows, &dir_s);
        assert!(out.contains("trace diff vs baseline"), "{out}");
        assert!(out.contains("yds.peel"), "{out}");
        assert!(out.contains('!'), "slowdown flagged in the diff: {out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
