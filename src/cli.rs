//! Implementation of the `speedscale` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin wrapper around [`run`], so the whole
//! CLI surface is unit-testable without spawning processes.
//!
//! ```text
//! speedscale info <instance.ssp>
//! speedscale generate <family> --n N --m M [--alpha A] [--seed S] [-o FILE]
//! speedscale solve <instance.ssp> [--algo NAME] [--gantt] [--svg OUT.svg]
//! speedscale budget <instance.ssp> --energy E [--gantt]
//! speedscale compare <instance.ssp>
//! speedscale analyze <instance.ssp> [--algo NAME]
//! speedscale swf <trace.swf> [-o FILE]
//! speedscale quantize <instance.ssp> --levels K
//! ```
//!
//! Algorithms: `rr`, `classified`, `least-loaded`, `relax`, `greedy`,
//! `local` (greedy + local search), `exact` (n ≤ 16), `bal` (migratory),
//! `avr`, `oa` (online, migratory).

use ssp_core::assignment::{assignment_schedule, Assignment};
use ssp_core::classified::classified_assignment;
use ssp_core::exact::exact_nonmigratory;
use ssp_core::list::{least_loaded, marginal_energy_greedy};
use ssp_core::online::{avr_m, oa_m};
use ssp_core::relax::relax_round;
use ssp_core::rr::rr_assignment;
use ssp_migratory::bal::bal;
use ssp_migratory::mbal::mbal;
use ssp_model::render::{gantt, GanttOptions};
use ssp_model::{io, Instance, Schedule};
use ssp_workloads::families;
use std::fmt::Write as _;

/// CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code to use.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }
    fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

/// Entry point: interpret `args` (without the program name) and return the
/// text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        Some("info") => info(&collect(args)?),
        Some("generate") => generate(&collect(args)?),
        Some("solve") => solve(&collect(args)?),
        Some("budget") => budget(&collect(args)?),
        Some("compare") => compare(&collect(args)?),
        Some("analyze") => analyze(&collect(args)?),
        Some("swf") => swf_import(&collect(args)?),
        Some("quantize") => quantize_cmd(&collect(args)?),
        Some("trace") => trace_cmd(&collect(args)?),
        Some("bench-diff") => bench_diff_cmd(&collect(args)?),
        Some("bench") => bench_cmd(&collect(args)?),
        Some("serve") => serve_cmd(&collect(args)?),
        Some("serve-drive") => serve_drive_cmd(&collect(args)?),
        Some("stream") => stream_cmd(&collect(args)?),
        Some("help") | Some("-h") | Some("--help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
speedscale — energy-minimal deadline scheduling on speed-scaled processors

commands:
  info <file>                         inspect an instance file
  generate <family> --n N --m M       generate a workload
           [--alpha A] [--seed S] [-o FILE]
           families: unit-agreeable | unit-arbitrary | weighted-agreeable
                     | general | bursty
  solve <file> [--algo NAME] [--no-fallback] [--gantt] [--width W]
        [--svg OUT.svg] [--telemetry OUT.jsonl] [--timings]
        [--timeout-ms MS] [--retries N] [--inject-transient K]
           algos: rr | classified | least-loaded | relax | greedy | local
                  | exact | bal | avr | oa        (default: rr)
           failures degrade through local → greedy → least-loaded → rr
           unless --no-fallback is given
           --telemetry writes the probe trace (spans + counters) as JSONL;
           --timings prints the phase table (see docs/OBSERVABILITY.md)
           --timeout-ms sets a wall-clock deadline observed inside solver
           loops; --retries retries transient failures with backoff;
           --inject-transient fails the first K attempts (testing hook)
  budget <file> --energy E [--gantt] [--non-migratory]
                                      minimize makespan under an energy budget
  compare <file>                      run every algorithm, print the scoreboard
  analyze <file> [--algo NAME]        utilization, response times, power profile
  swf <trace.swf> [--machines M] [--alpha A] [--laxity L] [--max-jobs K]
      [--time-scale S] [-o FILE]      import an SWF trace into instance format
  quantize <file> [--algo NAME] --levels K
                                      schedule, then restrict speeds to a
                                      K-level geometric DVFS grid; report the
                                      energy overhead
  trace report <trace.jsonl>          span tree with self/total time, counter,
                                      histogram and allocation tables
  trace diff <old.jsonl> <new.jsonl> [--threshold PCT]
                                      per-span / per-counter deltas between two
                                      traces; rows past PCT% (default 10) are
                                      flagged with '!'
  trace fold <trace.jsonl>            flamegraph folded-stack output
                                      (one 'stack;path self_ns' line per span)
  bench-diff <old> <new> [--threshold PCT] [--min-ms X]
                                      compare two bench artifacts (snapshot
                                      .json or history .jsonl); exit 1 when any
                                      *_ms median regresses past PCT% (default
                                      10) and is above the X ms noise floor
                                      (default 0.05)
  bench report <history.jsonl> [--window N] [--min-ms X] [--markdown]
               [--gate] [--trace-dir DIR]
                                      per-cell trajectory over the whole
                                      history: sparkline per *_ms metric,
                                      best/latest/delta, regressions judged
                                      against each cell's history-calibrated
                                      noise band (robust dispersion over the
                                      trailing N runs, default 8) instead of
                                      one global threshold; flagged cells get
                                      their auto-attached probe trace from DIR
                                      (default: traces/ next to the history)
                                      diffed against DIR/baseline or folded;
                                      --gate exits 1 on any flagged cell,
                                      --markdown emits a GitHub-flavored table
  serve [--socket PATH] [--stdin] [--workers N] [--queue-cap N]
        [--cache-cap N] [--shed-watermark N] [--timeout-ms MS]
        [--retries N] [--inject-transient K] [--telemetry OUT.jsonl]
                                      solve service: JSONL requests over stdin
                                      (default) and/or a Unix socket; bounded
                                      queue, per-request deadlines, retry with
                                      backoff, load shedding, result cache.
                                      SIGTERM/SIGINT drain and exit cleanly
                                      (protocol: docs/SERVE.md)
  serve-drive --socket PATH [--count N] [--seed S] [--timeout-ms MS]
                                      drive a running daemon with N mixed
                                      requests; exit 1 unless every request
                                      is answered with well-formed JSON
  stream [<trace.sst>] [--family F --n N --m M --seed S] [--alpha A]
         [--policy rr|load|density] [--sched oa|avr] [--window-cap N]
         [--bal-cap N] [--no-lb] [--report] [--check] [--emit FILE]
         [--telemetry OUT.jsonl]
                                      run the online arrival engine over a
                                      stream: jobs dispatched at release to
                                      per-machine incremental OA/AVR, live
                                      window compacted, energy reported
                                      against the chunked certified lower
                                      bound (docs/ONLINE.md). Input is an
                                      arrival trace file or a generated
                                      family: bursty | poisson | heavy |
                                      tight. --check exits 1 unless
                                      ratio >= 1; --emit writes the
                                      generated trace for replay
";

/// Parsed positional + flag arguments.
struct Parsed {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Parsed {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }
    fn flag_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.flag(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("bad value '{v}' for --{name}"))),
        }
    }
}

fn collect<'a>(args: impl Iterator<Item = &'a str>) -> Result<Parsed, CliError> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(name) = a
            .strip_prefix("--")
            .or_else(|| a.strip_prefix('-').filter(|s| s.len() == 1))
        {
            // Boolean flags have no value; valued flags eat the next token.
            let value = match args.peek() {
                Some(v) if !v.starts_with('-') => Some(args.next().unwrap().to_string()),
                _ => None,
            };
            flags.push((name.to_string(), value));
        } else {
            positional.push(a.to_string());
        }
    }
    Ok(Parsed { positional, flags })
}

fn load(parsed: &Parsed) -> Result<Instance, CliError> {
    let path = parsed
        .positional
        .first()
        .ok_or_else(|| CliError::usage("missing instance file argument"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    io::parse(&text).map_err(|e| CliError::runtime(format!("cannot parse {path}: {e}")))
}

fn info(parsed: &Parsed) -> Result<String, CliError> {
    let inst = load(parsed)?;
    let mut out = String::new();
    let _ = writeln!(out, "jobs:      {}", inst.len());
    let _ = writeln!(out, "machines:  {}", inst.machines());
    let _ = writeln!(out, "alpha:     {}", inst.alpha());
    if let Some((a, b)) = inst.horizon() {
        let _ = writeln!(out, "horizon:   [{a}, {b}]");
    }
    let _ = writeln!(out, "total work: {:.4}", inst.total_work());
    let _ = writeln!(out, "max density: {:.4}", inst.max_density());
    let _ = writeln!(out, "agreeable: {}", inst.is_agreeable());
    let _ = writeln!(
        out,
        "uniform work: {}",
        inst.is_uniform_work(Default::default())
    );
    Ok(out)
}

fn generate(parsed: &Parsed) -> Result<String, CliError> {
    let family = parsed
        .positional
        .first()
        .ok_or_else(|| CliError::usage("generate needs a family name"))?;
    let n: usize = parsed
        .flag_parse("n")?
        .ok_or_else(|| CliError::usage("generate needs --n"))?;
    let m: usize = parsed
        .flag_parse("m")?
        .ok_or_else(|| CliError::usage("generate needs --m"))?;
    let alpha: f64 = parsed.flag_parse("alpha")?.unwrap_or(2.0);
    let seed: u64 = parsed.flag_parse("seed")?.unwrap_or(0);
    let spec = match family.as_str() {
        "unit-agreeable" => families::unit_agreeable(n, m, alpha),
        "unit-arbitrary" => families::unit_arbitrary(n, m, alpha),
        "weighted-agreeable" => families::weighted_agreeable(n, m, alpha),
        "general" => families::general(n, m, alpha),
        "bursty" => families::bursty(n, m, alpha),
        other => return Err(CliError::usage(format!("unknown family '{other}'"))),
    };
    let inst = spec.gen(seed);
    let text = io::emit(&inst);
    match parsed.flag("o") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
            Ok(format!("wrote {} jobs to {path}\n", inst.len()))
        }
        None => Ok(text),
    }
}

/// Resolve an algorithm name into a schedule + label. Migratory/online
/// algorithms build their own schedules; assignment policies go through
/// per-machine YDS.
fn schedule_for(inst: &Instance, algo: &str) -> Result<(Schedule, &'static str), CliError> {
    let assignment: Option<(Assignment, &'static str)> = match algo {
        "rr" => Some((rr_assignment(inst), "round-robin + YDS (non-migratory)")),
        "classified" => Some((
            classified_assignment(inst),
            "classified RR + YDS (non-migratory)",
        )),
        "least-loaded" => Some((least_loaded(inst), "least-loaded + YDS (non-migratory)")),
        "relax" => Some((relax_round(inst), "relax-and-round + YDS (non-migratory)")),
        "greedy" => Some((
            marginal_energy_greedy(inst),
            "marginal-energy greedy (non-migratory)",
        )),
        "exact" => {
            if inst.len() > 16 {
                return Err(CliError::runtime("exact solver limited to n <= 16"));
            }
            Some((
                exact_nonmigratory(inst).assignment,
                "exact optimum (non-migratory)",
            ))
        }
        "local" => {
            let seed = marginal_energy_greedy(inst);
            let improved = ssp_core::local_search::improve(inst, &seed, Default::default());
            Some((improved.assignment, "greedy + local search (non-migratory)"))
        }
        _ => None,
    };
    if let Some((a, label)) = assignment {
        return Ok((assignment_schedule(inst, &a), label));
    }
    match algo {
        "bal" => {
            let sol = bal(inst);
            Ok((sol.schedule(inst), "BAL optimum (migratory)"))
        }
        "avr" => Ok((avr_m(inst), "AVR-m (online, migratory)")),
        "oa" => Ok((oa_m(inst), "OA-m (online, migratory)")),
        other => Err(CliError::usage(format!("unknown algorithm '{other}'"))),
    }
}

/// Writes a probe trace to disk when dropped, unless defused by an explicit
/// [`TelemetryFlushGuard::flush`]. Armed right after the solve so that a
/// panic anywhere in the rendering path (gantt, SVG, phase table) — or an
/// early typed-error return — still leaves the trace on disk. A failed or
/// interrupted solve is exactly when the trace matters most.
struct TelemetryFlushGuard {
    path: Option<String>,
    trace: Option<ssp_probe::Trace>,
}

impl TelemetryFlushGuard {
    fn arm(path: Option<&str>, trace: Option<&ssp_probe::Trace>) -> Self {
        TelemetryFlushGuard {
            path: path.map(String::from),
            trace: trace.cloned(),
        }
    }

    /// Write the trace now and defuse the drop-path. `None` when there is
    /// nothing to write (no `--telemetry`, or no trace captured); otherwise
    /// the `(spans, counters)` counts or the I/O error message.
    fn flush(&mut self) -> Option<Result<(usize, usize), String>> {
        let path = self.path.take()?;
        let trace = self.trace.take()?;
        Some(
            std::fs::write(&path, trace.to_jsonl())
                .map(|()| (trace.spans.len(), trace.counters.len()))
                .map_err(|e| format!("cannot write {path}: {e}")),
        )
    }
}

impl Drop for TelemetryFlushGuard {
    fn drop(&mut self) {
        if let (Some(path), Some(trace)) = (self.path.take(), self.trace.take()) {
            // Unwinding or erroring out: best-effort write, nowhere to
            // report an I/O failure.
            let _ = std::fs::write(path, trace.to_jsonl());
        }
    }
}

/// `solve` goes through the harness: panic-free, post-validated, with a
/// degradation chain (`--no-fallback` restricts to the requested algorithm)
/// and an energy check against the certified BAL/KKT lower bound.
/// `--timeout-ms` and `--retries` map onto the same deadline/retry
/// machinery the serve daemon uses (`ssp_serve::retry`).
fn solve(parsed: &Parsed) -> Result<String, CliError> {
    use ssp_harness::{Algo, SolveOptions};
    let inst = load(parsed)?;
    let name = parsed.flag("algo").unwrap_or("rr");
    let algo = Algo::from_name(name)
        .map_err(|_| CliError::usage(format!("unknown algorithm '{name}'")))?;
    let timeout_ms: Option<u64> = parsed.flag_parse("timeout-ms")?;
    let max_retries: u32 = parsed.flag_parse("retries")?.unwrap_or(0);
    let inject: u32 = parsed.flag_parse("inject-transient")?.unwrap_or(0);
    let (budget, deadline) = ssp_serve::retry::deadline_budget(
        ssp_model::Budget::unlimited(),
        std::time::Instant::now(),
        timeout_ms.map(std::time::Duration::from_millis),
    );
    let opts = SolveOptions {
        budget,
        degrade: !parsed.has("no-fallback"),
        ..Default::default()
    };
    let want_trace = parsed.has("telemetry") || parsed.has("timings");
    let policy = ssp_serve::RetryPolicy {
        inject_transient: inject,
        ..Default::default()
    };
    // Keep the last whole-chain-failed report so its summary and partial
    // telemetry survive into the error message.
    let mut last_failed: Option<ssp_harness::SolveReport> = None;
    let retried = ssp_serve::retry::run_with_retry(&policy, max_retries, deadline, |_attempt| {
        let report = if want_trace {
            ssp_harness::solve_traced(&inst, algo, &opts)
        } else {
            ssp_harness::solve(&inst, algo, &opts)
        };
        if report.outcome.is_some() {
            Ok(report)
        } else {
            let error = report
                .attempts
                .iter()
                .rev()
                .find_map(|a| a.error.clone())
                .unwrap_or(ssp_model::SolveError::Numeric {
                    message: "solve returned neither outcome nor error".into(),
                });
            last_failed = Some(report);
            Err(error)
        }
    });
    let retries_spent = retried.retries;
    let report = match retried.result {
        Ok(report) => report,
        Err(error) => {
            let mut message = match &last_failed {
                Some(failed) => format!(
                    "no algorithm produced a valid schedule:\n{}",
                    failed.summary().trim_end()
                ),
                // Injected transients fail before the solver runs, so there
                // is no report to summarize.
                None => format!("solve failed: {error}"),
            };
            if retries_spent > 0 {
                let _ = write!(message, "\n({retries_spent} transient retries spent)");
            }
            let mut guard = TelemetryFlushGuard::arm(
                parsed.flag("telemetry"),
                last_failed.as_ref().and_then(|r| r.telemetry.as_ref()),
            );
            match guard.flush() {
                Some(Ok(_)) => {
                    let _ = write!(
                        message,
                        "\npartial telemetry written to {}",
                        parsed.flag("telemetry").unwrap_or("?")
                    );
                }
                Some(Err(e)) => {
                    let _ = write!(message, "\n{e}");
                }
                None => {}
            }
            return Err(CliError::runtime(message));
        }
    };
    // From here on any panic or early error must still flush the trace.
    let mut telemetry_guard =
        TelemetryFlushGuard::arm(parsed.flag("telemetry"), report.telemetry.as_ref());
    let outcome = report.outcome.as_ref().expect("checked in retry loop");
    let mut out = String::new();
    let _ = writeln!(out, "{}", outcome.algorithm.label());
    if retries_spent > 0 {
        let _ = writeln!(
            out,
            "note: succeeded after {retries_spent} transient retries"
        );
    }
    if report.degraded() {
        let _ = writeln!(
            out,
            "note: '{}' failed; fell back to '{}'",
            report.requested, outcome.algorithm
        );
        for a in &report.attempts {
            if let Some(e) = &a.error {
                let _ = writeln!(out, "  {}: {} ({})", a.algo, e, e.kind());
            }
        }
    }
    if let Some(resource) = outcome.budget_exhausted {
        let _ = writeln!(
            out,
            "note: {resource} budget exhausted; result is best-so-far"
        );
    }
    let stats = &outcome.stats;
    let _ = writeln!(
        out,
        "energy {:.6} | makespan {:.4} | preemptions {} | migrations {} | peak speed {:.4}",
        stats.energy, stats.makespan, stats.preemptions, stats.migrations, stats.max_speed
    );
    if let (Some(lb), Some(ratio)) = (report.lower_bound, outcome.lb_ratio) {
        let _ = writeln!(out, "certified lower bound {lb:.6} | ratio {ratio:.6}");
    }
    if parsed.has("gantt") {
        let width: usize = parsed.flag_parse("width")?.unwrap_or(72);
        let _ = write!(
            out,
            "{}",
            gantt(
                &outcome.schedule,
                GanttOptions {
                    width,
                    show_speeds: true
                }
            )
        );
    }
    if let Some(path) = parsed.flag("svg") {
        let svg = ssp_model::svg::svg_gantt(&outcome.schedule, Default::default());
        std::fs::write(path, svg)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "SVG written to {path}");
    }
    if want_trace {
        let trace = report.telemetry.as_ref().ok_or_else(|| {
            CliError::runtime("probe session unavailable (another trace in progress?)")
        })?;
        if parsed.has("timings") {
            let _ = write!(out, "{}", trace.phase_table());
        }
        match telemetry_guard.flush() {
            Some(Ok((spans, counters))) => {
                let path = parsed.flag("telemetry").unwrap_or("?");
                let _ = writeln!(
                    out,
                    "telemetry written to {path} ({spans} spans, {counters} counters)"
                );
            }
            Some(Err(e)) => return Err(CliError::runtime(e)),
            None => {}
        }
    }
    Ok(out)
}

fn budget(parsed: &Parsed) -> Result<String, CliError> {
    let inst = load(parsed)?;
    let energy: f64 = parsed
        .flag_parse("energy")?
        .ok_or_else(|| CliError::usage("budget needs --energy"))?;
    let (label, makespan, used, schedule) = if parsed.has("non-migratory") {
        use ssp_core::budget::{makespan_under_budget, InnerSolver};
        let solver = if inst.len() <= 16 {
            InnerSolver::Exact
        } else {
            InnerSolver::Greedy
        };
        match makespan_under_budget(&inst, energy, solver) {
            None => {
                return Err(CliError::runtime(format!(
                    "no schedule meets deadlines within energy budget {energy}"
                )))
            }
            Some(sol) => (
                if solver == InnerSolver::Exact {
                    "non-migratory (exact)"
                } else {
                    "non-migratory (greedy)"
                },
                sol.makespan,
                sol.energy,
                sol.schedule(),
            ),
        }
    } else {
        match mbal(&inst, energy) {
            None => {
                return Err(CliError::runtime(format!(
                    "no schedule meets deadlines within energy budget {energy}"
                )))
            }
            Some(sol) => (
                "migratory (optimal)",
                sol.makespan,
                sol.energy,
                sol.schedule(),
            ),
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{label}: minimal makespan {makespan:.6} using energy {used:.6} of budget {energy}"
    );
    if parsed.has("gantt") {
        let _ = write!(
            out,
            "{}",
            gantt(
                &schedule,
                GanttOptions {
                    width: 72,
                    show_speeds: true
                }
            )
        );
    }
    Ok(out)
}

fn compare(parsed: &Parsed) -> Result<String, CliError> {
    let inst = load(parsed)?;
    let lb = bal(&inst).energy;
    let mut out = String::new();
    let _ = writeln!(out, "{:<42} {:>14} {:>8}", "algorithm", "energy", "vs LB");
    let _ = writeln!(
        out,
        "{:<42} {:>14.6} {:>8}",
        "migratory optimum (lower bound)", lb, "1.000"
    );
    let mut algos = vec![
        "rr",
        "classified",
        "least-loaded",
        "relax",
        "greedy",
        "local",
    ];
    if inst.len() <= 12 {
        algos.push("exact");
    }
    for algo in algos {
        let (schedule, label) = schedule_for(&inst, algo)?;
        let e = schedule.energy(inst.alpha());
        let _ = writeln!(out, "{:<42} {:>14.6} {:>8.3}", label, e, e / lb);
    }
    Ok(out)
}

fn analyze(parsed: &Parsed) -> Result<String, CliError> {
    use ssp_model::analysis;
    use ssp_model::render::speed_sparkline;
    let inst = load(parsed)?;
    let algo = parsed.flag("algo").unwrap_or("bal");
    let (schedule, label) = schedule_for(&inst, algo)?;
    schedule
        .validate(&inst, Default::default())
        .map_err(|e| CliError::runtime(format!("schedule failed validation: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "{label}");
    let util = analysis::utilization(&schedule);
    for (m, u) in util.iter().enumerate() {
        let _ = writeln!(out, "machine {m}: utilization {:.1}%", u * 100.0);
    }
    let _ = writeln!(
        out,
        "peak power: {:.4}",
        analysis::peak_power(&schedule, inst.alpha())
    );
    let rt = analysis::response_times(&schedule, &inst);
    let mean_rt = rt.iter().map(|&(_, t)| t).sum::<f64>() / rt.len().max(1) as f64;
    let max_rt = rt.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    let _ = writeln!(out, "response time: mean {mean_rt:.4}, max {max_rt:.4}");
    let slack = analysis::deadline_slacks(&schedule, &inst);
    let min_slack = slack.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
    let _ = writeln!(out, "minimum deadline slack: {min_slack:.4}");
    let _ = writeln!(out, "{}", speed_sparkline(&schedule, 64));
    Ok(out)
}

fn swf_import(parsed: &Parsed) -> Result<String, CliError> {
    use ssp_workloads::swf::{parse_swf, SwfOptions};
    let path = parsed
        .positional
        .first()
        .ok_or_else(|| CliError::usage("swf needs a trace file"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let opts = SwfOptions {
        machines: parsed.flag_parse("machines")?.unwrap_or(8),
        alpha: parsed.flag_parse("alpha")?.unwrap_or(2.0),
        laxity: parsed.flag_parse("laxity")?.unwrap_or(3.0),
        max_jobs: parsed.flag_parse("max-jobs")?.unwrap_or(usize::MAX),
        time_scale: parsed.flag_parse("time-scale")?.unwrap_or(1.0),
    };
    let (inst, report) = parse_swf(&text, opts)
        .map_err(|e| CliError::runtime(format!("cannot parse {path}: {e}")))?;
    let mut out = format!(
        "imported {} jobs ({} invalid skipped, {} comments)\n",
        report.imported, report.skipped_invalid, report.comments
    );
    match parsed.flag("o") {
        Some(dest) => {
            std::fs::write(dest, io::emit(&inst))
                .map_err(|e| CliError::runtime(format!("cannot write {dest}: {e}")))?;
            let _ = writeln!(out, "instance written to {dest}");
        }
        None => out.push_str(&io::emit(&inst)),
    }
    Ok(out)
}

fn quantize_cmd(parsed: &Parsed) -> Result<String, CliError> {
    use ssp_model::quantize::{quantize_speeds, SpeedLevels};
    let inst = load(parsed)?;
    let algo = parsed.flag("algo").unwrap_or("bal");
    let levels: usize = parsed
        .flag_parse("levels")?
        .ok_or_else(|| CliError::usage("quantize needs --levels"))?;
    if levels < 2 {
        return Err(CliError::usage("--levels must be at least 2"));
    }
    let (schedule, label) = schedule_for(&inst, algo)?;
    let continuous = schedule.energy(inst.alpha());
    let smin = schedule
        .segments()
        .iter()
        .map(|s| s.speed)
        .fold(f64::INFINITY, f64::min);
    let smax = schedule
        .segments()
        .iter()
        .map(|s| s.speed)
        .fold(0.0f64, f64::max)
        * (1.0 + 1e-9);
    let grid = SpeedLevels::geometric(smin, smax, levels)
        .map_err(|e| CliError::runtime(format!("cannot build level grid: {e}")))?;
    let quantized = quantize_speeds(&schedule, &grid)
        .map_err(|s| CliError::runtime(format!("speed {s} exceeds the grid")))?;
    quantized
        .validate(&inst, Default::default())
        .map_err(|e| CliError::runtime(format!("quantized schedule invalid: {e}")))?;
    let discrete = quantized.energy(inst.alpha());
    Ok(format!(
        "{label}\ncontinuous energy {continuous:.6}\n{levels}-level grid [{:.4}, {:.4}]: \
         energy {discrete:.6} (overhead x{:.5})\n",
        grid.min(),
        grid.max(),
        discrete / continuous
    ))
}

/// Read and structurally validate a probe trace file.
fn load_trace(path: &str) -> Result<ssp_probe::Trace, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let trace = ssp_probe::Trace::parse(&text)
        .map_err(|e| CliError::runtime(format!("cannot parse {path}: {e}")))?;
    trace
        .validate()
        .map_err(|e| CliError::runtime(format!("{path}: malformed trace: {e}")))?;
    Ok(trace)
}

/// `trace report|diff|fold` — offline analysis of JSONL probe traces.
fn trace_cmd(parsed: &Parsed) -> Result<String, CliError> {
    let sub = parsed
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::usage("trace needs a subcommand: report | diff | fold"))?;
    match sub {
        "report" => {
            let path = parsed
                .positional
                .get(1)
                .ok_or_else(|| CliError::usage("trace report needs a trace file"))?;
            Ok(load_trace(path)?.report())
        }
        "fold" => {
            let path = parsed
                .positional
                .get(1)
                .ok_or_else(|| CliError::usage("trace fold needs a trace file"))?;
            Ok(load_trace(path)?.folded())
        }
        "diff" => {
            let (old, new) = match (parsed.positional.get(1), parsed.positional.get(2)) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(CliError::usage("trace diff needs two trace files")),
            };
            let threshold: f64 = parsed.flag_parse("threshold")?.unwrap_or(10.0);
            if threshold.is_nan() || threshold < 0.0 {
                return Err(CliError::usage("--threshold must be >= 0"));
            }
            Ok(ssp_probe::diff(
                &load_trace(old)?,
                &load_trace(new)?,
                threshold / 100.0,
            ))
        }
        other => Err(CliError::usage(format!(
            "unknown trace subcommand '{other}' (expected report | diff | fold)"
        ))),
    }
}

/// `bench-diff` — the bench-trajectory regression gate. Prints the
/// comparison table; regressions past the threshold make it an exit-1
/// runtime error (with the same table as the message) so CI can gate on it.
fn bench_diff_cmd(parsed: &Parsed) -> Result<String, CliError> {
    use crate::benchdata;
    let (old_path, new_path) = match (parsed.positional.first(), parsed.positional.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(CliError::usage(
                "bench-diff needs <old> and <new> artifacts",
            ))
        }
    };
    let threshold: f64 = parsed.flag_parse("threshold")?.unwrap_or(10.0);
    let min_ms: f64 = parsed.flag_parse("min-ms")?.unwrap_or(0.05);
    if threshold.is_nan() || threshold < 0.0 || min_ms.is_nan() || min_ms < 0.0 {
        return Err(CliError::usage("--threshold and --min-ms must be >= 0"));
    }
    let mut artifacts = Vec::with_capacity(2);
    for path in [old_path, new_path] {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
        artifacts.push(
            benchdata::parse_artifact(&text)
                .map_err(|e| CliError::runtime(format!("cannot parse {path}: {e}")))?,
        );
    }
    let diff = benchdata::diff_artifacts(&artifacts[0], &artifacts[1], threshold / 100.0, min_ms);
    let mut out = String::new();
    if !diff.rows.is_empty() || !diff.missing.is_empty() || !diff.added.is_empty() {
        let _ = writeln!(
            out,
            "comparing {} -> {}{}",
            old_path,
            new_path,
            artifacts[1]
                .rev
                .as_deref()
                .map(|r| format!(" (rev {r})"))
                .unwrap_or_default()
        );
    }
    out.push_str(&diff.render());
    if diff.regressions() > 0 {
        return Err(CliError::runtime(out));
    }
    Ok(out)
}

/// `bench report` — the perf-trajectory service: per-cell sparklines and
/// history-calibrated regression annotations over the whole
/// `BENCH_history.jsonl`, with auto-attached trace diffs for flagged
/// cells. `--gate` turns any flagged cell into an exit-1 runtime error
/// (with the full report as the message) so CI can gate on it.
fn bench_cmd(parsed: &Parsed) -> Result<String, CliError> {
    use crate::{benchdata, benchreport};
    let sub = parsed
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::usage("bench needs a subcommand: report"))?;
    if sub != "report" {
        return Err(CliError::usage(format!(
            "unknown bench subcommand '{sub}' (expected report)"
        )));
    }
    let path = parsed
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("bench report needs a history.jsonl file"))?;
    let window: usize = parsed
        .flag_parse("window")?
        .unwrap_or(benchreport::DEFAULT_WINDOW);
    if window == 0 {
        return Err(CliError::usage("--window must be >= 1"));
    }
    let min_ms: f64 = parsed
        .flag_parse("min-ms")?
        .unwrap_or(benchreport::DEFAULT_MIN_MS);
    if min_ms.is_nan() || min_ms < 0.0 {
        return Err(CliError::usage("--min-ms must be >= 0"));
    }
    let markdown = parsed.has("markdown");
    let gate = parsed.has("gate");
    // Attached traces default to `traces/` next to the history file —
    // where the bench harness writes them when SSP_BENCH_TRACE_DIR=traces.
    let trace_dir = match parsed.flag("trace-dir") {
        Some(dir) => dir.to_string(),
        None => std::path::Path::new(path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join("traces")
            .to_string_lossy()
            .into_owned(),
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let (runs, warnings) = benchdata::parse_history(&text);
    let rows = benchreport::trajectory_rows(&runs, window, min_ms);
    let mut out = String::new();
    for w in &warnings {
        let _ = writeln!(out, "warning: {path}: {w}");
    }
    out.push_str(&benchreport::render(&rows, markdown));
    let attachments = benchreport::render_attachments(&rows, &trace_dir);
    if !attachments.is_empty() {
        if markdown {
            // Keep the trace section readable inside a GitHub summary.
            let _ = writeln!(out, "\n```");
            out.push_str(&attachments);
            let _ = writeln!(out, "```");
        } else {
            out.push('\n');
            out.push_str(&attachments);
        }
    }
    if gate && benchreport::flagged(&rows) > 0 {
        return Err(CliError::runtime(out));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// serve: the fault-tolerant solve daemon (transport layer over ssp-serve)
// ---------------------------------------------------------------------------

/// Set by SIGTERM/SIGINT (and by tests); the daemon loop polls it, stops
/// accepting, drains the queue, and exits cleanly.
static SERVE_TERM: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn serve_on_signal(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    SERVE_TERM.store(true, std::sync::atomic::Ordering::SeqCst);
}

#[cfg(unix)]
fn install_serve_signal_handlers() {
    // The workspace is deliberately dependency-free, so no libc crate:
    // declare the one libc symbol needed. BSD `signal` semantics (glibc
    // default) keep the handler installed across deliveries.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = serve_on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_serve_signal_handlers() {}

/// Response sink writing JSONL to this process's stdout (stdin transport).
fn stdout_sink() -> ssp_serve::Sink {
    std::sync::Arc::new(|line: &str| {
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    })
}

/// The `ssp serve` daemon. Transport only: requests come in as JSONL lines
/// from stdin and/or a Unix socket and are handed to [`ssp_serve::Server`];
/// admission control, deadlines, retries, shedding, caching, and isolation
/// all live in the service crate so tests and EXP-21 exercise the same
/// code. Shutdown (SIGTERM/SIGINT, or stdin EOF when stdin is the only
/// transport) drains every admitted request before exiting.
fn serve_cmd(parsed: &Parsed) -> Result<String, CliError> {
    use ssp_serve::{RetryPolicy, ServeOptions, Server};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let opts = ServeOptions {
        workers: parsed.flag_parse("workers")?.unwrap_or(4),
        queue_cap: parsed.flag_parse("queue-cap")?.unwrap_or(64),
        cache_cap: parsed.flag_parse("cache-cap")?.unwrap_or(256),
        shed_watermark: parsed.flag_parse("shed-watermark")?.unwrap_or(48),
        default_timeout: parsed
            .flag_parse::<u64>("timeout-ms")?
            .map(Duration::from_millis),
        retry: RetryPolicy {
            max_retries: parsed.flag_parse("retries")?.unwrap_or(2),
            inject_transient: parsed.flag_parse("inject-transient")?.unwrap_or(0),
            ..Default::default()
        },
        ..Default::default()
    };
    if opts.workers == 0 || opts.queue_cap == 0 {
        return Err(CliError::usage("--workers and --queue-cap must be >= 1"));
    }
    let socket_path = parsed.flag("socket").map(String::from);
    let use_stdin = parsed.has("stdin") || socket_path.is_none();

    install_serve_signal_handlers();
    SERVE_TERM.store(false, std::sync::atomic::Ordering::SeqCst);

    // The daemon owns the probe session and keeps a span open so worker
    // spans nest under it; `None` (another trace in flight) just means an
    // untraced run.
    let session = ssp_probe::Session::begin();
    let span = ssp_probe::span("serve");
    let mut server = Server::start(opts);

    let stdin_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    if use_stdin {
        let handle = server.handle();
        let done = Arc::clone(&stdin_done);
        // Never joined: a read blocked on a tty at shutdown dies with the
        // process after the drain completes.
        std::thread::spawn(move || {
            use std::io::BufRead;
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if !l.trim().is_empty() => {
                        handle.submit(&l, stdout_sink());
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            done.store(true, Ordering::SeqCst);
        });
    }

    // Readers still draining buffered socket lines at shutdown.
    let live_conns = Arc::new(AtomicUsize::new(0));
    #[cfg(unix)]
    let listener = match &socket_path {
        Some(path) => {
            let _ = std::fs::remove_file(path); // stale socket from a crash
            let l = std::os::unix::net::UnixListener::bind(path)
                .map_err(|e| CliError::runtime(format!("cannot bind {path}: {e}")))?;
            l.set_nonblocking(true)
                .map_err(|e| CliError::runtime(format!("cannot configure {path}: {e}")))?;
            eprintln!("serve: listening on {path}");
            Some(l)
        }
        None => None,
    };
    #[cfg(not(unix))]
    if socket_path.is_some() {
        return Err(CliError::runtime("--socket requires a unix platform"));
    }

    loop {
        if SERVE_TERM.load(std::sync::atomic::Ordering::SeqCst) {
            break;
        }
        // Stdin EOF ends the daemon only when stdin is the sole transport.
        if use_stdin && socket_path.is_none() && stdin_done.load(Ordering::SeqCst) {
            break;
        }
        #[cfg(unix)]
        if let Some(l) = &listener {
            while let Ok((stream, _)) = l.accept() {
                let _ = stream.set_nonblocking(false);
                spawn_socket_reader(stream, server.handle(), Arc::clone(&live_conns));
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Shutdown sequence: stop accepting, let connection readers finish
    // submitting what clients already sent (they half-close after writing;
    // bounded grace so a hung client cannot wedge the drain), then drain
    // the queue — every admitted request is answered before workers exit.
    #[cfg(unix)]
    drop(listener);
    let grace = std::time::Instant::now() + Duration::from_secs(5);
    while live_conns.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < grace {
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    drop(span);
    if let Some(path) = &socket_path {
        let _ = std::fs::remove_file(path);
    }

    let stats = server.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} submitted | {} ok | {} error | {} rejected | {} panic-isolated",
        stats.submitted, stats.ok, stats.errors, stats.rejected, stats.panics
    );
    let _ = writeln!(
        out,
        "cache: {} hits, {} misses | shed {} | degraded {}",
        stats.cache_hits, stats.cache_misses, stats.shed, stats.degraded
    );
    if let Some(session) = session {
        let trace = session.end();
        if let Some(h) = trace.hist("serve.request_us") {
            let _ = writeln!(
                out,
                "latency: p50 {}us | p90 {}us | p99 {}us ({} requests)",
                h.p50(),
                h.p90(),
                h.p99(),
                h.count
            );
        }
        if let Some(path) = parsed.flag("telemetry") {
            std::fs::write(path, trace.to_jsonl())
                .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "telemetry written to {path}");
        }
    }
    Ok(out)
}

/// One reader thread per socket connection: submit each JSONL line, answer
/// on the same stream (write half is shared with the worker sinks), exit on
/// client EOF/half-close.
#[cfg(unix)]
fn spawn_socket_reader(
    stream: std::os::unix::net::UnixStream,
    handle: ssp_serve::ServerHandle,
    live_conns: std::sync::Arc<std::sync::atomic::AtomicUsize>,
) {
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex};
    live_conns.fetch_add(1, Ordering::SeqCst);
    std::thread::spawn(move || {
        use std::io::{BufRead, BufReader, Write};
        let sink: ssp_serve::Sink = match stream.try_clone() {
            Ok(write_half) => {
                let write_half = Arc::new(Mutex::new(write_half));
                Arc::new(move |line: &str| {
                    let mut w = write_half.lock().unwrap_or_else(|e| e.into_inner());
                    let _ = writeln!(w, "{line}");
                    let _ = w.flush();
                })
            }
            // Cannot answer this client; swallow its responses rather than
            // refuse the connection.
            Err(_) => Arc::new(|_line: &str| {}),
        };
        for line in BufReader::new(stream).lines() {
            match line {
                Ok(l) if !l.trim().is_empty() => {
                    handle.submit(&l, Arc::clone(&sink));
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        live_conns.fetch_sub(1, Ordering::SeqCst);
    });
}

/// `ssp serve-drive`: load-generator client for a running daemon. Sends
/// `--count` mixed-family requests (every 4th a repeat, so the cache gets
/// traffic), half-closes, then requires one well-formed JSON response per
/// request — which is exactly the drain guarantee CI's serve-smoke asserts
/// across a SIGTERM.
fn serve_drive_cmd(parsed: &Parsed) -> Result<String, CliError> {
    #[cfg(not(unix))]
    {
        let _ = parsed;
        return Err(CliError::runtime("serve-drive requires unix sockets"));
    }
    #[cfg(unix)]
    {
        use ssp_serve::json::Json;
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let path = parsed
            .flag("socket")
            .ok_or_else(|| CliError::usage("serve-drive needs --socket PATH"))?;
        let count: usize = parsed.flag_parse("count")?.unwrap_or(24);
        let seed: u64 = parsed.flag_parse("seed")?.unwrap_or(1);
        let timeout_ms: Option<u64> = parsed.flag_parse("timeout-ms")?;

        // The daemon may still be binding; retry the connect briefly.
        let mut stream = None;
        for _ in 0..40 {
            match UnixStream::connect(path) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(25)),
            }
        }
        let stream =
            stream.ok_or_else(|| CliError::runtime(format!("cannot connect to {path}")))?;

        let algos = ["bal", "local", "greedy", "least-loaded", "rr", "avr", "oa"];
        for i in 0..count {
            // Every 4th request is the same instance+algo: cache traffic.
            let (inst, algo) = if i % 4 == 0 {
                (families::general(6, 2, 2.0).gen(7), "bal")
            } else {
                let s = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64);
                let inst = match i % 3 {
                    0 => families::bursty(8, 2, 3.0).gen(s),
                    1 => families::unit_arbitrary(5, 3, 2.0).gen(s),
                    _ => families::general(10, 2, 2.0).gen(s),
                };
                (inst, algos[i % algos.len()])
            };
            let mut fields = vec![
                ("id".to_string(), Json::Str(format!("drive-{i}"))),
                ("algo".to_string(), Json::Str(algo.to_string())),
                ("instance".to_string(), Json::Str(io::emit(&inst))),
            ];
            if let Some(ms) = timeout_ms {
                fields.push(("timeout_ms".to_string(), Json::Num(ms as f64)));
            }
            let line = Json::Obj(fields).to_string_compact();
            writeln!(&stream, "{line}")
                .map_err(|e| CliError::runtime(format!("write to {path} failed: {e}")))?;
        }
        // Half-close: tells the daemon's reader this client is done
        // submitting, which is what lets a SIGTERM'd daemon finish its
        // drain deterministically.
        stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| CliError::runtime(format!("shutdown(Write) failed: {e}")))?;

        let (mut ok, mut errors, mut hits, mut degraded, mut malformed) = (0, 0, 0, 0, 0);
        let mut got = 0usize;
        for line in BufReader::new(stream).lines() {
            let line = line.map_err(|e| CliError::runtime(format!("read failed: {e}")))?;
            if line.trim().is_empty() {
                continue;
            }
            got += 1;
            match ssp_serve::json::parse(&line) {
                Ok(v) => match v.get("status").and_then(|s| s.as_str()) {
                    Some("ok") => {
                        ok += 1;
                        if v.get("cache").and_then(|c| c.as_str()) == Some("hit") {
                            hits += 1;
                        }
                        if v.get("degraded").and_then(|d| d.as_bool()) == Some(true) {
                            degraded += 1;
                        }
                    }
                    Some("error") => errors += 1,
                    _ => malformed += 1,
                },
                Err(_) => malformed += 1,
            }
            if got == count {
                break;
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve-drive: {got}/{count} answered | {ok} ok | {errors} error | {hits} cache hits | {degraded} degraded"
        );
        if got < count {
            return Err(CliError::runtime(format!(
                "{out}daemon answered only {got} of {count} requests (drain violated)"
            )));
        }
        if malformed > 0 {
            return Err(CliError::runtime(format!(
                "{out}{malformed} responses were not well-formed"
            )));
        }
        Ok(out)
    }
}

/// `ssp stream`: run the online arrival engine (ssp-online) over a stream
/// of release-ordered jobs — an arrival trace file, or a generated stream
/// family — and report energy, the chunked certified lower bound, and the
/// engine's memory/incrementality counters. See docs/ONLINE.md.
fn stream_cmd(parsed: &Parsed) -> Result<String, CliError> {
    use ssp_online::{EngineOptions, LbMode, Policy, SchedulerKind, StreamEngine};
    use ssp_workloads::{stream_family, STREAM_FAMILIES};

    let policy = match parsed.flag("policy") {
        None => Policy::RoundRobin,
        Some(name) => Policy::parse(name)
            .ok_or_else(|| CliError::usage(format!("unknown policy '{name}' (rr|load|density)")))?,
    };
    let scheduler = match parsed.flag("sched") {
        None => SchedulerKind::Oa,
        Some(name) => SchedulerKind::parse(name)
            .ok_or_else(|| CliError::usage(format!("unknown scheduler '{name}' (oa|avr)")))?,
    };

    // Source: a trace file (header supplies m/alpha unless overridden) or a
    // generated family (needs --family/--n/--m).
    let file = parsed.positional.first();
    let family = parsed.flag("family");
    let (label, machines, alpha, jobs): (String, usize, f64, Vec<ssp_model::Job>) =
        match (file, family) {
            (Some(path), None) => {
                let f = std::fs::File::open(path)
                    .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
                let reader = ssp_model::ArrivalReader::new(std::io::BufReader::new(f))
                    .map_err(|e| CliError::runtime(format!("cannot parse {path}: {e}")))?;
                let header = reader.header();
                let machines = parsed.flag_parse("m")?.unwrap_or(header.machines);
                let alpha = parsed.flag_parse("alpha")?.unwrap_or(header.alpha);
                let jobs: Vec<ssp_model::Job> = reader
                    .collect::<Result<_, _>>()
                    .map_err(|e| CliError::runtime(format!("bad trace {path}: {e}")))?;
                (format!("trace {path}"), machines, alpha, jobs)
            }
            (None, Some(name)) => {
                let n: usize = parsed
                    .flag_parse("n")?
                    .ok_or_else(|| CliError::usage("generated stream needs --n"))?;
                let machines: usize = parsed
                    .flag_parse("m")?
                    .ok_or_else(|| CliError::usage("generated stream needs --m"))?;
                let alpha: f64 = parsed.flag_parse("alpha")?.unwrap_or(2.0);
                let seed: u64 = parsed.flag_parse("seed")?.unwrap_or(0);
                let spec = stream_family(name, machines, alpha).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown stream family '{name}' (expected one of: {})",
                        STREAM_FAMILIES.join(" | ")
                    ))
                })?;
                let jobs: Vec<ssp_model::Job> = spec.jobs(seed).take(n).collect();
                (
                    format!("family {name} (seed {seed})"),
                    machines,
                    alpha,
                    jobs,
                )
            }
            (Some(_), Some(_)) => {
                return Err(CliError::usage(
                    "give either a trace file or --family, not both",
                ))
            }
            (None, None) => {
                return Err(CliError::usage(
                    "stream needs a trace file or --family NAME --n N --m M",
                ))
            }
        };

    if let Some(dest) = parsed.flag("emit") {
        let mut w = ssp_model::ArrivalWriter::new(Vec::new(), machines, alpha)
            .map_err(|e| CliError::runtime(format!("emit failed: {e}")))?;
        for job in &jobs {
            w.push(job)
                .map_err(|e| CliError::runtime(format!("emit failed: {e}")))?;
        }
        let buf = w
            .finish()
            .map_err(|e| CliError::runtime(format!("emit failed: {e}")))?;
        std::fs::write(dest, buf)
            .map_err(|e| CliError::runtime(format!("cannot write {dest}: {e}")))?;
    }

    let mut opts = EngineOptions::new(machines, alpha)
        .policy(policy)
        .scheduler(scheduler);
    if let Some(cap) = parsed.flag_parse("window-cap")? {
        opts = opts.window_cap(cap);
    }
    if parsed.has("no-lb") {
        opts = opts.lower_bound(LbMode::Off);
    } else if let Some(cap) = parsed.flag_parse("bal-cap")? {
        opts = opts.lower_bound(LbMode::Chunked { bal_cap: cap });
    }

    // A session only when telemetry is requested, so `ssp stream` composes
    // with outer sessions (tests, the exper runner) by default.
    let session = if parsed.has("telemetry") {
        ssp_probe::Session::begin()
    } else {
        None
    };
    let mut engine =
        StreamEngine::new(opts).map_err(|e| CliError::runtime(format!("bad options: {e}")))?;
    for job in jobs {
        engine
            .push(job)
            .map_err(|e| CliError::runtime(format!("bad arrival: {e}")))?;
    }
    let r = engine
        .finish()
        .map_err(|e| CliError::runtime(format!("stream failed: {e}")))?;
    let telemetry_note = match (session, parsed.flag("telemetry")) {
        (Some(session), Some(path)) => {
            let trace = session.end();
            std::fs::write(path, trace.to_jsonl())
                .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
            Some(format!("telemetry written to {path}"))
        }
        _ => None,
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "stream: {label} | {} jobs | m {} | alpha {} | policy {} | sched {}",
        r.arrivals,
        r.machines,
        r.alpha,
        r.policy,
        r.scheduler.name()
    );
    match (r.lower_bound, r.ratio()) {
        (Some(lb), Some(ratio)) => {
            let _ = writeln!(
                out,
                "energy {:.6} | certified LB {lb:.6} | ratio {ratio:.4}",
                r.energy
            );
        }
        _ => {
            let _ = writeln!(out, "energy {:.6} (lower bound off)", r.energy);
        }
    }
    let _ = writeln!(
        out,
        "peak live window {} jobs | peak chunk {} | compactions {} ({} forced)",
        r.peak_live, r.peak_chunk, r.compactions, r.forced_compactions
    );
    let _ = writeln!(
        out,
        "replans {} / {} machine-events (recompute {:.1}%)",
        r.replans,
        r.machine_events,
        r.recompute_frac() * 100.0
    );
    if parsed.has("report") {
        for (p, e) in r.machine_energy.iter().enumerate() {
            let _ = writeln!(out, "  machine {p}: energy {e:.6}");
        }
        if r.density_fallbacks > 0 {
            let _ = writeln!(
                out,
                "  density pricing fell back to overlap counting {} times",
                r.density_fallbacks
            );
        }
    }
    if let Some(note) = telemetry_note {
        let _ = writeln!(out, "{note}");
    }
    if parsed.has("check") {
        let ratio = r
            .ratio()
            .ok_or_else(|| CliError::runtime("--check needs the lower bound (drop --no-lb)"))?;
        if ratio < 1.0 - 1e-6 {
            return Err(CliError::runtime(format!(
                "{out}ratio {ratio} below 1: the certified bound is violated — this is a bug"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp_instance() -> String {
        let inst = families::general(8, 2, 2.0).gen(3);
        let path = std::env::temp_dir().join(format!("ssp_cli_test_{}.ssp", std::process::id()));
        std::fs::write(&path, io::emit(&inst)).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&args(&["help"])).unwrap().contains("speedscale"));
        assert!(run(&[]).unwrap().contains("commands:"));
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn generate_info_solve_pipeline() {
        let path = std::env::temp_dir().join(format!("ssp_cli_gen_{}.ssp", std::process::id()));
        let p = path.to_string_lossy().into_owned();
        let msg = run(&args(&[
            "generate", "bursty", "--n", "10", "--m", "2", "--seed", "5", "-o", &p,
        ]))
        .unwrap();
        assert!(msg.contains("wrote 10 jobs"));

        let info = run(&args(&["info", &p])).unwrap();
        assert!(info.contains("jobs:      10"));
        assert!(info.contains("machines:  2"));

        for algo in [
            "rr",
            "classified",
            "least-loaded",
            "relax",
            "greedy",
            "local",
            "bal",
            "avr",
            "oa",
            "exact",
        ] {
            let out = run(&args(&["solve", &p, "--algo", algo])).unwrap();
            assert!(out.contains("energy"), "{algo}: {out}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_with_gantt_renders_rows() {
        let p = tmp_instance();
        let out = run(&args(&[
            "solve", &p, "--algo", "bal", "--gantt", "--width", "40",
        ]))
        .unwrap();
        assert!(out.contains("m0 "));
        assert!(out.contains("m1 "));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn compare_lists_all_policies() {
        let p = tmp_instance();
        let out = run(&args(&["compare", &p])).unwrap();
        assert!(out.contains("round-robin"));
        assert!(out.contains("exact optimum"));
        assert!(out.contains("lower bound"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn budget_non_migratory_flag() {
        // Deadline-free (clamp only tightens): rebuild with huge windows.
        let base = families::general(6, 2, 2.0).gen(9);
        let jobs: Vec<ssp_model::Job> = base
            .jobs()
            .iter()
            .map(|j| ssp_model::Job::new(j.id.0, j.work, j.release, 1e7))
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let path = std::env::temp_dir().join(format!("ssp_cli_nmb_{}.ssp", std::process::id()));
        std::fs::write(&path, io::emit(&inst)).unwrap();
        let p = path.to_string_lossy().into_owned();
        let mig = run(&args(&["budget", &p, "--energy", "50"])).unwrap();
        let non = run(&args(&["budget", &p, "--energy", "50", "--non-migratory"])).unwrap();
        assert!(mig.contains("migratory (optimal)"));
        assert!(non.contains("non-migratory (exact)"));
        // Parse makespans: migration can only help.
        let parse_x = |s: &str| -> f64 {
            s.split("minimal makespan ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(parse_x(&mig) <= parse_x(&non) * (1.0 + 1e-6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_command_works_and_rejects_tiny_budget() {
        // Deadline-free instance: rebuild the general family with huge
        // windows (clamp_deadlines only tightens).
        let base = families::general(6, 2, 2.0).gen(9);
        let jobs: Vec<ssp_model::Job> = base
            .jobs()
            .iter()
            .map(|j| ssp_model::Job::new(j.id.0, j.work, j.release, 1e7))
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let path = std::env::temp_dir().join(format!("ssp_cli_budget_{}.ssp", std::process::id()));
        std::fs::write(&path, io::emit(&inst)).unwrap();
        let p = path.to_string_lossy().into_owned();
        let out = run(&args(&["budget", &p, "--energy", "50"])).unwrap();
        assert!(out.contains("minimal makespan"));
        // A budget below the deadline-forced floor fails cleanly.
        let tight = families::unit_arbitrary(6, 2, 2.0).gen(1);
        std::fs::write(&path, io::emit(&tight)).unwrap();
        let err = run(&args(&["budget", &p, "--energy", "0.000001"])).unwrap_err();
        assert_eq!(err.code, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_bad_arguments() {
        assert_eq!(run(&args(&["solve"])).unwrap_err().code, 2);
        assert_eq!(
            run(&args(&["info", "/nonexistent/x.ssp"]))
                .unwrap_err()
                .code,
            1
        );
        assert_eq!(
            run(&args(&["generate", "general", "--n", "banana", "--m", "2"]))
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run(&args(&["generate", "nope", "--n", "4", "--m", "2"]))
                .unwrap_err()
                .code,
            2
        );
        let p = tmp_instance();
        assert_eq!(
            run(&args(&["solve", &p, "--algo", "quantum"]))
                .unwrap_err()
                .code,
            2
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn analyze_reports_metrics() {
        let p = tmp_instance();
        let out = run(&args(&["analyze", &p])).unwrap();
        assert!(out.contains("utilization"));
        assert!(out.contains("peak power"));
        assert!(out.contains("response time"));
        assert!(out.contains("deadline slack"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn swf_import_roundtrip() {
        let trace = "; sample\n1 0 0 10 2 -1 -1 2 30 -1 1 1 1 1 1 1 -1 -1\n";
        let dir = std::env::temp_dir();
        let src = dir.join(format!("ssp_cli_swf_{}.swf", std::process::id()));
        let dst = dir.join(format!("ssp_cli_swf_{}.ssp", std::process::id()));
        std::fs::write(&src, trace).unwrap();
        let out = run(&args(&[
            "swf",
            &src.to_string_lossy(),
            "--machines",
            "2",
            "-o",
            &dst.to_string_lossy(),
        ]))
        .unwrap();
        assert!(out.contains("imported 1 jobs"));
        let info = run(&args(&["info", &dst.to_string_lossy()])).unwrap();
        assert!(info.contains("jobs:      1"));
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&dst).ok();
    }

    #[test]
    fn quantize_reports_overhead() {
        let p = tmp_instance();
        let out = run(&args(&["quantize", &p, "--levels", "4"])).unwrap();
        assert!(out.contains("overhead x"), "{out}");
        // Overhead is >= 1 by convexity; parse it back out.
        let x: f64 = out
            .split("overhead x")
            .nth(1)
            .unwrap()
            .trim_end_matches([')', '\n'])
            .parse()
            .unwrap();
        assert!(x >= 1.0 - 1e-9);
        // Guardrails.
        assert_eq!(run(&args(&["quantize", &p])).unwrap_err().code, 2);
        assert_eq!(
            run(&args(&["quantize", &p, "--levels", "1"]))
                .unwrap_err()
                .code,
            2
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn exact_guard_on_large_instances() {
        let inst = families::general(20, 2, 2.0).gen(1);
        let path = std::env::temp_dir().join(format!("ssp_cli_big_{}.ssp", std::process::id()));
        std::fs::write(&path, io::emit(&inst)).unwrap();
        let p = path.to_string_lossy().into_owned();
        // With the harness chain, the precondition failure degrades to a
        // fallback and the output narrates why.
        let out = run(&args(&["solve", &p, "--algo", "exact"])).unwrap();
        assert!(out.contains("fell back to"), "{out}");
        assert!(out.contains("n <= 16"), "{out}");
        // --no-fallback restores the hard failure as a typed runtime error.
        let err = run(&args(&["solve", &p, "--algo", "exact", "--no-fallback"])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("precondition"), "{}", err.message);
        std::fs::remove_file(&path).ok();
    }

    /// Probe sessions are process-global: every test that drives a traced
    /// solve serializes on this lock so sessions never contend.
    fn session_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The observability acceptance path: `solve --telemetry --timings` on a
    /// local-search solve must produce a parseable, well-formed trace whose
    /// span tree covers the assignment, BAL lower-bound and validation
    /// phases, with max-flow / BAL / local-search counters all non-zero.
    /// One test drives both flags: probe sessions are process-global, so
    /// concurrent traced solves would contend for the session.
    #[test]
    fn solve_telemetry_trace_covers_the_pipeline() {
        use ssp_probe::Trace;
        let _session = session_lock();
        let inst = families::general(12, 3, 2.0).gen(17);
        let dir = std::env::temp_dir();
        let p_inst = dir.join(format!("ssp_cli_tel_{}.ssp", std::process::id()));
        let p_trace = dir.join(format!("ssp_cli_tel_{}.jsonl", std::process::id()));
        std::fs::write(&p_inst, io::emit(&inst)).unwrap();
        let out = run(&args(&[
            "solve",
            &p_inst.to_string_lossy(),
            "--algo",
            "local",
            "--telemetry",
            &p_trace.to_string_lossy(),
            "--timings",
        ]))
        .unwrap();
        assert!(out.contains("telemetry written to"), "{out}");
        // --timings prints the phase table inline.
        assert!(out.contains("phase"), "{out}");
        assert!(out.contains("counters:"), "{out}");

        let text = std::fs::read_to_string(&p_trace).unwrap();
        let trace = Trace::parse(&text).expect("trace must parse back");
        trace.validate().expect("trace must be well-formed");

        // Span tree: solve at the root, with the lower bound (BAL), the
        // attempt (named after the algorithm), assignment materialization
        // and validation all present and correctly nested.
        let roots = trace.roots();
        assert_eq!(roots.len(), 1, "one root span");
        assert_eq!(roots[0].name, "solve");
        let solve_id = roots[0].id;
        let top: Vec<&str> = trace
            .children(solve_id)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert!(top.contains(&"lower_bound"), "top-level: {top:?}");
        assert!(top.contains(&"local"), "top-level: {top:?}");
        for phase in ["bal", "bal.round", "wap.solve", "kkt.certify"] {
            assert!(trace.span_count(phase) > 0, "missing phase '{phase}'");
        }
        for phase in ["local_search", "assign.schedule", "validate"] {
            assert!(trace.span_count(phase) > 0, "missing phase '{phase}'");
        }

        // Counters: max-flow, BAL and local-search work all recorded.
        for counter in [
            "maxflow.dinic.runs",
            "maxflow.dinic.phases",
            "bal.flow_calls",
            "bal.bisect_steps",
            "bal.rounds",
            "local_search.evaluations",
            "validate.calls",
        ] {
            assert!(trace.counter(counter) > 0, "counter '{counter}' is zero");
        }
        std::fs::remove_file(&p_inst).ok();
        std::fs::remove_file(&p_trace).ok();
    }

    #[test]
    fn solve_reports_certified_bound() {
        let p = tmp_instance();
        let out = run(&args(&["solve", &p, "--algo", "bal"])).unwrap();
        assert!(out.contains("certified lower bound"), "{out}");
        assert!(out.contains("ratio 1.0000"), "{out}");
        std::fs::remove_file(&p).ok();
    }

    /// Satellite fix: a failed solve chain with `--telemetry` must still
    /// write the partial trace, and the trace must carry the error.
    #[test]
    fn failed_solve_still_writes_partial_telemetry() {
        use ssp_probe::Trace;
        let _session = session_lock();
        let inst = families::general(20, 2, 2.0).gen(1);
        let dir = std::env::temp_dir();
        let p_inst = dir.join(format!("ssp_cli_ftel_{}.ssp", std::process::id()));
        let p_trace = dir.join(format!("ssp_cli_ftel_{}.jsonl", std::process::id()));
        std::fs::write(&p_inst, io::emit(&inst)).unwrap();
        // `exact` is precondition-limited to n <= 16; --no-fallback makes the
        // whole chain fail.
        let err = run(&args(&[
            "solve",
            &p_inst.to_string_lossy(),
            "--algo",
            "exact",
            "--no-fallback",
            "--telemetry",
            &p_trace.to_string_lossy(),
        ]))
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(
            err.message.contains("partial telemetry written to"),
            "{}",
            err.message
        );
        let text = std::fs::read_to_string(&p_trace).expect("trace file must exist");
        let trace = Trace::parse(&text).expect("partial trace must parse");
        trace.validate().expect("partial trace must be well-formed");
        let error = trace.error.as_deref().expect("trace carries the error");
        assert!(error.contains("precondition"), "{error}");
        // The attempt was still traced: the solve root span exists.
        assert!(trace.span_count("solve") > 0);
        std::fs::remove_file(&p_inst).ok();
        std::fs::remove_file(&p_trace).ok();
    }

    /// End-to-end trace analysis: a real traced solve rendered through
    /// `trace report`, `trace fold` and `trace diff` (against itself).
    #[test]
    fn trace_report_fold_and_diff_render_a_real_trace() {
        let _session = session_lock();
        let inst = families::general(12, 3, 2.0).gen(23);
        let dir = std::env::temp_dir();
        let p_inst = dir.join(format!("ssp_cli_trpt_{}.ssp", std::process::id()));
        let p_trace = dir.join(format!("ssp_cli_trpt_{}.jsonl", std::process::id()));
        std::fs::write(&p_inst, io::emit(&inst)).unwrap();
        run(&args(&[
            "solve",
            &p_inst.to_string_lossy(),
            "--algo",
            "local",
            "--telemetry",
            &p_trace.to_string_lossy(),
        ]))
        .unwrap();
        let p = p_trace.to_string_lossy().into_owned();

        let report = run(&args(&["trace", "report", &p])).unwrap();
        assert!(report.contains("solve"), "{report}");
        assert!(report.contains("lower_bound"), "{report}");
        // The histogram table with derived quantiles is present.
        assert!(report.contains("p50"), "{report}");
        assert!(report.contains("bal.bisect.probes"), "{report}");

        let folded = run(&args(&["trace", "fold", &p])).unwrap();
        let first = folded.lines().next().unwrap();
        assert!(first.starts_with("solve"), "{first}");
        // Folded format: 'stack;path self_ns' with a numeric sample count.
        assert!(
            folded.lines().all(|l| l
                .rsplit_once(' ')
                .is_some_and(|(_, n)| n.parse::<u64>().is_ok())),
            "{folded}"
        );
        assert!(folded.lines().any(|l| l.contains(';')), "{folded}");

        // A trace diffed against itself has no regressions to flag.
        let diff = run(&args(&["trace", "diff", &p, &p])).unwrap();
        assert!(!diff.contains(" !"), "{diff}");

        // Usage guardrails.
        assert_eq!(run(&args(&["trace"])).unwrap_err().code, 2);
        assert_eq!(run(&args(&["trace", "report"])).unwrap_err().code, 2);
        assert_eq!(run(&args(&["trace", "nope", &p])).unwrap_err().code, 2);
        std::fs::remove_file(&p_inst).ok();
        std::fs::remove_file(&p_trace).ok();
    }

    /// The regression gate: identical artifacts pass; an injected 10%
    /// regression on a real cell makes `bench-diff` exit nonzero.
    #[test]
    fn bench_diff_gates_on_injected_regression() {
        let dir = std::env::temp_dir();
        let p_old = dir.join(format!("ssp_cli_bd_old_{}.json", std::process::id()));
        let p_new = dir.join(format!("ssp_cli_bd_new_{}.json", std::process::id()));
        let snapshot = |fast: f64| {
            format!(
                concat!(
                    "{{\"bench\":\"yds_kernel\",\"alpha\":2.0,\"unit\":\"ms_median\",\"cells\":[\n",
                    "  {{\"family\":\"agreeable\",\"n\":50,\"fast_ms\":0.007,\"ref_ms\":0.006}},\n",
                    "  {{\"family\":\"agreeable\",\"n\":200,\"fast_ms\":{},\"ref_ms\":0.35}}\n",
                    "]}}"
                ),
                fast
            )
        };
        std::fs::write(&p_old, snapshot(0.113)).unwrap();
        std::fs::write(&p_new, snapshot(0.113)).unwrap();
        let old = p_old.to_string_lossy().into_owned();
        let new = p_new.to_string_lossy().into_owned();

        // Unchanged artifact passes.
        let out = run(&args(&["bench-diff", &old, &new])).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");

        // Injected 10%+ regression on the n=200 cell: exit nonzero.
        std::fs::write(&p_new, snapshot(0.113 * 1.11)).unwrap();
        let err = run(&args(&["bench-diff", &old, &new])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("1 regression(s)"), "{}", err.message);
        assert!(err.message.contains('!'), "{}", err.message);

        // A looser threshold lets the same pair pass.
        let out = run(&args(&["bench-diff", &old, &new, "--threshold", "25"])).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");

        // Usage guardrails.
        assert_eq!(run(&args(&["bench-diff", &old])).unwrap_err().code, 2);
        std::fs::remove_file(&p_old).ok();
        std::fs::remove_file(&p_new).ok();
    }

    /// The trajectory service: sparklines and history-calibrated
    /// annotations render from a committed-style history, and `--gate`
    /// exits nonzero on an injected regression.
    #[test]
    fn bench_report_renders_trajectory_and_gates() {
        let dir = std::env::temp_dir();
        let p_hist = dir.join(format!("ssp_cli_report_{}.jsonl", std::process::id()));
        let history = |tail_ms: f64| {
            [0.100, 0.102, 0.098, 0.101, 0.099, tail_ms]
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    format!(
                        "{{\"type\":\"bench_run\",\"bench\":\"yds_kernel\",\"rev\":\"r{i}\",\"threads\":4,\"host\":\"ab12cd34\",\"cells\":[{{\"family\":\"agreeable\",\"n\":200,\"fast_ms\":{v}}}]}}\n"
                    )
                })
                .collect::<String>()
        };
        std::fs::write(&p_hist, history(0.101)).unwrap();
        let p = p_hist.to_string_lossy().into_owned();

        // In-noise trajectory: a sparkline per metric, nothing flagged.
        let out = run(&args(&["bench", "report", &p])).unwrap();
        assert!(out.contains("bench yds_kernel"), "{out}");
        assert!(out.contains("family=agreeable,n=200"), "{out}");
        assert!(out.contains("fast_ms"), "{out}");
        assert!(
            out.chars().any(|c| ('▁'..='█').contains(&c)),
            "sparkline present: {out}"
        );
        assert!(out.contains("0 regression(s)"), "{out}");
        run(&args(&["bench", "report", &p, "--gate"])).unwrap();

        // Injected 20% step: annotated, markdown renders, --gate exits 1.
        std::fs::write(&p_hist, history(0.120)).unwrap();
        let out = run(&args(&["bench", "report", &p])).unwrap();
        assert!(out.contains("1 regression(s)"), "{out}");
        assert!(out.contains(" !"), "{out}");
        let md = run(&args(&["bench", "report", &p, "--markdown"])).unwrap();
        assert!(md.contains("### yds_kernel"), "{md}");
        assert!(md.contains("**regressed**"), "{md}");
        let err = run(&args(&["bench", "report", &p, "--gate"])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("1 regression(s)"), "{}", err.message);

        // A malformed trailing line degrades to a warning, not an error.
        let mut truncated = history(0.101);
        truncated.push_str("{\"type\":\"bench_run\",\"bench\":\"yds_k");
        std::fs::write(&p_hist, truncated).unwrap();
        let out = run(&args(&["bench", "report", &p])).unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(out.contains("0 regression(s)"), "{out}");

        // Usage guardrails.
        assert_eq!(run(&args(&["bench"])).unwrap_err().code, 2);
        assert_eq!(run(&args(&["bench", "nope", &p])).unwrap_err().code, 2);
        assert_eq!(run(&args(&["bench", "report"])).unwrap_err().code, 2);
        assert_eq!(
            run(&args(&["bench", "report", &p, "--window", "0"]))
                .unwrap_err()
                .code,
            2
        );
        std::fs::remove_file(&p_hist).ok();
    }

    #[test]
    fn corrupted_file_is_a_typed_runtime_error() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ssp_cli_corrupt_{}.ssp", std::process::id()));
        let p = path.to_string_lossy().into_owned();
        for (text, want) in [
            ("machines 2\njob 0 1.0 0.0", "job needs 4 fields"),
            ("machines", "machines needs a value"),
            ("job 0 nan 0.0 2.0", "must be finite"),
            ("frobnicate 3", "unknown directive"),
        ] {
            std::fs::write(&path, text).unwrap();
            let err = run(&args(&["solve", &p])).unwrap_err();
            assert_eq!(err.code, 1, "{text}");
            assert!(err.message.contains("cannot parse"), "{}", err.message);
            assert!(
                err.message.contains(want),
                "expected '{want}' in: {}",
                err.message
            );
        }
        std::fs::remove_file(&path).ok();
    }

    // -- solve deadline/retry flags (serve machinery on the one-shot path) --

    /// `--timeout-ms 0` must thread an already-expired deadline into the
    /// solver budget: either a best-so-far salvage annotated as exhausted,
    /// or a typed deadline failure — never an unannotated success.
    #[test]
    fn solve_timeout_flag_threads_a_deadline_into_the_budget() {
        let p = tmp_instance();
        match run(&args(&[
            "solve",
            &p,
            "--algo",
            "bal",
            "--no-fallback",
            "--timeout-ms",
            "0",
        ])) {
            Ok(out) => assert!(out.contains("deadline budget exhausted"), "{out}"),
            Err(e) => {
                assert_eq!(e.code, 1);
                assert!(e.message.contains("deadline"), "{}", e.message);
            }
        }
        // A generous timeout changes nothing about a healthy solve.
        let out = run(&args(&[
            "solve",
            &p,
            "--algo",
            "rr",
            "--timeout-ms",
            "60000",
        ]))
        .unwrap();
        assert!(out.contains("energy"), "{out}");
        assert!(!out.contains("budget exhausted"), "{out}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn solve_retries_recover_from_injected_transients() {
        let p = tmp_instance();
        let out = run(&args(&[
            "solve",
            &p,
            "--algo",
            "rr",
            "--retries",
            "2",
            "--inject-transient",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("succeeded after 2 transient retries"), "{out}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn solve_exhausted_retries_exit_with_a_runtime_error() {
        let p = tmp_instance();
        let err = run(&args(&[
            "solve",
            &p,
            "--algo",
            "rr",
            "--retries",
            "1",
            "--inject-transient",
            "5",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(
            err.message.contains("injected transient"),
            "{}",
            err.message
        );
        assert!(
            err.message.contains("1 transient retries spent"),
            "{}",
            err.message
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn solve_bad_retry_flag_values_are_usage_errors() {
        let p = tmp_instance();
        for flags in [
            ["--retries", "many"],
            ["--timeout-ms", "soon"],
            ["--inject-transient", "x"],
        ] {
            let err = run(&args(&["solve", &p, flags[0], flags[1]])).unwrap_err();
            assert_eq!(err.code, 2, "{flags:?}");
        }
        std::fs::remove_file(&p).ok();
    }

    /// Satellite fix: the telemetry guard flushes the trace even when the
    /// path between solve and the explicit write unwinds (a rendering
    /// panic), not just on typed-error failures.
    #[test]
    fn telemetry_guard_flushes_on_unwind() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ssp_cli_guard_{}.jsonl", std::process::id()));
        let p = path.to_string_lossy().into_owned();
        let trace = ssp_probe::Trace {
            error: Some("rendering exploded".into()),
            ..Default::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = TelemetryFlushGuard::arm(Some(&p), Some(&trace));
            panic!("boom in gantt rendering");
        }));
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).expect("guard must have flushed");
        let parsed = ssp_probe::Trace::parse(&text).expect("flushed trace parses");
        assert_eq!(parsed.error.as_deref(), Some("rendering exploded"));
        // An explicit flush defuses the drop-path write.
        std::fs::remove_file(&path).ok();
        let mut guard = TelemetryFlushGuard::arm(Some(&p), Some(&trace));
        assert!(matches!(guard.flush(), Some(Ok(_))));
        std::fs::remove_file(&path).unwrap();
        drop(guard);
        assert!(!path.exists(), "defused guard must not rewrite the trace");
    }

    // -- serve daemon + drive client over a Unix socket --

    /// End-to-end transport test: a daemon on a Unix socket, driven by the
    /// `serve-drive` client, then shut down via the TERM flag (the signal
    /// handler's one store, exercised directly). Every request must be
    /// answered before the daemon reports its summary.
    #[test]
    #[cfg(unix)]
    fn serve_socket_answers_every_request_and_drains_on_term() {
        let _session = session_lock(); // the daemon owns a probe session
        let dir = std::env::temp_dir();
        let sock = dir.join(format!("ssp_serve_test_{}.sock", std::process::id()));
        let sock_s = sock.to_string_lossy().into_owned();
        let p_trace = dir.join(format!("ssp_serve_test_{}.jsonl", std::process::id()));
        let trace_s = p_trace.to_string_lossy().into_owned();

        let daemon = std::thread::spawn({
            let sock_s = sock_s.clone();
            let trace_s = trace_s.clone();
            move || {
                run(&args(&[
                    "serve",
                    "--socket",
                    &sock_s,
                    "--workers",
                    "2",
                    "--telemetry",
                    &trace_s,
                ]))
            }
        });

        // serve-drive connects (with retry while the daemon binds), sends
        // 9 mixed requests incl. repeats, half-closes, and requires 9
        // well-formed responses.
        let drive = run(&args(&[
            "serve-drive",
            "--socket",
            &sock_s,
            "--count",
            "9",
            "--seed",
            "4",
        ]))
        .unwrap();
        assert!(drive.contains("9/9 answered"), "{drive}");
        assert!(drive.contains("cache hits"), "{drive}");

        // SIGTERM delivery is one atomic store; perform it directly.
        serve_on_signal(15);
        let summary = daemon.join().unwrap().unwrap();
        assert!(summary.contains("9 submitted"), "{summary}");
        assert!(summary.contains("0 panic-isolated"), "{summary}");
        assert!(summary.contains("latency: p50"), "{summary}");
        assert!(summary.contains("telemetry written to"), "{summary}");
        let text = std::fs::read_to_string(&p_trace).unwrap();
        let trace = ssp_probe::Trace::parse(&text).unwrap();
        trace.validate().unwrap();
        assert!(trace.counter("serve.ok") > 0, "serve counters in the trace");
        assert!(trace.hist("serve.request_us").is_some());
        assert!(!sock.exists(), "socket file removed on shutdown");
        std::fs::remove_file(&p_trace).ok();
    }

    #[test]
    fn serve_rejects_zero_workers() {
        assert_eq!(
            run(&args(&["serve", "--workers", "0"])).unwrap_err().code,
            2
        );
    }

    #[test]
    #[cfg(unix)]
    fn serve_drive_needs_a_socket_and_a_listening_daemon() {
        assert_eq!(run(&args(&["serve-drive"])).unwrap_err().code, 2);
        // Nobody listening: runtime error after the connect retries.
        let err = run(&args(&[
            "serve-drive",
            "--socket",
            "/nonexistent-dir/nope.sock",
            "--count",
            "1",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("cannot connect"), "{}", err.message);
    }

    // -- stream: the online arrival engine --

    #[test]
    fn stream_generated_family_reports_and_checks() {
        for policy in ["rr", "load", "density"] {
            let out = run(&args(&[
                "stream", "--family", "bursty", "--n", "300", "--m", "3", "--seed", "2",
                "--policy", policy, "--report", "--check",
            ]))
            .unwrap();
            assert!(out.contains("certified LB"), "{policy}: {out}");
            assert!(out.contains("ratio"), "{policy}: {out}");
            assert!(out.contains("compactions"), "{policy}: {out}");
            assert!(out.contains("machine 2: energy"), "{policy}: {out}");
        }
    }

    #[test]
    fn stream_emit_then_replay_gives_identical_energy() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("ssp_cli_stream_{}.sst", std::process::id()));
        let t = trace.to_string_lossy().into_owned();
        let gen_out = run(&args(&[
            "stream", "--family", "poisson", "--n", "200", "--m", "2", "--seed", "11", "--emit", &t,
        ]))
        .unwrap();
        // Replay the emitted trace: header carries m/alpha, energy matches.
        let replay_out = run(&args(&["stream", &t])).unwrap();
        let energy_of = |s: &str| {
            s.split("energy ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(energy_of(&gen_out), energy_of(&replay_out));
        assert!(replay_out.contains("| m 2 |"), "{replay_out}");
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn stream_avr_and_no_lb_modes() {
        let out = run(&args(&[
            "stream", "--family", "tight", "--n", "150", "--m", "2", "--sched", "avr", "--no-lb",
        ]))
        .unwrap();
        assert!(out.contains("sched avr"), "{out}");
        assert!(out.contains("lower bound off"), "{out}");
        // --check without a bound is a runtime error, not a silent pass.
        let err = run(&args(&[
            "stream", "--family", "tight", "--n", "50", "--m", "2", "--no-lb", "--check",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn stream_telemetry_carries_online_counters_and_spans() {
        let _session = session_lock(); // stream owns a probe session here
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ssp_cli_stream_tel_{}.jsonl", std::process::id()));
        let t = path.to_string_lossy().into_owned();
        let out = run(&args(&[
            "stream",
            "--family",
            "bursty",
            "--n",
            "250",
            "--m",
            "2",
            "--telemetry",
            &t,
        ]))
        .unwrap();
        assert!(out.contains("telemetry written to"), "{out}");
        let trace = ssp_probe::Trace::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        trace.validate().unwrap();
        assert_eq!(trace.counter("online.arrivals"), 250);
        assert!(trace.counter("online.compactions") > 0);
        assert!(trace.hist("online.window_jobs").is_some());
        assert!(
            trace.spans.iter().any(|s| s.name == "online.compact"),
            "chunk flushes must appear as online.compact spans"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_usage_errors() {
        assert_eq!(run(&args(&["stream"])).unwrap_err().code, 2);
        assert_eq!(
            run(&args(&[
                "stream", "--family", "nope", "--n", "10", "--m", "2"
            ]))
            .unwrap_err()
            .code,
            2
        );
        assert_eq!(
            run(&args(&["stream", "--family", "bursty", "--n", "10"]))
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run(&args(&[
                "stream", "--family", "bursty", "--n", "10", "--m", "2", "--policy", "psychic",
            ]))
            .unwrap_err()
            .code,
            2
        );
        assert_eq!(
            run(&args(&["stream", "/nonexistent/trace.sst"]))
                .unwrap_err()
                .code,
            1
        );
    }
}
