//! # speedscale
//!
//! Facade crate for the *Speed Scaling on Parallel Processors* reproduction:
//! energy-minimal deadline scheduling on `m` identical variable-speed
//! processors with power function `s^alpha`.
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`model`] — jobs, instances, schedules, validation, energy accounting.
//! * [`maxflow`] — the Dinic max-flow / min-cut engine used by feasibility
//!   tests and the migratory optimum.
//! * [`single`] — single-processor algorithms (YDS, AVR, OA, BKP).
//! * [`migratory`] — the migratory optimum (BAL), the makespan-under-budget
//!   extension (MBAL), and the KKT optimality certificate.
//! * [`core`] — the paper's non-migratory algorithms: optimal round-robin for
//!   unit agreeable instances, approximation algorithms, exact solver and
//!   NP-hardness gadgets.
//! * [`workloads`] — seeded workload generators.
//! * [`exper`] — the experiment harness regenerating every table/figure of
//!   `EXPERIMENTS.md`.
//! * [`prng`] — dependency-free seeded randomness (the workspace's `rand`
//!   replacement, so everything builds offline).
//! * [`probe`] — zero-dependency observability: phase spans, counters and
//!   JSONL telemetry traces (see `docs/OBSERVABILITY.md`).
//! * [`harness`] — the panic-free solve harness: typed [`model::SolveError`]s,
//!   the degradation chain, fault injection, and certified lower bounds.
//!
//! ## Quickstart
//!
//! ```rust
//! use speedscale::model::{Instance, Job};
//! use speedscale::core::rr::rr_yds;
//! use speedscale::model::schedule::ValidationOptions;
//!
//! // Four unit jobs with agreeable deadlines on two processors, alpha = 2.
//! let inst = Instance::new(
//!     vec![
//!         Job::new(0, 1.0, 0.0, 2.0),
//!         Job::new(1, 1.0, 0.5, 2.5),
//!         Job::new(2, 1.0, 1.0, 3.0),
//!         Job::new(3, 1.0, 1.5, 3.5),
//!     ],
//!     2,
//!     2.0,
//! )
//! .unwrap();
//!
//! // Round-robin + YDS is *optimal* on unit-work agreeable instances.
//! let schedule = rr_yds(&inst);
//! let stats = schedule.validate(&inst, ValidationOptions::non_migratory()).unwrap();
//! assert!(stats.energy > 0.0);
//! ```

#![warn(missing_docs)]

pub mod benchdata;
pub mod benchreport;
pub mod cli;

pub use ssp_core as core;
pub use ssp_exper as exper;
pub use ssp_harness as harness;
pub use ssp_maxflow as maxflow;
pub use ssp_migratory as migratory;
pub use ssp_model as model;
pub use ssp_prng as prng;
pub use ssp_probe as probe;
pub use ssp_single as single;
pub use ssp_workloads as workloads;
