//! The `speedscale` command-line tool; all logic lives in
//! [`speedscale::cli`] so it stays unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match speedscale::cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("speedscale: {}", e.message);
            std::process::exit(e.code);
        }
    }
}
