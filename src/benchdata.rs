//! Bench artifact parsing and the `bench-diff` regression gate.
//!
//! The bench harness writes two kinds of artifacts (see
//! `docs/OBSERVABILITY.md`):
//!
//! * **Snapshots** — one pretty-printed JSON object per file
//!   (`BENCH_yds.json`): `{"bench":..., "unit":..., "cells":[{...}, ...]}`.
//! * **Trajectories** — `BENCH_history.jsonl`, one flat-written JSON object
//!   per line with `"type":"bench_run"`, the git `rev`, and the same cells;
//!   appended by every measured bench run.
//!
//! Both are parsed by the small recursive-descent JSON reader in this
//! module (the trace JSONL parser in `ssp-probe` is deliberately flat-only,
//! and bench cells nest). Cells are keyed by their string-valued fields
//! plus `n` (e.g. `family=agreeable,n=200`) and compared on their `*_ms`
//! fields; other numeric fields (speedups, counters, energies) ride along
//! as context but are not gated.

use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal recursive JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value. Minimal by design: just enough for bench artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (`None` for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document (objects, arrays, strings, numbers, booleans,
/// null). Errors carry a byte offset for context.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", want as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            // Not JSON, but a writer formatting a poisoned f64 emits the
            // bare token; accepting it lets the reader drop the one metric
            // instead of rejecting the whole line.
            Some(b'N') => self.literal("NaN", Json::Num(f64::NAN)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| "bad \\u codepoint".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// Bench artifacts
// ---------------------------------------------------------------------------

/// One measured cell: a stable key (string fields + `n`) and its timing
/// metrics (every `*_ms` field).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Stable identity, e.g. `family=agreeable,n=200`.
    pub key: String,
    /// `(name, milliseconds)` for every `*_ms` field, in artifact order.
    pub metrics: Vec<(String, f64)>,
}

/// A parsed bench artifact: either one snapshot object or the last run of a
/// `BENCH_history.jsonl` trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Bench id (`"yds_kernel"`); empty if the artifact does not carry one.
    pub bench: String,
    /// Git revision for history lines; `None` for snapshot files.
    pub rev: Option<String>,
    /// The measured cells.
    pub cells: Vec<BenchCell>,
}

/// Parse a bench artifact from file text. A single JSON object is read as a
/// snapshot; multi-line text is treated as a history trajectory and the
/// *last* line carrying a `cells` array wins (the most recent run).
pub fn parse_artifact(text: &str) -> Result<BenchArtifact, String> {
    // Snapshots are one (possibly pretty-printed) document; history files
    // are strict JSONL. Try the whole text first, then fall back to the
    // last history line carrying cells (the most recent run).
    let doc = match parse_json(text.trim()) {
        Ok(doc) => doc,
        Err(whole_err) => text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .rev()
            .find_map(|l| parse_json(l).ok().filter(|j| j.get("cells").is_some()))
            .ok_or_else(|| {
                format!(
                    "neither a JSON snapshot ({whole_err}) nor a JSONL history with a 'cells' line"
                )
            })?,
    };
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| "artifact has no 'cells' array".to_string())?;
    Ok(BenchArtifact {
        bench: doc
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        rev: doc.get("rev").and_then(Json::as_str).map(str::to_string),
        cells: cells.iter().map(cell_from).collect(),
    })
}

/// One `bench_run` line of a `BENCH_history.jsonl` trajectory, with the
/// run-level environment metadata newer writers append (`None` on v1
/// lines, which carried none).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Bench id (`"yds_kernel"`).
    pub bench: String,
    /// Short git revision the run was taken at.
    pub rev: String,
    /// Unix timestamp of the HEAD commit at run time.
    pub ts: Option<f64>,
    /// Effective worker thread count of the run.
    pub threads: Option<u64>,
    /// Host fingerprint (hex hash); cross-host comparisons are noise.
    pub host: Option<String>,
    /// The measured cells, deduplicated by key (first occurrence wins).
    pub cells: Vec<BenchCell>,
}

/// Parse a whole history trajectory: every `bench_run` line, in file
/// order, with per-line resilience. Malformed lines (e.g. a run killed
/// mid-append leaving a truncated tail), duplicate cell keys within one
/// run, and non-finite `*_ms` metrics are *skipped with a warning* rather
/// than failing the parse — one bad append must not take down the whole
/// trajectory report. Lines that parse but are not `bench_run` records
/// are ignored silently (the file format admits other record types).
pub fn parse_history(text: &str) -> (Vec<BenchRun>, Vec<String>) {
    let mut runs = Vec::new();
    let mut warnings = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let doc = match parse_json(line) {
            Ok(doc) => doc,
            Err(e) => {
                warnings.push(format!("line {lineno}: skipped unparseable line ({e})"));
                continue;
            }
        };
        if doc.get("type").and_then(Json::as_str) != Some("bench_run") {
            continue;
        }
        let Some(cells) = doc.get("cells").and_then(Json::as_arr) else {
            warnings.push(format!("line {lineno}: bench_run without a 'cells' array"));
            continue;
        };
        let mut run = BenchRun {
            bench: doc
                .get("bench")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            rev: doc
                .get("rev")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            ts: doc.get("ts").and_then(Json::as_f64),
            threads: doc
                .get("threads")
                .and_then(Json::as_f64)
                .filter(|t| t.is_finite() && *t >= 0.0)
                .map(|t| t as u64),
            host: doc.get("host").and_then(Json::as_str).map(str::to_string),
            cells: Vec::new(),
        };
        for cell in cells {
            let mut parsed = cell_from(cell);
            parsed.metrics.retain(|(name, v)| {
                if v.is_finite() {
                    true
                } else {
                    warnings.push(format!(
                        "line {lineno}: dropped non-finite metric {name} of cell {}",
                        parsed.key
                    ));
                    false
                }
            });
            if run.cells.iter().any(|c| c.key == parsed.key) {
                warnings.push(format!(
                    "line {lineno}: duplicate cell {} (kept the first)",
                    parsed.key
                ));
                continue;
            }
            run.cells.push(parsed);
        }
        runs.push(run);
    }
    (runs, warnings)
}

/// Key = string fields plus `n` (in member order); metrics = `*_ms` fields.
fn cell_from(obj: &Json) -> BenchCell {
    let mut key = String::new();
    let mut metrics = Vec::new();
    if let Json::Obj(members) = obj {
        for (name, value) in members {
            match value {
                Json::Str(s) => {
                    if !key.is_empty() {
                        key.push(',');
                    }
                    let _ = write!(key, "{name}={s}");
                }
                Json::Num(v) if name == "n" => {
                    if !key.is_empty() {
                        key.push(',');
                    }
                    let _ = write!(key, "n={v}");
                }
                Json::Num(v) if name.ends_with("_ms") => {
                    metrics.push((name.clone(), *v));
                }
                _ => {}
            }
        }
    }
    BenchCell { key, metrics }
}

// ---------------------------------------------------------------------------
// The regression gate
// ---------------------------------------------------------------------------

/// One compared metric in [`BenchDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Cell key (`family=...,n=...`).
    pub key: String,
    /// Metric name (`fast_ms`, `ref_ms`, ...).
    pub metric: String,
    /// Old (baseline) milliseconds.
    pub old_ms: f64,
    /// New milliseconds.
    pub new_ms: f64,
    /// Relative change, `new/old - 1`.
    pub delta: f64,
    /// Past the threshold *and* above the noise floor.
    pub regressed: bool,
}

/// The result of comparing two bench artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Every metric present in both artifacts, in new-artifact order.
    pub rows: Vec<DiffRow>,
    /// Cell keys present in the baseline but gone from the new artifact.
    pub missing: Vec<String>,
    /// Cell keys new in this run (no baseline to compare).
    pub added: Vec<String>,
    /// The relative regression threshold used (fraction, e.g. `0.10`).
    pub threshold: f64,
    /// The noise floor used: cells whose new median is below this many
    /// milliseconds are reported but never gate (tiny-n cells are
    /// dominated by fixed kernel overhead and timer noise).
    pub min_ms: f64,
}

impl BenchDiff {
    /// Number of gating regressions.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// Human-readable comparison table; regressions are flagged with `!`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<36} {:<10} {:>10} {:>10} {:>9}",
            "cell", "metric", "old", "new", "delta"
        );
        for r in &self.rows {
            let flag = if r.regressed {
                " !"
            } else if r.delta.abs() >= self.threshold {
                // Crossed the threshold but under the noise floor (or an
                // improvement): visible, not gating.
                " ~"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<36} {:<10} {:>10.4} {:>10.4} {:>+8.1}%{flag}",
                r.key,
                r.metric,
                r.old_ms,
                r.new_ms,
                r.delta * 100.0
            );
        }
        for key in &self.missing {
            let _ = writeln!(out, "{key:<36} missing from new artifact");
        }
        for key in &self.added {
            let _ = writeln!(out, "{key:<36} new cell (no baseline)");
        }
        let n = self.regressions();
        let _ = writeln!(
            out,
            "{n} regression(s) past {:.0}% (noise floor {} ms)",
            self.threshold * 100.0,
            self.min_ms
        );
        out
    }
}

/// Compare `new` against the `old` baseline. A row gates (`regressed`)
/// when its relative slowdown reaches `threshold` and the new median is at
/// least `min_ms` (sub-floor cells — e.g. the n=50 YDS cells, which sit in
/// fixed-overhead territory — never gate).
pub fn diff_artifacts(
    old: &BenchArtifact,
    new: &BenchArtifact,
    threshold: f64,
    min_ms: f64,
) -> BenchDiff {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    let mut added = Vec::new();
    for cell in &new.cells {
        let Some(base) = old.cells.iter().find(|c| c.key == cell.key) else {
            added.push(cell.key.clone());
            continue;
        };
        for (metric, new_ms) in &cell.metrics {
            let Some(&(_, old_ms)) = base.metrics.iter().find(|(m, _)| m == metric) else {
                continue;
            };
            let delta = if old_ms > 0.0 {
                new_ms / old_ms - 1.0
            } else {
                0.0
            };
            rows.push(DiffRow {
                key: cell.key.clone(),
                metric: metric.clone(),
                old_ms,
                new_ms: *new_ms,
                delta,
                regressed: delta >= threshold && *new_ms >= min_ms && old_ms > 0.0,
            });
        }
    }
    for cell in &old.cells {
        if !new.cells.iter().any(|c| c.key == cell.key) {
            missing.push(cell.key.clone());
        }
    }
    BenchDiff {
        rows,
        missing,
        added,
        threshold,
        min_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_nesting_and_numbers() {
        let doc = parse_json(r#"{"a": [1, -2.5, 3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    fn snapshot(fast_200: f64) -> String {
        format!(
            r#"{{"bench":"yds_kernel","alpha":2.0,"unit":"ms_median","cells":[
  {{"family":"agreeable","n":50,"fast_ms":0.007,"ref_ms":0.006,"speedup":0.89}},
  {{"family":"agreeable","n":200,"fast_ms":{fast_200},"ref_ms":0.350,"speedup":3.1}}
]}}"#
        )
    }

    #[test]
    fn artifact_cells_key_on_family_and_n() {
        let art = parse_artifact(&snapshot(0.113)).unwrap();
        assert_eq!(art.bench, "yds_kernel");
        assert_eq!(art.cells.len(), 2);
        assert_eq!(art.cells[1].key, "family=agreeable,n=200");
        assert_eq!(
            art.cells[1].metrics,
            vec![("fast_ms".to_string(), 0.113), ("ref_ms".to_string(), 0.35)]
        );
    }

    #[test]
    fn history_takes_the_last_run() {
        let history = format!(
            "{}\n{}\n",
            r#"{"type":"bench_run","bench":"yds_kernel","rev":"aaa111","cells":[{"family":"agreeable","n":200,"fast_ms":0.100}]}"#,
            r#"{"type":"bench_run","bench":"yds_kernel","rev":"bbb222","cells":[{"family":"agreeable","n":200,"fast_ms":0.120}]}"#
        );
        let art = parse_artifact(&history).unwrap();
        assert_eq!(art.rev.as_deref(), Some("bbb222"));
        assert_eq!(art.cells[0].metrics[0].1, 0.120);
    }

    #[test]
    fn unchanged_artifact_passes_and_regression_gates() {
        let old = parse_artifact(&snapshot(0.113)).unwrap();
        let same = diff_artifacts(&old, &old, 0.10, 0.05);
        assert_eq!(same.regressions(), 0);
        // 10% injected regression on the n=200 cell: gates.
        let slow = parse_artifact(&snapshot(0.113 * 1.101)).unwrap();
        let diff = diff_artifacts(&old, &slow, 0.10, 0.05);
        assert_eq!(diff.regressions(), 1);
        let row = diff.rows.iter().find(|r| r.regressed).unwrap();
        assert_eq!(row.key, "family=agreeable,n=200");
        assert_eq!(row.metric, "fast_ms");
        assert!(diff.render().contains('!'));
    }

    #[test]
    fn noise_floor_shields_tiny_cells() {
        // Double the n=50 cell (0.007 → 0.014 ms): far past 10%, but the
        // new value is below the 0.05 ms floor, so it must not gate.
        let old = parse_artifact(&snapshot(0.113)).unwrap();
        let mut slow = old.clone();
        slow.cells[0].metrics[0].1 = 0.014;
        let diff = diff_artifacts(&old, &slow, 0.10, 0.05);
        assert_eq!(diff.regressions(), 0);
        assert!(diff.render().contains('~'), "visible but not gating");
    }

    /// Writer/reader contract: everything `ssp_bench::artifact` emits —
    /// snapshot and history line alike — must parse back here with the
    /// same keys and gated metrics.
    #[test]
    fn bench_writer_output_round_trips() {
        use ssp_bench::artifact::{Artifact, CellBuilder};
        let artifact = Artifact {
            bench: "yds_kernel".into(),
            alpha: 2.0,
            unit: "ms_median".into(),
            cells: vec![CellBuilder::new("crossing", 800)
                .metric_ms("fast_ms", 1.25)
                .metric_ms("ref_ms", 14.5)
                .num("speedup", 11.6, 2)
                .int("peels", 220)
                .render()],
        };
        for text in [
            artifact.snapshot_json(),
            artifact.history_line("abc1234") + "\n",
        ] {
            let parsed = parse_artifact(&text).unwrap();
            assert_eq!(parsed.bench, "yds_kernel");
            assert_eq!(parsed.cells.len(), 1);
            assert_eq!(parsed.cells[0].key, "family=crossing,n=800");
            assert_eq!(
                parsed.cells[0].metrics,
                vec![("fast_ms".to_string(), 1.25), ("ref_ms".to_string(), 14.5)]
            );
        }
        assert_eq!(
            parse_artifact(&artifact.history_line("abc1234"))
                .unwrap()
                .rev
                .as_deref(),
            Some("abc1234")
        );
    }

    #[test]
    fn history_parses_all_runs_with_metadata() {
        let text = format!(
            "{}\n{}\n",
            r#"{"type":"bench_run","bench":"yds_kernel","rev":"aaa111","cells":[{"family":"agreeable","n":200,"fast_ms":0.100}]}"#,
            r#"{"type":"bench_run","bench":"yds_kernel","rev":"bbb222","alpha":2,"unit":"ms_median","ts":1754500000,"threads":4,"host":"ab12cd34","cells":[{"family":"agreeable","n":200,"fast_ms":0.120}]}"#
        );
        let (runs, warnings) = parse_history(&text);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(runs.len(), 2);
        // v1 line: no metadata.
        assert_eq!(runs[0].rev, "aaa111");
        assert_eq!(runs[0].ts, None);
        assert_eq!(runs[0].threads, None);
        assert_eq!(runs[0].host, None);
        // v2 line: all three fields.
        assert_eq!(runs[1].ts, Some(1754500000.0));
        assert_eq!(runs[1].threads, Some(4));
        assert_eq!(runs[1].host.as_deref(), Some("ab12cd34"));
        assert_eq!(runs[1].cells[0].metrics[0].1, 0.120);
    }

    #[test]
    fn truncated_trailing_line_is_skipped_with_warning() {
        let text = format!(
            "{}\n{}",
            r#"{"type":"bench_run","bench":"b","rev":"aaa","cells":[{"family":"x","n":5,"t_ms":1.0}]}"#,
            r#"{"type":"bench_run","bench":"b","rev":"bbb","cells":[{"family":"x","#
        );
        let (runs, warnings) = parse_history(&text);
        assert_eq!(runs.len(), 1, "the complete run survives");
        assert_eq!(runs[0].rev, "aaa");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("line 2"), "{warnings:?}");
        // Other record types pass without a warning; bench_run without
        // cells warns.
        let (runs, warnings) =
            parse_history("{\"type\":\"note\"}\n{\"type\":\"bench_run\",\"rev\":\"c\"}\n");
        assert!(runs.is_empty());
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("'cells'"), "{warnings:?}");
    }

    #[test]
    fn duplicate_cells_keep_the_first_with_warning() {
        let text = r#"{"type":"bench_run","bench":"b","rev":"aaa","cells":[{"family":"x","n":5,"t_ms":1.0},{"family":"x","n":5,"t_ms":9.0},{"family":"y","n":5,"t_ms":2.0}]}"#;
        let (runs, warnings) = parse_history(text);
        assert_eq!(runs[0].cells.len(), 2);
        assert_eq!(runs[0].cells[0].metrics[0].1, 1.0, "first wins");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("duplicate cell family=x,n=5"));
    }

    #[test]
    fn nan_metrics_are_dropped_with_warning() {
        // A writer formatting f64::NAN emits the bare token; the line must
        // survive with that one metric dropped.
        let text = r#"{"type":"bench_run","bench":"b","rev":"aaa","cells":[{"family":"x","n":5,"bad_ms":NaN,"good_ms":1.5}]}"#;
        let (runs, warnings) = parse_history(text);
        assert_eq!(runs[0].cells[0].metrics, vec![("good_ms".to_string(), 1.5)]);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("bad_ms"), "{warnings:?}");
    }

    /// Writer/reader contract over the run metadata: `history_line_with`
    /// emits `ts`/`threads`/`host` and [`parse_history`] reads them back.
    #[test]
    fn history_metadata_round_trips_from_writer() {
        use ssp_bench::artifact::{Artifact, CellBuilder, RunMeta};
        let artifact = Artifact {
            bench: "yds_kernel".into(),
            alpha: 2.0,
            unit: "ms_median".into(),
            cells: vec![CellBuilder::new("crossing", 800)
                .metric_ms("fast_ms", 1.25)
                .render()],
        };
        let line = artifact.history_line_with(
            "abc1234",
            &RunMeta {
                commit_ts: Some(1754500000),
                threads: 8,
                host: "ab12cd34".into(),
            },
        );
        let (runs, warnings) = parse_history(&line);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(runs[0].bench, "yds_kernel");
        assert_eq!(runs[0].rev, "abc1234");
        assert_eq!(runs[0].ts, Some(1754500000.0));
        assert_eq!(runs[0].threads, Some(8));
        assert_eq!(runs[0].host.as_deref(), Some("ab12cd34"));
        assert_eq!(runs[0].cells[0].key, "family=crossing,n=800");
        // Without a commit timestamp the field is absent, not null.
        let bare = artifact.history_line_with(
            "abc1234",
            &RunMeta {
                commit_ts: None,
                threads: 8,
                host: "ab12cd34".into(),
            },
        );
        assert!(!bare.contains("\"ts\""));
        assert_eq!(parse_history(&bare).0[0].ts, None);
    }

    #[test]
    fn missing_and_added_cells_are_reported() {
        let old = parse_artifact(&snapshot(0.113)).unwrap();
        let mut new = old.clone();
        new.cells[0].key = "family=crossing,n=50".to_string();
        let diff = diff_artifacts(&old, &new, 0.10, 0.05);
        assert_eq!(diff.missing, vec!["family=agreeable,n=50".to_string()]);
        assert_eq!(diff.added, vec!["family=crossing,n=50".to_string()]);
    }
}
