//! Datacenter batch scheduling under energy billing.
//!
//! Scenario: a cluster tier runs DVFS-capable nodes (power ≈ `s^2.5` over the
//! managed frequency range). Batch analytics jobs arrive through the day;
//! each carries an SLA deadline. The operator wants the assignment of jobs
//! to nodes (no cross-node migration — container state is large) that
//! minimizes energy while meeting every SLA.
//!
//! This example generates a day-long trace, prices four assignment policies
//! against the migratory lower bound, and saves the trace in the text format
//! for later replay.
//!
//! ```text
//! cargo run --release --example datacenter_batch
//! ```

use speedscale::core::assignment::{assignment_energy, Assignment};
use speedscale::core::classified::classified_assignment;
use speedscale::core::list::{least_loaded, marginal_energy_greedy};
use speedscale::core::relax::relax_round;
use speedscale::core::rr::rr_assignment;
use speedscale::migratory::bal::bal;
use speedscale::model::io;
use speedscale::workloads::{ArrivalDist, Spec, WindowDist, WorkDist};

fn main() {
    // A day of bursty arrivals: 120 jobs, 8 nodes, alpha = 2.5.
    // Works in "normalized core-hours", SLAs 1.3-6x the work at unit speed.
    let spec = Spec::new(120, 8, 2.5)
        .arrivals(ArrivalDist::Bursty { burst: 6, gap: 1.2 })
        .work(WorkDist::LogNormal {
            mu: 0.0,
            sigma: 0.7,
        })
        .window(WindowDist::LaxityFactor { min: 1.3, max: 6.0 });
    let inst = spec.gen(2024);
    println!(
        "trace: {} jobs on {} nodes, alpha = {}, total work {:.1} core-hours",
        inst.len(),
        inst.machines(),
        inst.alpha(),
        inst.total_work()
    );

    // Save the trace for replay / regression.
    let path = std::env::temp_dir().join("datacenter_trace.ssp");
    std::fs::write(&path, io::emit(&inst)).expect("write trace");
    println!(
        "trace saved to {} ({} bytes)\n",
        path.display(),
        io::emit(&inst).len()
    );

    // Lower bound: migratory optimum (as if containers could move freely).
    let lb = bal(&inst).energy;
    println!("{:<28} {:>12} {:>9}", "policy", "energy", "vs LB");
    println!(
        "{:<28} {:>12.3} {:>9}",
        "migratory optimum (LB)", lb, "1.000"
    );

    let policies: Vec<(&str, Assignment)> = vec![
        ("round-robin + YDS", rr_assignment(&inst)),
        ("classified RR + YDS", classified_assignment(&inst)),
        ("least-loaded + YDS", least_loaded(&inst)),
        ("relax-and-round + YDS", relax_round(&inst)),
        ("marginal-energy greedy", marginal_energy_greedy(&inst)),
    ];
    let mut best: Option<(&str, f64)> = None;
    for (name, assignment) in &policies {
        let e = assignment_energy(&inst, assignment);
        println!("{:<28} {:>12.3} {:>9.3}", name, e, e / lb);
        if best.is_none_or(|(_, b)| e < b) {
            best = Some((name, e));
        }
    }
    let (best_name, best_e) = best.unwrap();
    println!(
        "\nbest policy: {best_name} — {:.1}% above the migration-free lower bound",
        (best_e / lb - 1.0) * 100.0
    );

    // Replay check: the saved trace reloads identically.
    let reloaded = io::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reloaded, inst);
    println!("trace round-trip verified.");
}
