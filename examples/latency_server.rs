//! Latency-vs-battery tuning for a request-serving core.
//!
//! Scenario: a single service core handles short, uniform requests (unit
//! work each). There are no hard deadlines — the operator instead cares
//! about *mean latency* (flow time) and has an energy envelope per billing
//! window. This is the multicriteria companion problem of the deadline
//! model: minimize total flow time under an energy budget (optimal via the
//! chain-partition dynamic program in `ssp_single::flowtime`).
//!
//! The example sweeps the budget, prints the latency/energy frontier
//! against a fixed-clock governor with identical energy, and shows the
//! per-request speed profile at one operating point.
//!
//! ```text
//! cargo run --release --example latency_server
//! ```

use speedscale::single::flowtime::{fixed_speed_flow, min_flow_time_budget};
use speedscale::workloads::subseed;

fn main() {
    // A bursty morning: 50 requests, mean inter-arrival 0.8s with bursts.
    let n = 50usize;
    let releases: Vec<f64> = {
        let mut t = 0.0;
        (0..n)
            .map(|i| {
                let u = (subseed(7_2024, i as u64) >> 11) as f64 / (1u64 << 53) as f64;
                // Every 10th request opens a burst (three arrivals close by).
                t += if i % 10 < 3 {
                    0.05
                } else {
                    -(1.0 - u).ln() * 1.1
                };
                t
            })
            .collect()
    };
    let alpha = 2.5;

    println!(
        "{n} unit requests over {:.1}s, alpha = {alpha}\n",
        releases.last().unwrap()
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>10}",
        "budget", "mean latency", "energy used", "fixed-clock", "saving"
    );
    for factor in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let budget = n as f64 * factor;
        let sol = min_flow_time_budget(&releases, alpha, budget);
        let fixed_speed = (budget / n as f64).powf(1.0 / (alpha - 1.0));
        let fixed = fixed_speed_flow(&releases, fixed_speed);
        println!(
            "{:>10.1} {:>14.4} {:>14.4} {:>14.4} {:>9.1}%",
            budget,
            sol.total_flow / n as f64,
            sol.energy,
            fixed / n as f64,
            (1.0 - sol.total_flow / fixed) * 100.0
        );
    }

    // One operating point in detail: where does the speed go?
    let sol = min_flow_time_budget(&releases, alpha, n as f64 * 2.0);
    let smax = sol.speeds.iter().cloned().fold(0.0f64, f64::max);
    let smin = sol.speeds.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\nat budget {:.0}: speeds range {:.3}..{:.3} — bursts sprint, quiet periods crawl",
        n as f64 * 2.0,
        smin,
        smax
    );
    // Queue-depth correlation: speed rises with jobs waiting behind.
    let mut shown = 0;
    println!("sample of (release, speed, latency):");
    for i in (0..n).step_by(7) {
        println!(
            "  r={:>7.2}  s={:>6.3}  latency={:>6.3}",
            sol.releases[i],
            sol.speeds[i],
            sol.completions[i] - sol.releases[i]
        );
        shown += 1;
        if shown >= 8 {
            break;
        }
    }
    let schedule = sol.schedule(0);
    let inst = sol.as_instance(1, alpha);
    schedule
        .validate(
            &inst,
            speedscale::model::schedule::ValidationOptions::non_migratory(),
        )
        .expect("flow-time schedule is valid");
    println!(
        "\nschedule validated: {} segments, zero idle-time violations",
        schedule.len()
    );
}
