//! HPC-trace workflow: import a Standard Workload Format (SWF) excerpt,
//! decompose the timeline, compute exact and approximate schedules, and
//! export an SVG Gantt chart.
//!
//! SWF is the format of the Parallel Workloads Archive; real traces carry no
//! deadlines or energy model, so the importer synthesizes deadlines from the
//! trace's own requested runtimes (see `ssp_workloads::swf`). The embedded
//! excerpt below is synthetic but follows the archive's field layout — drop
//! in any real `.swf` file via the `SWF_PATH` environment variable.
//!
//! ```text
//! cargo run --release --example hpc_trace
//! SWF_PATH=/path/to/trace.swf cargo run --release --example hpc_trace
//! ```

use speedscale::core::assignment::{assignment_energy, assignment_schedule};
use speedscale::core::decompose::{decompose, exact_decomposed};
use speedscale::core::list::marginal_energy_greedy;
use speedscale::migratory::bal::bal;
use speedscale::model::svg::{svg_gantt, SvgOptions};
use speedscale::workloads::{parse_swf, SwfOptions};

/// Synthetic SWF excerpt: three well-separated submission waves, the shape
/// decomposition exploits (job: id submit wait runtime procs ...).
const EMBEDDED: &str = "\
; synthetic SWF excerpt (3 waves x 4 jobs)
1   0 0  90 2 -1 -1 2  200 -1 1 1 1 1 1 1 -1 -1
2   5 0  60 1 -1 -1 1  150 -1 1 1 1 1 1 1 -1 -1
3  10 0 120 2 -1 -1 2  300 -1 1 1 1 1 1 1 -1 -1
4  15 0  45 1 -1 -1 1  100 -1 1 1 1 1 1 1 -1 -1
5 2000 0  80 2 -1 -1 2  180 -1 1 1 1 1 1 1 -1 -1
6 2005 0  30 1 -1 -1 1   90 -1 1 1 1 1 1 1 -1 -1
7 2010 0 100 2 -1 -1 2  250 -1 1 1 1 1 1 1 -1 -1
8 2015 0  55 1 -1 -1 1  120 -1 1 1 1 1 1 1 -1 -1
9 4000 0  70 2 -1 -1 2  160 -1 1 1 1 1 1 1 -1 -1
10 4005 0  40 1 -1 -1 1  110 -1 1 1 1 1 1 1 -1 -1
11 4010 0  95 2 -1 -1 2  240 -1 1 1 1 1 1 1 -1 -1
12 4015 0  50 1 -1 -1 1  130 -1 1 1 1 1 1 1 -1 -1
";

fn main() {
    let text = match std::env::var("SWF_PATH") {
        Ok(path) => std::fs::read_to_string(&path).expect("read SWF_PATH file"),
        Err(_) => EMBEDDED.to_string(),
    };
    let opts = SwfOptions {
        machines: 4,
        alpha: 2.0,
        max_jobs: 64,
        ..Default::default()
    };
    let (inst, report) = parse_swf(&text, opts).expect("parse SWF");
    println!(
        "imported {} jobs ({} invalid skipped, {} comment lines) on {} machines",
        report.imported,
        report.skipped_invalid,
        report.comments,
        inst.machines()
    );

    // Timeline decomposition: independent components => exact optimum is
    // tractable even though the whole trace exceeds the monolithic limit.
    let comps = decompose(&inst);
    println!(
        "timeline decomposes into {} independent components of sizes {:?}",
        comps.len(),
        comps.iter().map(Vec::len).collect::<Vec<_>>()
    );

    let lb = bal(&inst).energy;
    let exact = exact_decomposed(&inst);
    let greedy = marginal_energy_greedy(&inst);
    let e_greedy = assignment_energy(&inst, &greedy);
    println!("migratory lower bound: {lb:.1}");
    println!(
        "exact non-migratory optimum (via decomposition, {} search nodes): {:.1}  (x{:.4})",
        exact.nodes,
        exact.energy,
        exact.energy / lb
    );
    println!(
        "marginal-energy greedy: {e_greedy:.1}  (x{:.4})",
        e_greedy / lb
    );

    // Export the exact schedule as SVG.
    let schedule = assignment_schedule(&inst, &exact.assignment);
    schedule
        .validate(&inst, Default::default())
        .expect("exact schedule valid");
    let svg = svg_gantt(&schedule, SvgOptions::default());
    let path = std::env::temp_dir().join("hpc_trace_schedule.svg");
    std::fs::write(&path, svg).expect("write svg");
    println!("SVG Gantt chart written to {}", path.display());
}
