//! Online dispatch: what does not knowing the future cost?
//!
//! Scenario: a serving tier schedules incoming requests with SLO deadlines
//! on DVFS cores *as they arrive*. Two classic online policies are compared
//! against the clairvoyant offline optimum on the same trace:
//!
//! * **AVR-m** — commit each job to its average rate (density); simple,
//!   stateless, provably `α^α·2^(α-1)`-competitive on one core.
//! * **OA-m** — replan the optimal schedule for the remaining work at every
//!   arrival; `α^α`-competitive on one core.
//!
//! ```text
//! cargo run --release --example online_dispatch
//! ```

use speedscale::core::online::{avr_m, oa_m};
use speedscale::migratory::bal::bal;
use speedscale::workloads::{families, subseed};

fn main() {
    let (n, cores, alpha) = (60usize, 4usize, 2.0f64);
    println!("bursty request trace: n = {n}, cores = {cores}, alpha = {alpha}\n");
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "seed", "OPT energy", "AVR-m/OPT", "OA-m/OPT", "AVR preempts", "OA preempts"
    );

    let mut avr_ratios = Vec::new();
    let mut oa_ratios = Vec::new();
    for seed in 0..8u64 {
        let inst = families::bursty(n, cores, alpha).gen(subseed(2025, seed));
        let opt = bal(&inst).energy;

        let avr_schedule = avr_m(&inst);
        let avr_stats = avr_schedule
            .validate(&inst, Default::default())
            .expect("AVR-m valid");
        let oa_schedule = oa_m(&inst);
        let oa_stats = oa_schedule
            .validate(&inst, Default::default())
            .expect("OA-m valid");

        let (ra, ro) = (avr_stats.energy / opt, oa_stats.energy / opt);
        println!(
            "{:>6} {:>12.3} {:>10.4} {:>10.4} {:>12} {:>12}",
            seed, opt, ra, ro, avr_stats.preemptions, oa_stats.preemptions
        );
        avr_ratios.push(ra);
        oa_ratios.push(ro);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let avr_bound = alpha.powf(alpha) * 2.0f64.powf(alpha - 1.0);
    let oa_bound = alpha.powf(alpha);
    println!(
        "\nmean AVR-m ratio {:.4} (theory bound {:.1});  mean OA-m ratio {:.4} (theory bound {:.1})",
        mean(&avr_ratios),
        avr_bound,
        mean(&oa_ratios),
        oa_bound
    );
    println!(
        "takeaway: replanning (OA) recovers most of the clairvoyance gap; \
         rate-commitment (AVR) pays for burstiness but needs no solver online."
    );
}
