//! Quickstart: define a workload, schedule it three ways, compare energies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use speedscale::core::assignment::{assignment_energy, assignment_schedule};
use speedscale::core::{relax_round, rr_assignment};
use speedscale::migratory::bal::bal;
use speedscale::model::schedule::ValidationOptions;
use speedscale::model::{Instance, Job};

fn main() {
    // Eight jobs on two speed-scalable processors, power = s^2.
    // Job::new(id, work, release, deadline).
    let inst = Instance::new(
        vec![
            Job::new(0, 2.0, 0.0, 2.0),
            Job::new(1, 1.0, 0.0, 3.0),
            Job::new(2, 3.0, 1.0, 4.0),
            Job::new(3, 1.5, 1.5, 5.0),
            Job::new(4, 2.0, 2.0, 6.0),
            Job::new(5, 1.0, 3.0, 7.0),
            Job::new(6, 2.5, 4.0, 8.0),
            Job::new(7, 1.0, 5.0, 8.0),
        ],
        2,
        2.0,
    )
    .expect("valid instance");

    println!(
        "n = {}, m = {}, alpha = {}",
        inst.len(),
        inst.machines(),
        inst.alpha()
    );
    println!("agreeable deadlines: {}\n", inst.is_agreeable());

    // 1. The migratory optimum — certified lower bound for everything else.
    let lower_bound = bal(&inst);
    println!("migratory optimum (lower bound): {:.4}", lower_bound.energy);

    // 2. Sorted round-robin + YDS per machine (the paper's algorithm).
    let rr = rr_assignment(&inst);
    let e_rr = assignment_energy(&inst, &rr);
    println!(
        "round-robin + YDS:               {:.4}  (x{:.3} of LB)",
        e_rr,
        e_rr / lower_bound.energy
    );

    // 3. Relax-and-round (migratory relaxation, list rounding, YDS).
    let rrnd = relax_round(&inst);
    let e_rrnd = assignment_energy(&inst, &rrnd);
    println!(
        "relax-and-round + YDS:           {:.4}  (x{:.3} of LB)",
        e_rrnd,
        e_rrnd / lower_bound.energy
    );

    // Materialize and validate the best non-migratory schedule.
    let (best_name, best) = if e_rr <= e_rrnd {
        ("round-robin", rr)
    } else {
        ("relax-and-round", rrnd)
    };
    let schedule = assignment_schedule(&inst, &best);
    let stats = schedule
        .validate(&inst, ValidationOptions::non_migratory())
        .expect("produced schedule must validate");
    println!(
        "\nbest non-migratory policy: {best_name}\n  energy {:.4}, makespan {:.2}, preemptions {}, max speed {:.3}",
        stats.energy, stats.makespan, stats.preemptions, stats.max_speed
    );
    println!("\nsegments (job @ machine: [start, end] at speed):");
    let mut segs = schedule.segments().to_vec();
    segs.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.machine.cmp(&b.machine)));
    for s in segs {
        println!(
            "  {} @ m{}: [{:.3}, {:.3}] at {:.3}",
            s.job, s.machine, s.start, s.end, s.speed
        );
    }
}
