//! Real-time media pipeline: the paper's optimal regime in the wild.
//!
//! Scenario: a multicore video encoder processes frames of (near-)constant
//! cost. Frame `k` is captured at `k/fps` and must be delivered within a
//! fixed latency budget — unit works with agreeable deadlines, exactly the
//! regime where the paper proves sorted round-robin + YDS **optimal** (R1).
//!
//! The example schedules a jittery 30 fps capture on 4 cores, prints the
//! per-core DVFS (speed) profile, and verifies optimality against the exact
//! solver on a small prefix plus the migratory lower bound on the full run.
//!
//! ```text
//! cargo run --release --example realtime_frames
//! ```

use speedscale::core::assignment::{assignment_energy, assignment_schedule};
use speedscale::core::exact::exact_nonmigratory;
use speedscale::core::rr::rr_assignment;
use speedscale::migratory::bal::bal;
use speedscale::model::schedule::ValidationOptions;
use speedscale::model::{Instance, Job};

fn main() {
    let fps = 30.0;
    // Latency budget chosen so at most `cores` frames are ever alive at once
    // (window/period = 0.12 * 30 = 3.6 <= 4): the naive one-frame-per-core
    // baseline below is then feasible and the comparison is fair.
    let latency_budget = 0.12;
    let cores = 4;
    let frames = 90; // three seconds of video
    let alpha = 3.0; // cubic power model, typical for CMOS frequency scaling

    // Capture jitter: deterministic pseudo-jitter (±2 ms) keeps the example
    // reproducible without pulling a RNG in.
    let jitter = |k: usize| 0.002 * ((k as f64 * 2.399).sin());
    let jobs: Vec<Job> = (0..frames)
        .map(|k| {
            let capture = k as f64 / fps + jitter(k);
            Job::new(k as u32, 1.0, capture, capture + latency_budget)
        })
        .collect();
    let inst = Instance::new(jobs, cores, alpha).expect("valid frame workload");
    assert!(inst.is_agreeable(), "capture order = deadline order");

    // The paper's algorithm.
    let assignment = rr_assignment(&inst);
    let schedule = assignment_schedule(&inst, &assignment);
    let stats = schedule
        .validate(&inst, ValidationOptions::non_migratory())
        .expect("schedule meets every frame deadline");
    println!(
        "{frames} frames @ {fps} fps on {cores} cores (alpha = {alpha}): energy {:.3}, peak speed {:.2}",
        stats.energy, stats.max_speed
    );

    // Optimality evidence 1: exact solver agrees on a 10-frame prefix.
    let prefix = inst.subset(&(0..10).collect::<Vec<_>>());
    let e_rr_prefix = assignment_energy(&prefix, &rr_assignment(&prefix));
    let e_opt_prefix = exact_nonmigratory(&prefix).energy;
    println!(
        "10-frame prefix: RR {:.6} vs exact optimum {:.6} (ratio {:.6})",
        e_rr_prefix,
        e_opt_prefix,
        e_rr_prefix / e_opt_prefix
    );
    assert!(e_rr_prefix <= e_opt_prefix * (1.0 + 1e-9));

    // Optimality evidence 2: migratory lower bound on the full run.
    let lb = bal(&inst).energy;
    println!(
        "full run: RR {:.3} vs migratory lower bound {:.3} (x{:.4})",
        stats.energy,
        lb,
        stats.energy / lb
    );

    // Per-core utilization + frequency profile summary.
    println!("\nper-core busy time / segments / fastest speed:");
    for core in 0..cores {
        let segs: Vec<_> = schedule
            .segments()
            .iter()
            .filter(|s| s.machine == core)
            .collect();
        let busy: f64 = segs.iter().map(|s| s.end - s.start).sum();
        let peak = segs.iter().map(|s| s.speed).fold(0.0, f64::max);
        println!(
            "  core {core}: busy {:>6.3}s over {:>3} segments, peak speed {:.3}",
            busy,
            segs.len(),
            peak
        );
    }

    // What would a naive policy cost? Each frame on its own core at exactly
    // its density (feasible here because at most `cores` frames are alive at
    // any instant). With *uniform* frame costs the optimum coincides with it
    // — flat load leaves nothing to smooth:
    let naive: f64 = inst
        .jobs()
        .iter()
        .map(|j| j.work * j.density().powf(alpha - 1.0))
        .sum();
    assert!(
        stats.energy <= naive * (1.0 + 1e-9),
        "optimum cannot lose to a feasible policy"
    );
    println!(
        "\nnaive per-frame DVFS (one core per frame, no smoothing): {:.3} — \
         savings on a flat pipeline: {:.1}% (nothing to smooth)",
        naive,
        (1.0 - stats.energy / naive) * 100.0
    );

    // Part 2: a realistic GOP structure — every 10th frame is an I-frame
    // costing 2.5x a P-frame — and a looser latency budget (0.3 s) so frames
    // overlap and DVFS has room to smooth. The industrial baseline is a
    // *fixed single clock*: the lowest constant frequency meeting every
    // deadline (= the workload's first critical speed), paid even during
    // all-P stretches. Per-job DVFS runs P-frames slower.
    println!("\n--- heterogeneous GOP (I-frame every 10th frame at 2.5x, 0.3 s budget) ---");
    let gop_jobs: Vec<Job> = (0..frames)
        .map(|k| {
            let capture = k as f64 / fps + jitter(k);
            let work = if k % 10 == 0 { 2.5 } else { 1.0 };
            Job::new(k as u32, work, capture, capture + 0.3)
        })
        .collect();
    let gop = Instance::new(gop_jobs, cores, alpha).expect("valid GOP workload");
    let sol = bal(&gop);
    let lb_gop = sol.energy;
    // Fixed-clock baseline: every unit of work at the peak (critical) speed.
    let v_fixed = sol.rounds.first().expect("nonempty").speed;
    let fixed_clock: f64 = gop.total_work() * v_fixed.powf(alpha - 1.0);
    use speedscale::core::classified::classified_assignment;
    use speedscale::core::list::marginal_energy_greedy;
    for (name, assignment) in [
        ("round-robin", rr_assignment(&gop)),
        ("classified RR", classified_assignment(&gop)),
        ("marginal-energy greedy", marginal_energy_greedy(&gop)),
    ] {
        let e = assignment_energy(&gop, &assignment);
        println!(
            "{name:<24} energy {:>9.1}  (x{:.4} of LB, saves {:>5.1}% vs fixed clock)",
            e,
            e / lb_gop,
            (1.0 - e / fixed_clock) * 100.0
        );
    }
    println!("migratory lower bound     energy {lb_gop:>9.1}");
    println!(
        "fixed clock at v*={v_fixed:.2}    energy {fixed_clock:>9.1}  (single-frequency governor)"
    );
}
