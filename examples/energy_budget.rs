//! Battery-budget makespan planning (the MBAL extension).
//!
//! Scenario: a battery-powered edge box (e.g. a field gateway with a
//! multi-core SoC) receives a burst of inference/compression tasks and must
//! finish them as early as possible *without* spending more than a fixed
//! energy allowance. This is exactly the paper family's second objective:
//! minimize makespan subject to an energy budget, solved optimally by an
//! outer binary search over a common deadline around the migratory optimum.
//!
//! The example sweeps the budget and prints the resulting Pareto frontier,
//! then inspects one operating point in detail.
//!
//! ```text
//! cargo run --release --example energy_budget
//! ```

use speedscale::migratory::mbal::mbal;
use speedscale::model::{Instance, Job};

fn main() {
    // Ten tasks trickling in over ~2 s on a 2-core SoC; cubic power model.
    // Deadline field = "no deadline" (the budget is the binding constraint).
    let horizon = 1e9;
    let works = [1.2, 0.8, 2.0, 0.5, 1.5, 0.9, 1.1, 0.7, 1.8, 0.6];
    let releases = [0.0, 0.1, 0.3, 0.5, 0.8, 1.0, 1.2, 1.5, 1.8, 2.0];
    let jobs: Vec<Job> = works
        .iter()
        .zip(&releases)
        .enumerate()
        .map(|(i, (&w, &r))| Job::new(i as u32, w, r, horizon))
        .collect();
    let inst = Instance::new(jobs, 2, 3.0).expect("valid instance");
    let total_work: f64 = inst.total_work();
    println!(
        "{} tasks, total work {:.1}, 2 cores, alpha = 3 (cubic power)\n",
        inst.len(),
        total_work
    );

    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "budget", "makespan", "energy used", "mean speed"
    );
    let mut previous = f64::INFINITY;
    for factor in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let budget = total_work * factor;
        let sol = mbal(&inst, budget).expect("deadline-free => some makespan always works");
        assert!(sol.makespan <= previous + 1e-9, "frontier must be monotone");
        previous = sol.makespan;
        // Mean speed = work over total busy time.
        let schedule = sol.schedule();
        let busy: f64 = schedule.segments().iter().map(|s| s.end - s.start).sum();
        println!(
            "{:>10.2} {:>12.4} {:>12.4} {:>14.3}",
            budget,
            sol.makespan,
            sol.energy,
            total_work / busy
        );
    }

    // Inspect one operating point.
    let budget = total_work * 2.0;
    let sol = mbal(&inst, budget).unwrap();
    let schedule = sol.schedule();
    let stats = schedule.validate(&sol.clamped, Default::default()).unwrap();
    println!(
        "\noperating point (budget {:.1}): makespan {:.3}, energy {:.3} ({:.1}% of budget), \
         {} migrations",
        budget,
        sol.makespan,
        stats.energy,
        100.0 * stats.energy / budget,
        stats.migrations
    );
    println!("\nper-task speeds at this point:");
    for (i, job) in sol.clamped.jobs().iter().enumerate() {
        println!(
            "  task {}: work {:.1}, release {:.1} -> speed {:.3}",
            job.id,
            job.work,
            job.release,
            sol.solution.speeds.get(i)
        );
    }
}
