//! YDS — the optimal single-processor algorithm (Yao, Demers, Shenker 1995).
//!
//! Repeatedly find the *critical interval*: the interval `I` maximizing the
//! intensity `g(I) = (Σ_{span_i ⊆ I} w_i) / |I|`. The jobs fully contained in
//! `I` run at speed `g(I)` (EDF-ordered inside `I`); they and the interval are
//! then removed — remaining jobs' windows are "squeezed" around the excised
//! interval — and the process repeats. The result is the unique optimal speed
//! profile; its energy is `Σ w_i · s_i^(α-1)`.
//!
//! Two kernels share one peel driver and produce **bit-identical** output:
//!
//! * [`yds`] — the fast kernel: per peel, starts are visited in descending
//!   order of a certified intensity upper bound, and whole starts, epigraph
//!   regions, and deadline-sweep tails are skipped when a bound proves them
//!   *strictly* below the incumbent. Candidates that are evaluated use
//!   exactly the reference arithmetic (sequential work accumulation in
//!   deadline order), and the incumbent comparator reproduces the reference's
//!   first-maximizer tie-break, so the selected interval — and therefore
//!   every speed and the energy — matches [`yds_reference`] bit for bit.
//!   Typical peels touch a small fraction of the `O(k²)` candidate grid (see
//!   the `yds.candidates` probe counter and the `yds_kernel` bench); the
//!   worst case degrades to the reference's `O(k²)` per peel. Below
//!   [`SMALL_PEEL_CUTOFF`] active jobs a peel falls back to the reference
//!   scan — the scaffolding (two integer sorts, suffix scans, the linked
//!   list) costs more than it saves there — bit-identical by construction.
//! * [`yds_reference`] — the retained reference peel: each peel scans `O(k²)`
//!   candidate intervals with an `O(k)` sweep per left endpoint, i.e. the
//!   classic `O(n³)` worst-case bound for direct YDS implementations. Kept as
//!   the differential-testing baseline (`tests/yds_differential.rs`) and the
//!   "old" side of EXP-19.
//!
//! Both kernels run on a structure-of-arrays working set (`ActiveSet`):
//! the peel driver keeps original index, work, release and deadline in four
//! parallel vectors, compacted in place after each excision, so a whole
//! [`yds`] call allocates a constant number of buffers instead of one vector
//! per peel and the hot sweeps read contiguous `f64` slices. Callers that
//! price many short job lists (the `YdsEval`/`LiveEval` oracles in
//! `ssp-core`) go one step further with [`YdsArena`] + [`yds_energy_in`]:
//! every buffer — including the output speeds — lives in a caller-owned
//! arena reused across calls, making the energy query allocation-free after
//! warm-up while returning the same bits as [`yds`].

use crate::edf::edf_schedule;
use ssp_model::numeric::energy_sum;
use ssp_model::{Job, Schedule, SpeedAssignment};

/// Result of running [`yds`]: optimal constant speed per job (aligned with
/// the input slice) and the optimal energy.
#[derive(Debug, Clone, PartialEq)]
pub struct YdsSolution {
    /// Optimal speed of each input job.
    pub speeds: Vec<f64>,
    /// Optimal total energy `Σ w_i · s_i^(α-1)`.
    pub energy: f64,
    /// Critical intervals in peel order: `(start, end, intensity)` in the
    /// *original* (un-squeezed) time coordinates of the first peel only for
    /// the head element; later entries are in squeezed coordinates and are
    /// exposed for diagnostics/tests of the peeling process.
    pub peels: Vec<(f64, f64, f64)>,
}

impl YdsSolution {
    /// Speeds as a [`SpeedAssignment`] (same indexing as the input slice).
    pub fn assignment(&self) -> SpeedAssignment {
        SpeedAssignment::new(self.speeds.clone())
    }
}

/// Below this many *active* jobs a peel routes through the reference scan:
/// the fast kernel's per-peel scaffolding (two integer sorts, suffix scans,
/// the linked list) dominates at small sizes (BENCH_yds.json measured the
/// n = 50 cells at 0.8–0.97× before the cutoff), while the `O(k²)` reference
/// sweep is branch-light and allocation-free on the SoA driver. The cutoff
/// is applied per peel, not per call, so the shrinking tail of a long peel
/// sequence (e.g. laminar nests) also drops to the cheap scan. Both finders
/// return bit-identical intervals, so mixing them is invisible in the output
/// (pinned by `cutoff_boundary_is_bit_identical`).
pub const SMALL_PEEL_CUTOFF: usize = 32;

/// Below this many *input* jobs the whole call routes through the reference
/// scan, not just individual small peels. The per-peel cutoff alone left the
/// n = 50 BENCH_yds cells at 0.79–0.86×: a tiny instance starts above
/// [`SMALL_PEEL_CUTOFF`], so its first (and most expensive) peels still paid
/// the fast kernel's scaffolding right where the reference sweep is cheapest.
/// Calibrated by 201-rep medians over the bench families: agreeable and
/// crossing prefer the reference up to n ≈ 64 and n ≈ 100 respectively, while
/// laminar nests flip to the fast kernel by n ≈ 50 — 64 takes the two losing
/// cells to parity without giving up the laminar win at n ≥ 64. Bit-invisible
/// like the per-peel dispatch (both finders return identical intervals;
/// pinned by `instance_cutoff_boundary_is_bit_identical`).
pub const SMALL_INSTANCE_CUTOFF: usize = 64;

/// Structure-of-arrays working set during peeling: one parallel vector per
/// field. The peel driver compacts survivors in place after each excision
/// (stable order, exactly the old `Vec<Active>` retain semantics), so the
/// only allocations per [`yds`] call are these four buffers.
#[derive(Default)]
struct ActiveSet {
    /// Original input index of each active job.
    orig: Vec<u32>,
    /// Remaining work.
    work: Vec<f64>,
    /// Squeezed release date.
    release: Vec<f64>,
    /// Squeezed deadline.
    deadline: Vec<f64>,
}

impl ActiveSet {
    /// Refill from `jobs`, reusing the buffers' capacity.
    fn load(&mut self, jobs: &[Job]) {
        assert!(
            jobs.len() < u32::MAX as usize,
            "job count exceeds u32 index"
        );
        self.orig.clear();
        self.orig.extend(0..jobs.len() as u32);
        self.work.clear();
        self.work.extend(jobs.iter().map(|j| j.work));
        self.release.clear();
        self.release.extend(jobs.iter().map(|j| j.release));
        self.deadline.clear();
        self.deadline.extend(jobs.iter().map(|j| j.deadline));
    }

    fn len(&self) -> usize {
        self.orig.len()
    }

    fn is_empty(&self) -> bool {
        self.orig.is_empty()
    }

    fn truncate(&mut self, len: usize) {
        self.orig.truncate(len);
        self.work.truncate(len);
        self.release.truncate(len);
        self.deadline.truncate(len);
    }
}

/// Compute the optimal speed per job on a single processor (fast kernel).
///
/// ```
/// use ssp_model::Job;
/// use ssp_single::yds::yds;
///
/// // A tight job nested in a loose one: the tight one sets the peak.
/// let jobs = vec![Job::new(0, 2.0, 0.0, 4.0), Job::new(1, 2.0, 1.0, 2.0)];
/// let sol = yds(&jobs, 2.0);
/// assert!((sol.speeds[1] - 2.0).abs() < 1e-9);      // critical interval [1,2]
/// assert!((sol.speeds[0] - 2.0 / 3.0).abs() < 1e-9); // squeezed remainder
/// ```
pub fn yds(jobs: &[Job], alpha: f64) -> YdsSolution {
    let mut scratch = FastScratch::default();
    let mut by_deadline = Vec::new();
    let mut starts = Vec::new();
    let mut candidates = 0u64;
    let mut small_peels = 0u64;
    let tiny = jobs.len() < SMALL_INSTANCE_CUTOFF;
    let sol = run_peels(jobs, alpha, |active| {
        if tiny || active.len() < SMALL_PEEL_CUTOFF {
            // Below the measured crossover the reference scan wins
            // outright; it returns the bit-identical interval, so the
            // dispatch cannot perturb the output.
            small_peels += 1;
            critical_interval_reference(active, &mut by_deadline, &mut starts, &mut candidates)
        } else {
            scratch.critical_interval(active, &mut candidates)
        }
    });
    ssp_probe::counter!("yds.peels", sol.peels.len() as u64);
    ssp_probe::counter!("yds.candidates", candidates);
    ssp_probe::counter!("yds.soa_small_peels", small_peels);
    ssp_probe::counter!("yds.soa_pruned_starts", scratch.pruned_starts);
    ssp_probe::counter!("yds.soa_sm_rebuilds", scratch.sm_rebuilds);
    sol
}

/// Reusable buffers for repeated [`yds_energy_in`] calls: everything a
/// [`yds`] call would allocate — kernel scratch, the SoA working set, and
/// the output speeds/peels, which an energy-only caller discards anyway —
/// lives here and is cleared, not freed, between calls. The memoizing
/// oracles in `ssp-core` (`YdsEval`, `LiveEval`) price thousands of short
/// job lists per search pass; with an arena each cache miss costs exactly
/// the kernel arithmetic after the first call.
#[derive(Default)]
pub struct YdsArena {
    scratch: FastScratch,
    by_deadline: Vec<usize>,
    starts: Vec<f64>,
    active: ActiveSet,
    speeds: Vec<f64>,
    peels: Vec<(f64, f64, f64)>,
}

/// Optimal YDS energy of `jobs`, computed in `arena`'s buffers —
/// bit-identical to `yds(jobs, alpha).energy` (same kernels, same dispatch,
/// same arithmetic; pinned by `arena_energy_matches_yds_bitwise`), but
/// allocation-free once the arena is warm.
pub fn yds_energy_in(arena: &mut YdsArena, jobs: &[Job], alpha: f64) -> f64 {
    let mut candidates = 0u64;
    let mut small_peels = 0u64;
    let YdsArena {
        scratch,
        by_deadline,
        starts,
        active,
        speeds,
        peels,
    } = arena;
    // The scratch persists across calls; zero its per-call probe tallies so
    // each call emits its own counts (as a fresh [`yds`] call would).
    scratch.pruned_starts = 0;
    scratch.sm_rebuilds = 0;
    let tiny = jobs.len() < SMALL_INSTANCE_CUTOFF;
    let energy = run_peels_into(jobs, alpha, active, speeds, peels, |active| {
        if tiny || active.len() < SMALL_PEEL_CUTOFF {
            small_peels += 1;
            critical_interval_reference(active, by_deadline, starts, &mut candidates)
        } else {
            scratch.critical_interval(active, &mut candidates)
        }
    });
    ssp_probe::counter!("yds.peels", peels.len() as u64);
    ssp_probe::counter!("yds.candidates", candidates);
    ssp_probe::counter!("yds.soa_small_peels", small_peels);
    ssp_probe::counter!("yds.soa_pruned_starts", scratch.pruned_starts);
    ssp_probe::counter!("yds.soa_sm_rebuilds", scratch.sm_rebuilds);
    energy
}

/// The retained reference peel: brute-force `O(k²)`-per-peel critical
/// interval scan. Semantics (and bits) match [`yds`]; complexity does not.
pub fn yds_reference(jobs: &[Job], alpha: f64) -> YdsSolution {
    let mut candidates = 0u64;
    let mut by_deadline: Vec<usize> = Vec::new();
    let mut starts: Vec<f64> = Vec::new();
    let sol = run_peels(jobs, alpha, |active| {
        critical_interval_reference(active, &mut by_deadline, &mut starts, &mut candidates)
    });
    ssp_probe::counter!("yds.peels", sol.peels.len() as u64);
    ssp_probe::counter!("yds.candidates", candidates);
    sol
}

/// The shared peel driver: repeatedly excise the critical interval reported
/// by `find`, fixing contained jobs at its intensity and squeezing the rest.
/// The working set is compacted in place (stable order), so no per-peel
/// allocation happens here.
fn run_peels(
    jobs: &[Job],
    alpha: f64,
    find: impl FnMut(&ActiveSet) -> (f64, f64, f64),
) -> YdsSolution {
    let mut active = ActiveSet::default();
    let mut speeds = Vec::new();
    let mut peels = Vec::new();
    let energy = run_peels_into(jobs, alpha, &mut active, &mut speeds, &mut peels, find);
    YdsSolution {
        speeds,
        energy,
        peels,
    }
}

/// [`run_peels`] over caller-owned buffers (cleared and refilled), so
/// repeated calls reuse capacity. Returns the optimal energy; `speeds` and
/// `peels` hold the rest of the [`YdsSolution`] fields on return.
fn run_peels_into(
    jobs: &[Job],
    alpha: f64,
    active: &mut ActiveSet,
    speeds: &mut Vec<f64>,
    peels: &mut Vec<(f64, f64, f64)>,
    mut find: impl FnMut(&ActiveSet) -> (f64, f64, f64),
) -> f64 {
    assert!(alpha > 1.0, "alpha must exceed 1");
    speeds.clear();
    speeds.resize(jobs.len(), 0.0);
    peels.clear();
    active.load(jobs);

    while !active.is_empty() {
        let (a, b, g) = find(active);
        peels.push((a, b, g));
        // Peel interval width in fixed-point micro-units of (abstract)
        // time, so the log2 buckets resolve sub-unit widths; zero-width
        // degenerate windows land in bucket 0. The f64→u64 cast saturates.
        ssp_probe::histogram!("yds.peel_width", ((b - a) * 1e6).round() as u64);
        // Intensity is positive; it is +inf for degenerate zero-width
        // windows (which are then excised immediately at infinite speed).
        debug_assert!(g > 0.0);
        // Fix speeds of contained jobs; keep the rest, squeezed. Stable
        // in-place compaction over the parallel arrays reproduces the old
        // `rest.push` order exactly.
        let shift = b - a;
        let mut w = 0usize;
        for r in 0..active.len() {
            let (rel, dl) = (active.release[r], active.deadline[r]);
            if a <= rel && dl <= b {
                speeds[active.orig[r] as usize] = g;
            } else {
                active.orig[w] = active.orig[r];
                active.work[w] = active.work[r];
                active.release[w] = squeeze(rel, a, b, shift);
                active.deadline[w] = squeeze(dl, a, b, shift);
                debug_assert!(active.deadline[w] >= active.release[w]);
                w += 1;
            }
        }
        active.truncate(w);
    }

    // Batched summation over flat lanes; `active.work` is empty here (every
    // job peeled) and its capacity already fits all n works, so it doubles
    // as the scratch column without allocating.
    active.work.clear();
    active.work.extend(jobs.iter().map(|j| j.work));
    energy_sum(&active.work, speeds, alpha)
}

/// Map a time coordinate after excising `[a, b]`.
fn squeeze(x: f64, a: f64, b: f64, shift: f64) -> f64 {
    if x <= a {
        x
    } else if x >= b {
        x - shift
    } else {
        a
    }
}

/// Does candidate `(g, a, b)` beat the incumbent under the reference
/// selection rule? The reference iterates starts ascending, then deadlines
/// ascending, keeping the first maximizer under strict `>` — equivalent to
/// the lexicographic argmax of `(g, -a, -b)`, which is what this comparator
/// implements so candidates may be visited in *any* order.
#[inline]
fn beats(g: f64, a: f64, b: f64, best: (f64, f64, f64)) -> bool {
    g > best.2 || (g == best.2 && (a < best.0 || (a == best.0 && b < best.1)))
}

/// The maximum-intensity interval of the active set — reference scan.
/// Candidate intervals run from a release date to a deadline. Ties break
/// toward the earliest start, then the longest interval, making peeling
/// deterministic. The caller lends the two scratch vectors so repeated
/// peels reuse their capacity.
fn critical_interval_reference(
    active: &ActiveSet,
    by_deadline: &mut Vec<usize>,
    starts: &mut Vec<f64>,
    candidates: &mut u64,
) -> (f64, f64, f64) {
    debug_assert!(!active.is_empty());
    // For each candidate left endpoint `a` (a release), sweep jobs in
    // deadline order accumulating the work of jobs with release >= a.
    by_deadline.clear();
    by_deadline.extend(0..active.len());
    by_deadline.sort_by(|&x, &y| active.deadline[x].total_cmp(&active.deadline[y]));
    starts.clear();
    starts.extend_from_slice(&active.release);
    starts.sort_by(f64::total_cmp);
    starts.dedup();

    // Deterministic argmax: iteration order is fixed (starts ascending,
    // deadlines ascending), strict `>` keeps the first maximizer — i.e. the
    // earliest start, then the earliest right endpoint achieving the maximum.
    let mut best = (0.0, 0.0, f64::NEG_INFINITY);
    for &a in starts.iter() {
        let mut acc = 0.0;
        for &idx in by_deadline.iter() {
            // `release >= a` implies `deadline >= a` (windows may be
            // degenerate but never inverted).
            if active.release[idx] >= a {
                acc += active.work[idx];
                *candidates += 1;
                let g = acc / (active.deadline[idx] - a);
                if g > best.2 {
                    best = (a, active.deadline[idx], g);
                }
            }
        }
    }
    best
}

/// Monotone `u64` image of `f64::total_cmp`: the standard sign-fold trick
/// (flip all bits of negatives, flip only the sign bit of non-negatives)
/// maps every float — including `-0.0`, infinities and NaNs — to an
/// unsigned integer whose `<` order equals `total_cmp`. Packing the image
/// above a 32-bit index yields a single integer key whose order is exactly
/// the `(total_cmp, index)` lexicographic order, so the kernel's permutation
/// sorts run branch-free integer comparisons instead of a float comparator.
#[inline]
fn total_cmp_key(x: f64) -> u64 {
    let b = x.to_bits();
    b ^ (((b as i64 >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Scratch buffers of the fast critical-interval search, reused across the
/// peels of one [`yds`] call so the kernel allocates a constant number of
/// vectors per call instead of per peel.
#[derive(Default)]
struct FastScratch {
    /// Packed `(total_cmp_key(time) << 32) | index` sort keys.
    sort_keys: Vec<u128>,
    /// Active indices sorted by `(deadline, index)` — identical order to the
    /// reference's stable sort by deadline.
    by_deadline: Vec<u32>,
    /// Deadline-ordered copies of the active jobs' fields (flat arrays keep
    /// the inner sweep branch-predictable and cache-friendly).
    dl: Vec<f64>,
    rl: Vec<f64>,
    wk: Vec<f64>,
    /// Active indices sorted by `(release, index)`; drives the suffix scan.
    by_release: Vec<u32>,
    /// Distinct release values ascending (the candidate starts).
    starts: Vec<f64>,
    /// Per start: certified upper bound on any candidate intensity there and
    /// the total (inflated) work of jobs released at/after it.
    ub: Vec<f64>,
    suffix_work: Vec<f64>,
    /// Deadline rank of each active index (inverse of `by_deadline`).
    rank: Vec<u32>,
    /// Doubly-linked list over deadline ranks holding the jobs released
    /// at/after the sweep's current start; jobs are unlinked (O(1)) as the
    /// ascending start passes their release, so each sweep touches only
    /// genuine candidates — no straddler iterations, no release compare.
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Prefix sums of `wk` in deadline order: `ps[j] = Σ_{t<j} wk[t]`
    /// (plain float sums; the epigraph filter adds an absolute slack).
    ps: Vec<f64>,
    /// Epigraph suffix maxima for the incumbent start filter:
    /// `sm[j] = max_{t >= j} (ps[t+1] - g·dl[t])` for the incumbent
    /// intensity `g` it was last built at (see `rebuild_sm`).
    sm: Vec<f64>,
    /// Starts skipped by the epigraph filter (probe counter
    /// `yds.soa_pruned_starts`), accumulated across the call's peels.
    pruned_starts: u64,
    /// Epigraph rebuilds (probe counter `yds.soa_sm_rebuilds`).
    sm_rebuilds: u64,
}

/// End-of-list sentinel for [`FastScratch::next`]/[`FastScratch::prev`].
const LIST_END: u32 = u32::MAX;

impl FastScratch {
    /// The maximum-intensity interval — same value and tie-break as
    /// [`critical_interval_reference`], computed with certified pruning.
    ///
    /// Soundness of the pruning: for a start `a`, every candidate intensity
    /// is `fl(acc / fl(d - a))` where `acc` is a sequential float sum of a
    /// subset of the works of jobs released at/after `a`. That is bounded by
    /// `W(a) · (1 + O(kε)) / (dmin(a) - a)` with `W(a)` the suffix work sum
    /// and `dmin(a)` the earliest deadline in the suffix; inflating `W(a)`
    /// by `(1 + (2k+16)ε)` absorbs every rounding term, so a start (or a
    /// sweep tail) whose inflated bound is *strictly* below the incumbent
    /// intensity cannot contain the argmax — not even a tie, which is what
    /// keeps the tie-break decisions identical to the reference scan.
    ///
    /// On top of that per-start bound sits the **epigraph filter**: because
    /// works are nonnegative, the accumulator of any candidate `(a, dl[j])`
    /// is at most the deadline-rank prefix-sum difference
    /// `ps[j+1] - ps[lo(a)]` (`lo(a)` = first deadline rank `>= a`; ranks
    /// below it are certain straddlers, their windows would be inverted
    /// otherwise) plus an absolute float slack. A candidate can therefore
    /// reach intensity `g` only if `ps[j+1] - g·dl[j] >= ps[lo] - g·a -
    /// slack`, and precomputing the suffix maxima `sm[lo] = max_{j>=lo}
    /// (ps[j+1] - g·dl[j])` turns "can this start still tie the incumbent"
    /// into a single comparison. `sm` is rebuilt (one O(k) pass) only when
    /// the incumbent *intensity* changes — tie-break replacements at equal
    /// `g` keep it valid.
    ///
    /// Visit strategy: the start with the largest bound is swept first to
    /// seed the incumbent near the true maximum, then the remaining starts
    /// are visited ascending and skipped outright when either bound proves
    /// them strictly below the incumbent. Per kept start the deadline sweep
    /// begins at the first deadline `>= a` (earlier jobs cannot be released
    /// at/after `a`) and stops at the certified tail cutoff.
    fn critical_interval(&mut self, active: &ActiveSet, candidates: &mut u64) -> (f64, f64, f64) {
        debug_assert!(!active.is_empty());
        let k = active.len();
        let inflate = 1.0 + (2.0 * k as f64 + 16.0) * f64::EPSILON;

        self.sort_keys.clear();
        self.sort_keys.extend(
            active
                .deadline
                .iter()
                .enumerate()
                .map(|(i, &d)| ((total_cmp_key(d) as u128) << 32) | i as u128),
        );
        self.sort_keys.sort_unstable();
        self.by_deadline.clear();
        self.by_deadline
            .extend(self.sort_keys.iter().map(|&v| v as u32));
        self.dl.clear();
        self.rl.clear();
        self.wk.clear();
        for &idx in &self.by_deadline {
            self.dl.push(active.deadline[idx as usize]);
            self.rl.push(active.release[idx as usize]);
            self.wk.push(active.work[idx as usize]);
        }

        self.sort_keys.clear();
        self.sort_keys.extend(
            active
                .release
                .iter()
                .enumerate()
                .map(|(i, &r)| ((total_cmp_key(r) as u128) << 32) | i as u128),
        );
        self.sort_keys.sort_unstable();
        self.by_release.clear();
        self.by_release
            .extend(self.sort_keys.iter().map(|&v| v as u32));
        self.starts.clear();
        self.starts
            .extend(self.by_release.iter().map(|&i| active.release[i as usize]));
        self.starts.dedup_by(|a, b| a == b);

        // Suffix scan (releases descending): accumulate work and the minimum
        // deadline over jobs released at/after each start.
        self.ub.clear();
        self.ub.resize(self.starts.len(), 0.0);
        self.suffix_work.clear();
        self.suffix_work.resize(self.starts.len(), 0.0);
        {
            let mut ptr = k;
            let mut work = 0.0f64;
            let mut dmin = f64::INFINITY;
            for s in (0..self.starts.len()).rev() {
                let a = self.starts[s];
                while ptr > 0 && active.release[self.by_release[ptr - 1] as usize] >= a {
                    let i = self.by_release[ptr - 1] as usize;
                    work += active.work[i];
                    dmin = dmin.min(active.deadline[i]);
                    ptr -= 1;
                }
                let w_infl = work * inflate;
                self.suffix_work[s] = w_infl;
                let span = dmin - a;
                self.ub[s] = if span > 0.0 {
                    w_infl / span
                } else {
                    f64::INFINITY
                };
            }
        }

        // Prefix sums over the deadline order (the epigraph filter's
        // numerators).
        self.ps.clear();
        self.ps.reserve(k + 1);
        self.ps.push(0.0);
        let mut acc = 0.0f64;
        for &w in &self.wk {
            acc += w;
            self.ps.push(acc);
        }

        // Inverse permutation and the linked list over deadline ranks.
        self.rank.clear();
        self.rank.resize(k, 0);
        for (r, &idx) in self.by_deadline.iter().enumerate() {
            self.rank[idx as usize] = r as u32;
        }
        self.next.clear();
        self.prev.clear();
        for j in 0..k as u32 {
            self.next.push(j + 1);
            self.prev.push(j.wrapping_sub(1));
        }
        self.next[k - 1] = LIST_END;
        self.prev[0] = LIST_END;
        let mut head = 0u32;

        // Seed the incumbent from the start with the best bound, then visit
        // the rest ascending: most of them are now strictly below the
        // incumbent and skipped without touching the deadline sweep. (A
        // start *tying* the incumbent bound must still be swept — an equal
        // intensity at an earlier start wins the tie-break.)
        let seed = (0..self.starts.len())
            .max_by(|&x, &y| match self.ub[x].total_cmp(&self.ub[y]) {
                std::cmp::Ordering::Equal => y.cmp(&x),
                o => o,
            })
            .expect("at least one start");

        let mut best = (0.0, 0.0, f64::NEG_INFINITY); // (a, b, g)
        let mut evaluated = 0u64;
        self.sweep_start_array(seed, &mut best, &mut evaluated);

        // Epigraph state: `sm` is valid for incumbent intensity `sm_g`;
        // `sm_slack` absorbs every float error of the test (prefix-sum
        // drift, the `g·dl` products, the comparisons), all anchored on
        // absolute scales so tiny segment sums inside a large total are
        // still covered. The filter is disabled for non-positive or huge
        // incumbents (±inf arithmetic would produce NaNs; above ~1e300 an
        // overflowed candidate division could evade the slack).
        let mut sm_g = f64::NAN;
        let mut sm_slack = 0.0f64;
        let mut lo_ptr = 0usize;
        let mut rel_ptr = 0usize;
        for si in 0..self.starts.len() {
            // The ascending start passed these jobs' releases: unlink them.
            let a = self.starts[si];
            while rel_ptr < k {
                let idx = self.by_release[rel_ptr] as usize;
                if active.release[idx] >= a {
                    break;
                }
                let r = self.rank[idx];
                let (p, n) = (self.prev[r as usize], self.next[r as usize]);
                if p == LIST_END {
                    head = n;
                } else {
                    self.next[p as usize] = n;
                }
                if n != LIST_END {
                    self.prev[n as usize] = p;
                }
                rel_ptr += 1;
            }
            if si == seed || self.ub[si] < best.2 {
                continue;
            }
            if best.2 > 0.0 && best.2 < 1e300 {
                if sm_g != best.2 {
                    self.rebuild_sm(best.2);
                    sm_g = best.2;
                    sm_slack = self.epigraph_slack(best.2);
                    self.sm_rebuilds += 1;
                }
                while lo_ptr < k && self.dl[lo_ptr] < a {
                    lo_ptr += 1;
                }
                if self.sm[lo_ptr] < self.ps[lo_ptr] - best.2 * a - sm_slack {
                    self.pruned_starts += 1;
                    continue;
                }
            }
            self.sweep_start_list(si, head, &mut best, &mut evaluated);
        }
        *candidates += evaluated;
        debug_assert!(best.2 > f64::NEG_INFINITY);
        (best.0, best.1, best.2)
    }

    /// Rebuild the epigraph suffix maxima for incumbent intensity `g`:
    /// `sm[j] = max_{t >= j} (ps[t+1] - g·dl[t])`, `sm[k] = -inf`. All
    /// inputs are finite here (`g` is a finite positive incumbent, `ps` and
    /// `dl` are finite), so no NaN can poison the running maximum.
    fn rebuild_sm(&mut self, g: f64) {
        let k = self.dl.len();
        self.sm.clear();
        self.sm.resize(k + 1, f64::NEG_INFINITY);
        let mut m = f64::NEG_INFINITY;
        for j in (0..k).rev() {
            let f = self.ps[j + 1] - g * self.dl[j];
            if f > m {
                m = f;
            }
            self.sm[j] = m;
        }
    }

    /// Absolute slack certifying the epigraph test at incumbent `g`.
    ///
    /// Error sources it must dominate, for `k` jobs of total work `W =
    /// ps[k]` and time magnitude `T`: the prefix sums drift by `O(kε·W)`
    /// *absolutely* (a small segment inside a large total inherits the
    /// total's error), the evaluated accumulators drift by `O(kε)` relative,
    /// the division and the `g·dl` / `g·a` products each add `O(ε·(W +
    /// g·T))`. `(8k + 64)·ε·(W + g·T)` covers all of them with an order of
    /// magnitude to spare; the filter only loses a ~1e-12-relative sliver of
    /// pruning power for it.
    fn epigraph_slack(&self, g: f64) -> f64 {
        let k = self.dl.len();
        let t_mag = self.dl[0]
            .abs()
            .max(self.dl[k - 1].abs())
            .max(self.starts[0].abs())
            .max(self.starts[self.starts.len() - 1].abs());
        (8.0 * k as f64 + 64.0) * f64::EPSILON * (self.ps[k] + g * t_mag)
    }

    /// Division filter threshold: a candidate with `acc < best_g·span·(1-4ε)`
    /// is certainly strictly below the incumbent (`fl(acc/span) < best_g`),
    /// so the division and comparator run only for potential winners/ties.
    /// When the incumbent is not a finite positive intensity the filter is
    /// disabled (0 · span == 0 ≤ acc keeps every candidate on the exact
    /// path, including zero-width spans).
    #[inline]
    fn div_filter(best_g: f64) -> f64 {
        if best_g.is_finite() && best_g > 0.0 {
            best_g * (1.0 - 4.0 * f64::EPSILON)
        } else {
            0.0
        }
    }

    /// Certified tail cutoff on the candidate span: a candidate with
    /// `span > cut` satisfies `best_g·span > w_infl` (the old multiply-form
    /// check, proven sound in the struct docs), so the deadline-ascending
    /// sweep can stop. `+inf` disables the cutoff for non-positive or
    /// non-finite incumbents, matching the multiply form's behavior there.
    #[inline]
    fn tail_cut(best_g: f64, w_infl: f64) -> f64 {
        if best_g.is_finite() && best_g > 0.0 {
            (w_infl / best_g) * (1.0 + 4.0 * f64::EPSILON)
        } else if best_g == f64::INFINITY {
            0.0
        } else {
            f64::INFINITY
        }
    }

    /// Sweep all candidates at start index `si` over the flat deadline-order
    /// arrays (used once to seed the incumbent, before the linked list has
    /// advanced to `si`'s release cutoff). Exactly the reference's
    /// sequential accumulation over jobs in `(deadline, index)` order
    /// restricted to `release >= a`.
    #[inline]
    fn sweep_start_array(&self, si: usize, best: &mut (f64, f64, f64), evaluated: &mut u64) {
        let a = self.starts[si];
        let w_infl = self.suffix_work[si];
        // Jobs with deadline < a cannot have release >= a (windows are never
        // inverted), so the sweep starts at the first deadline >= a. Zero
        // width windows at exactly `a` are kept.
        let lo = self.dl.partition_point(|&d| d < a);
        let mut acc = 0.0f64;
        let mut filter = Self::div_filter(best.2);
        let mut cut = Self::tail_cut(best.2, w_infl);
        for j in lo..self.dl.len() {
            let span = self.dl[j] - a;
            if span > cut {
                break;
            }
            if self.rl[j] >= a {
                acc += self.wk[j];
                *evaluated += 1;
                if acc >= filter * span {
                    let g = acc / span;
                    if beats(g, a, self.dl[j], *best) {
                        *best = (a, self.dl[j], g);
                        filter = Self::div_filter(g);
                        cut = Self::tail_cut(g, w_infl);
                    }
                }
            }
        }
    }

    /// Sweep all candidates at start index `si` by walking the linked list —
    /// every visited job is released at/after `a`, in `(deadline, index)`
    /// order, so the accumulation sequence is identical to the array sweep's.
    #[inline]
    fn sweep_start_list(
        &self,
        si: usize,
        head: u32,
        best: &mut (f64, f64, f64),
        evaluated: &mut u64,
    ) {
        let a = self.starts[si];
        let w_infl = self.suffix_work[si];
        let mut acc = 0.0f64;
        let mut filter = Self::div_filter(best.2);
        let mut cut = Self::tail_cut(best.2, w_infl);
        let mut j = head;
        while j != LIST_END {
            let d = self.dl[j as usize];
            let span = d - a;
            if span > cut {
                break;
            }
            acc += self.wk[j as usize];
            *evaluated += 1;
            if acc >= filter * span {
                let g = acc / span;
                if beats(g, a, d, *best) {
                    *best = (a, d, g);
                    filter = Self::div_filter(g);
                    cut = Self::tail_cut(g, w_infl);
                }
            }
            j = self.next[j as usize];
        }
    }
}

/// Full pipeline: optimal speeds via [`yds`], then an explicit EDF schedule
/// on machine `machine`. The schedule is guaranteed feasible by YDS theory;
/// this function panics if EDF rejects it (which would indicate a bug, not an
/// input condition).
pub fn yds_schedule(jobs: &[Job], alpha: f64, machine: usize) -> (YdsSolution, Schedule) {
    let sol = yds(jobs, alpha);
    let p: Vec<f64> = jobs
        .iter()
        .zip(&sol.speeds)
        .map(|(j, &s)| j.work / s)
        .collect();
    let schedule =
        edf_schedule(jobs, &p, machine).expect("YDS speeds are always EDF-feasible on one machine");
    (sol, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::numeric::energy_of;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::Instance;
    use ssp_prng::{check, Rng, StdRng};

    #[test]
    fn empty_input() {
        let sol = yds(&[], 2.0);
        assert_eq!(sol.energy, 0.0);
        assert!(sol.speeds.is_empty());
    }

    #[test]
    fn single_job_runs_at_density() {
        let jobs = vec![Job::new(0, 3.0, 1.0, 4.0)];
        let sol = yds(&jobs, 2.0);
        assert!((sol.speeds[0] - 1.0).abs() < 1e-12);
        assert!((sol.energy - 3.0).abs() < 1e-12); // w * s^(a-1) = 3*1
    }

    #[test]
    fn two_disjoint_jobs_each_at_density() {
        let jobs = vec![Job::new(0, 2.0, 0.0, 1.0), Job::new(1, 1.0, 5.0, 7.0)];
        let sol = yds(&jobs, 3.0);
        assert!((sol.speeds[0] - 2.0).abs() < 1e-12);
        assert!((sol.speeds[1] - 0.5).abs() < 1e-12);
        assert!((sol.energy - (2.0 * 4.0 + 1.0 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn nested_job_raises_peak() {
        // Outer job [0,4] w=2; inner urgent job [1,2] w=2.
        // Critical interval is [1,2] at speed 2 (only the inner job fits in
        // [1,2]). After excision the outer job has window [0,3], speed 2/3.
        let jobs = vec![Job::new(0, 2.0, 0.0, 4.0), Job::new(1, 2.0, 1.0, 2.0)];
        let sol = yds(&jobs, 2.0);
        assert!((sol.speeds[1] - 2.0).abs() < 1e-12);
        assert!((sol.speeds[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(sol.peels.len(), 2);
        assert_eq!(sol.peels[0], (1.0, 2.0, 2.0));
    }

    #[test]
    fn identical_windows_share_one_speed() {
        let jobs: Vec<Job> = (0..4).map(|i| Job::new(i, 1.0, 0.0, 2.0)).collect();
        let sol = yds(&jobs, 2.0);
        for &s in &sol.speeds {
            assert!((s - 2.0).abs() < 1e-12); // total work 4 over length 2
        }
    }

    #[test]
    fn schedule_is_valid_and_energy_matches() {
        let jobs = vec![
            Job::new(0, 2.0, 0.0, 4.0),
            Job::new(1, 2.0, 1.0, 2.0),
            Job::new(2, 1.0, 3.0, 6.0),
            Job::new(3, 0.5, 0.0, 1.0),
        ];
        let alpha = 2.5;
        let (sol, schedule) = yds_schedule(&jobs, alpha, 0);
        let inst = Instance::new(jobs, 1, alpha).unwrap();
        let stats = schedule
            .validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
        assert!((stats.energy - sol.energy).abs() < 1e-6 * sol.energy);
    }

    #[test]
    fn speeds_never_below_density() {
        let jobs = vec![
            Job::new(0, 1.0, 0.0, 10.0),
            Job::new(1, 5.0, 2.0, 3.0),
            Job::new(2, 2.0, 2.5, 6.0),
        ];
        let sol = yds(&jobs, 2.0);
        for (j, &s) in jobs.iter().zip(&sol.speeds) {
            assert!(s >= j.density() - 1e-9, "{} below density", j.id);
        }
    }

    #[test]
    fn agreeable_chain_with_uniform_load_is_flat() {
        // Unit jobs, windows [i, i+1]: constant speed 1 everywhere.
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::new(i, 1.0, i as f64, i as f64 + 1.0))
            .collect();
        let sol = yds(&jobs, 2.0);
        for &s in &sol.speeds {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!((sol.energy - 5.0).abs() < 1e-12);
    }

    /// Brute-force check on 2-job instances: discretize both speeds and keep
    /// EDF-feasible combinations; YDS must not be beaten.
    #[test]
    fn two_job_grid_search_cannot_beat_yds() {
        use crate::edf::edf_feasible;
        let cases = [
            (Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 1.5, 0.5, 2.5)),
            (Job::new(0, 2.0, 0.0, 3.0), Job::new(1, 1.0, 1.0, 2.0)),
            (Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)),
        ];
        let alpha = 2.0;
        for (a, b) in cases {
            let jobs = vec![a, b];
            let opt = yds(&jobs, alpha).energy;
            let mut best = f64::INFINITY;
            for sa in 1..=120 {
                for sb in 1..=120 {
                    let (sa, sb) = (sa as f64 * 0.05, sb as f64 * 0.05);
                    let p = vec![a.work / sa, b.work / sb];
                    if edf_feasible(&jobs, &p) {
                        let e = energy_of(a.work, sa, alpha) + energy_of(b.work, sb, alpha);
                        best = best.min(e);
                    }
                }
            }
            assert!(
                opt <= best + 1e-9,
                "grid search found energy {best} below YDS {opt}"
            );
        }
    }

    /// Draw `len`-many random jobs with the standard (work, release, span)
    /// envelope shared by the seeded properties below.
    fn random_jobs(rng: &mut StdRng, len: std::ops::Range<usize>) -> Vec<Job> {
        check::vec_of(rng, len, |r| {
            (
                r.gen_range(0.1f64..3.0),
                r.gen_range(0.0f64..8.0),
                r.gen_range(0.2f64..4.0),
            )
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, len))| Job::new(i as u32, w, r, r + len))
        .collect()
    }

    /// Run the fast finder directly (bypassing the small-n entry cutoff) and
    /// assert bitwise agreement with the reference kernel.
    fn assert_fast_path_matches_reference(jobs: &[Job], alpha: f64) {
        let mut scratch = FastScratch::default();
        let mut candidates = 0u64;
        let fast = run_peels(jobs, alpha, |active| {
            scratch.critical_interval(active, &mut candidates)
        });
        let reference = yds_reference(jobs, alpha);
        assert_eq!(fast.peels, reference.peels);
        assert_eq!(fast.energy.to_bits(), reference.energy.to_bits());
        for (s_fast, s_ref) in fast.speeds.iter().zip(&reference.speeds) {
            assert_eq!(s_fast.to_bits(), s_ref.to_bits());
        }
    }

    /// The fast kernel and the retained reference peel agree bit-for-bit:
    /// same peels, same speeds, same energy. Runs the fast finder directly
    /// so small random instances exercise the pruning paths rather than the
    /// entry cutoff.
    #[test]
    fn fast_kernel_matches_reference_bitwise() {
        check::cases(60, 0xFA57, |rng| {
            let jobs = random_jobs(rng, 1..24);
            let alpha = rng.gen_range(1.4f64..3.0);
            assert_fast_path_matches_reference(&jobs, alpha);
        });
    }

    /// The public entry's small-peel cutoff must be invisible in the
    /// output: instances straddling [`SMALL_PEEL_CUTOFF`] agree with the
    /// reference bit-for-bit on both sides of the boundary (instances above
    /// it still cross the boundary mid-call as peels shrink the active set).
    #[test]
    fn cutoff_boundary_is_bit_identical() {
        let mut rng = <StdRng as ssp_prng::SeedableRng>::seed_from_u64(0xC07F);
        for n in [
            SMALL_PEEL_CUTOFF - 2,
            SMALL_PEEL_CUTOFF - 1,
            SMALL_PEEL_CUTOFF,
            SMALL_PEEL_CUTOFF + 1,
            2 * SMALL_PEEL_CUTOFF,
        ] {
            let jobs = random_jobs(&mut rng, n..n + 1);
            assert_eq!(jobs.len(), n);
            let fast = yds(&jobs, 2.2);
            let reference = yds_reference(&jobs, 2.2);
            assert_eq!(fast.peels, reference.peels, "n={n}");
            assert_eq!(fast.energy.to_bits(), reference.energy.to_bits(), "n={n}");
            for (s_fast, s_ref) in fast.speeds.iter().zip(&reference.speeds) {
                assert_eq!(s_fast.to_bits(), s_ref.to_bits(), "n={n}");
            }
        }
    }

    /// Same contract for the whole-instance cutoff: calls on either side of
    /// [`SMALL_INSTANCE_CUTOFF`] agree with the reference bit-for-bit, so the
    /// top-level routing (which never touches the fast kernel below the
    /// cutoff) is pure dispatch, not a semantic fork.
    #[test]
    fn instance_cutoff_boundary_is_bit_identical() {
        let mut rng = <StdRng as ssp_prng::SeedableRng>::seed_from_u64(0x1A57);
        for n in [
            SMALL_INSTANCE_CUTOFF - 1,
            SMALL_INSTANCE_CUTOFF,
            SMALL_INSTANCE_CUTOFF + 1,
        ] {
            let jobs = random_jobs(&mut rng, n..n + 1);
            let fast = yds(&jobs, 2.2);
            let reference = yds_reference(&jobs, 2.2);
            assert_eq!(fast.peels, reference.peels, "n={n}");
            assert_eq!(fast.energy.to_bits(), reference.energy.to_bits(), "n={n}");
            for (s_fast, s_ref) in fast.speeds.iter().zip(&reference.speeds) {
                assert_eq!(s_fast.to_bits(), s_ref.to_bits(), "n={n}");
            }
        }
    }

    /// A warm arena must return the same bits as a fresh [`yds`] call — in
    /// particular, stale buffer contents from a *larger* earlier list must
    /// never leak into a smaller one.
    #[test]
    fn arena_energy_matches_yds_bitwise() {
        let mut arena = YdsArena::default();
        let mut rng = <StdRng as ssp_prng::SeedableRng>::seed_from_u64(0xA2E7A);
        // Sizes deliberately zig-zag across the peel cutoff.
        for n in [40usize, 3, 70, 1, 33, 12, 64, 2] {
            let jobs = random_jobs(&mut rng, n..n + 1);
            let fresh = yds(&jobs, 2.3).energy;
            let warm = yds_energy_in(&mut arena, &jobs, 2.3);
            assert_eq!(warm.to_bits(), fresh.to_bits(), "n={n}");
        }
    }

    /// Scale laws: multiplying works by c multiplies OPT by c^alpha;
    /// stretching time by c multiplies OPT by c^(1-alpha).
    #[test]
    fn yds_respects_scale_laws() {
        check::cases(40, 0x5CA1E, |rng| {
            let jobs = random_jobs(rng, 1..8);
            let alpha = rng.gen_range(1.4f64..3.0);
            let c = rng.gen_range(0.3f64..3.0);
            let base = yds(&jobs, alpha).energy;

            let scaled_w: Vec<Job> = jobs
                .iter()
                .map(|j| Job {
                    work: j.work * c,
                    ..*j
                })
                .collect();
            let ew = yds(&scaled_w, alpha).energy;
            assert!(
                (ew - base * c.powf(alpha)).abs() <= 1e-6 * ew.max(base),
                "work scale law: {ew} vs {}",
                base * c.powf(alpha)
            );

            let scaled_t: Vec<Job> = jobs
                .iter()
                .map(|j| Job {
                    release: j.release * c,
                    deadline: j.deadline * c,
                    ..*j
                })
                .collect();
            let et = yds(&scaled_t, alpha).energy;
            assert!(
                (et - base * c.powf(1.0 - alpha)).abs() <= 1e-6 * et.max(base),
                "time scale law: {et} vs {}",
                base * c.powf(1.0 - alpha)
            );
        });
    }

    /// The YDS speed profile is always EDF-feasible and the explicit
    /// schedule validates with matching energy.
    #[test]
    fn yds_schedule_always_validates() {
        check::cases(40, 0x5C_ED, |rng| {
            let jobs = random_jobs(rng, 1..10);
            let alpha = rng.gen_range(1.4f64..3.0);
            let (sol, schedule) = yds_schedule(&jobs, alpha, 0);
            let inst = Instance::new(jobs, 1, alpha).unwrap();
            let stats = schedule
                .validate(&inst, ValidationOptions::non_migratory())
                .unwrap();
            assert!((stats.energy - sol.energy).abs() <= 1e-6 * sol.energy.max(1e-12));
        });
    }

    /// Removing a job never increases optimal energy (monotonicity).
    #[test]
    fn yds_is_monotone_in_job_set() {
        check::cases(40, 0x3007, |rng| {
            let jobs = random_jobs(rng, 2..8);
            let full = yds(&jobs, 2.0).energy;
            let fewer = yds(&jobs[1..], 2.0).energy;
            assert!(fewer <= full + 1e-9 * full.max(1.0));
        });
    }
}
