//! YDS — the optimal single-processor algorithm (Yao, Demers, Shenker 1995).
//!
//! Repeatedly find the *critical interval*: the interval `I` maximizing the
//! intensity `g(I) = (Σ_{span_i ⊆ I} w_i) / |I|`. The jobs fully contained in
//! `I` run at speed `g(I)` (EDF-ordered inside `I`); they and the interval are
//! then removed — remaining jobs' windows are "squeezed" around the excised
//! interval — and the process repeats. The result is the unique optimal speed
//! profile; its energy is `Σ w_i · s_i^(α-1)`.
//!
//! Two kernels share one peel driver and produce **bit-identical** output:
//!
//! * [`yds`] — the fast kernel: per peel, starts are visited in descending
//!   order of a certified intensity upper bound, and both whole starts and
//!   deadline-sweep tails are skipped when the bound proves them *strictly*
//!   below the incumbent. Candidates that are evaluated use exactly the
//!   reference arithmetic (sequential work accumulation in deadline order),
//!   and the incumbent comparator reproduces the reference's first-maximizer
//!   tie-break, so the selected interval — and therefore every speed and the
//!   energy — matches [`yds_reference`] bit for bit. Typical peels touch a
//!   small fraction of the `O(k²)` candidate grid (see the `yds.candidates`
//!   probe counter and the `yds_kernel` bench); the worst case degrades to
//!   the reference's `O(k²)` per peel.
//! * [`yds_reference`] — the retained reference peel: each peel scans `O(k²)`
//!   candidate intervals with an `O(k)` sweep per left endpoint, i.e. the
//!   classic `O(n³)` worst-case bound for direct YDS implementations. Kept as
//!   the differential-testing baseline (`tests/yds_differential.rs`) and the
//!   "old" side of EXP-19.

use crate::edf::edf_schedule;
use ssp_model::numeric::energy_of;
use ssp_model::{Job, Schedule, SpeedAssignment};

/// Result of running [`yds`]: optimal constant speed per job (aligned with
/// the input slice) and the optimal energy.
#[derive(Debug, Clone, PartialEq)]
pub struct YdsSolution {
    /// Optimal speed of each input job.
    pub speeds: Vec<f64>,
    /// Optimal total energy `Σ w_i · s_i^(α-1)`.
    pub energy: f64,
    /// Critical intervals in peel order: `(start, end, intensity)` in the
    /// *original* (un-squeezed) time coordinates of the first peel only for
    /// the head element; later entries are in squeezed coordinates and are
    /// exposed for diagnostics/tests of the peeling process.
    pub peels: Vec<(f64, f64, f64)>,
}

impl YdsSolution {
    /// Speeds as a [`SpeedAssignment`] (same indexing as the input slice).
    pub fn assignment(&self) -> SpeedAssignment {
        SpeedAssignment::new(self.speeds.clone())
    }
}

/// Working copy of a job during peeling.
#[derive(Debug, Clone, Copy)]
struct Active {
    orig: usize,
    work: f64,
    release: f64,
    deadline: f64,
}

/// Compute the optimal speed per job on a single processor (fast kernel).
///
/// ```
/// use ssp_model::Job;
/// use ssp_single::yds::yds;
///
/// // A tight job nested in a loose one: the tight one sets the peak.
/// let jobs = vec![Job::new(0, 2.0, 0.0, 4.0), Job::new(1, 2.0, 1.0, 2.0)];
/// let sol = yds(&jobs, 2.0);
/// assert!((sol.speeds[1] - 2.0).abs() < 1e-9);      // critical interval [1,2]
/// assert!((sol.speeds[0] - 2.0 / 3.0).abs() < 1e-9); // squeezed remainder
/// ```
pub fn yds(jobs: &[Job], alpha: f64) -> YdsSolution {
    let mut scratch = FastScratch::default();
    let mut candidates = 0u64;
    let sol = run_peels(jobs, alpha, |active| {
        scratch.critical_interval(active, &mut candidates)
    });
    ssp_probe::counter!("yds.peels", sol.peels.len() as u64);
    ssp_probe::counter!("yds.candidates", candidates);
    sol
}

/// The retained reference peel: brute-force `O(k²)`-per-peel critical
/// interval scan. Semantics (and bits) match [`yds`]; complexity does not.
pub fn yds_reference(jobs: &[Job], alpha: f64) -> YdsSolution {
    let mut candidates = 0u64;
    let sol = run_peels(jobs, alpha, |active| {
        critical_interval_reference(active, &mut candidates)
    });
    ssp_probe::counter!("yds.peels", sol.peels.len() as u64);
    ssp_probe::counter!("yds.candidates", candidates);
    sol
}

/// The shared peel driver: repeatedly excise the critical interval reported
/// by `find`, fixing contained jobs at its intensity and squeezing the rest.
fn run_peels(
    jobs: &[Job],
    alpha: f64,
    mut find: impl FnMut(&[Active]) -> (f64, f64, f64),
) -> YdsSolution {
    assert!(alpha > 1.0, "alpha must exceed 1");
    let mut speeds = vec![0.0f64; jobs.len()];
    let mut peels = Vec::new();
    let mut active: Vec<Active> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| Active {
            orig: i,
            work: j.work,
            release: j.release,
            deadline: j.deadline,
        })
        .collect();

    while !active.is_empty() {
        let (a, b, g) = find(&active);
        peels.push((a, b, g));
        // Peel interval width in fixed-point micro-units of (abstract)
        // time, so the log2 buckets resolve sub-unit widths; zero-width
        // degenerate windows land in bucket 0. The f64→u64 cast saturates.
        ssp_probe::histogram!("yds.peel_width", ((b - a) * 1e6).round() as u64);
        // Intensity is positive; it is +inf for degenerate zero-width
        // windows (which are then excised immediately at infinite speed).
        debug_assert!(g > 0.0);
        // Fix speeds of contained jobs; keep the rest.
        let mut rest = Vec::with_capacity(active.len());
        for job in active.into_iter() {
            if a <= job.release && job.deadline <= b {
                speeds[job.orig] = g;
            } else {
                rest.push(job);
            }
        }
        // Squeeze the excised interval out of the timeline.
        let shift = b - a;
        for job in &mut rest {
            job.release = squeeze(job.release, a, b, shift);
            job.deadline = squeeze(job.deadline, a, b, shift);
            debug_assert!(job.deadline >= job.release);
        }
        active = rest;
    }

    let energy = jobs
        .iter()
        .zip(&speeds)
        .map(|(j, &s)| energy_of(j.work, s, alpha))
        .sum();
    YdsSolution {
        speeds,
        energy,
        peels,
    }
}

/// Map a time coordinate after excising `[a, b]`.
fn squeeze(x: f64, a: f64, b: f64, shift: f64) -> f64 {
    if x <= a {
        x
    } else if x >= b {
        x - shift
    } else {
        a
    }
}

/// Does candidate `(g, a, b)` beat the incumbent under the reference
/// selection rule? The reference iterates starts ascending, then deadlines
/// ascending, keeping the first maximizer under strict `>` — equivalent to
/// the lexicographic argmax of `(g, -a, -b)`, which is what this comparator
/// implements so candidates may be visited in *any* order.
#[inline]
fn beats(g: f64, a: f64, b: f64, best: (f64, f64, f64)) -> bool {
    g > best.2 || (g == best.2 && (a < best.0 || (a == best.0 && b < best.1)))
}

/// The maximum-intensity interval of the active set — reference scan.
/// Candidate intervals run from a release date to a deadline. Ties break
/// toward the earliest start, then the longest interval, making peeling
/// deterministic.
fn critical_interval_reference(active: &[Active], candidates: &mut u64) -> (f64, f64, f64) {
    debug_assert!(!active.is_empty());
    // For each candidate left endpoint `a` (a release), sweep jobs in
    // deadline order accumulating the work of jobs with release >= a.
    let mut by_deadline: Vec<usize> = (0..active.len()).collect();
    by_deadline.sort_by(|&x, &y| active[x].deadline.total_cmp(&active[y].deadline));
    let mut starts: Vec<f64> = active.iter().map(|j| j.release).collect();
    starts.sort_by(f64::total_cmp);
    starts.dedup();

    // Deterministic argmax: iteration order is fixed (starts ascending,
    // deadlines ascending), strict `>` keeps the first maximizer — i.e. the
    // earliest start, then the earliest right endpoint achieving the maximum.
    let mut best = (0.0, 0.0, f64::NEG_INFINITY);
    for &a in &starts {
        let mut acc = 0.0;
        for &idx in &by_deadline {
            let j = &active[idx];
            // `release >= a` implies `deadline >= a` (windows may be
            // degenerate but never inverted).
            if j.release >= a {
                acc += j.work;
                *candidates += 1;
                let g = acc / (j.deadline - a);
                if g > best.2 {
                    best = (a, j.deadline, g);
                }
            }
        }
    }
    best
}

/// Monotone `u64` image of `f64::total_cmp`: the standard sign-fold trick
/// (flip all bits of negatives, flip only the sign bit of non-negatives)
/// maps every float — including `-0.0`, infinities and NaNs — to an
/// unsigned integer whose `<` order equals `total_cmp`. Packing the image
/// above a 32-bit index yields a single integer key whose order is exactly
/// the `(total_cmp, index)` lexicographic order, so the kernel's permutation
/// sorts run branch-free integer comparisons instead of a float comparator.
#[inline]
fn total_cmp_key(x: f64) -> u64 {
    let b = x.to_bits();
    b ^ (((b as i64 >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Scratch buffers of the fast critical-interval search, reused across the
/// peels of one [`yds`] call so the kernel allocates a constant number of
/// vectors per call instead of per peel.
#[derive(Default)]
struct FastScratch {
    /// Packed `(total_cmp_key(time) << 32) | index` sort keys.
    sort_keys: Vec<u128>,
    /// Active indices sorted by `(deadline, index)` — identical order to the
    /// reference's stable sort by deadline.
    by_deadline: Vec<u32>,
    /// Deadline-ordered copies of the active jobs' fields (flat arrays keep
    /// the inner sweep branch-predictable and cache-friendly).
    dl: Vec<f64>,
    rl: Vec<f64>,
    wk: Vec<f64>,
    /// Active indices sorted by `(release, index)`; drives the suffix scan.
    by_release: Vec<u32>,
    /// Distinct release values ascending (the candidate starts).
    starts: Vec<f64>,
    /// Per start: certified upper bound on any candidate intensity there and
    /// the total (inflated) work of jobs released at/after it.
    ub: Vec<f64>,
    suffix_work: Vec<f64>,
    /// Deadline rank of each active index (inverse of `by_deadline`).
    rank: Vec<u32>,
    /// Doubly-linked list over deadline ranks holding the jobs released
    /// at/after the sweep's current start; jobs are unlinked (O(1)) as the
    /// ascending start passes their release, so each sweep touches only
    /// genuine candidates — no straddler iterations, no release compare.
    next: Vec<u32>,
    prev: Vec<u32>,
}

/// End-of-list sentinel for [`FastScratch::next`]/[`FastScratch::prev`].
const LIST_END: u32 = u32::MAX;

impl FastScratch {
    /// The maximum-intensity interval — same value and tie-break as
    /// [`critical_interval_reference`], computed with certified pruning.
    ///
    /// Soundness of the pruning: for a start `a`, every candidate intensity
    /// is `fl(acc / fl(d - a))` where `acc` is a sequential float sum of a
    /// subset of the works of jobs released at/after `a`. That is bounded by
    /// `W(a) · (1 + O(kε)) / (dmin(a) - a)` with `W(a)` the suffix work sum
    /// and `dmin(a)` the earliest deadline in the suffix; inflating `W(a)`
    /// by `(1 + (2k+16)ε)` absorbs every rounding term, so a start (or a
    /// sweep tail) whose inflated bound is *strictly* below the incumbent
    /// intensity cannot contain the argmax — not even a tie, which is what
    /// keeps the tie-break decisions identical to the reference scan.
    ///
    /// Visit strategy: the start with the largest bound is swept first to
    /// seed the incumbent near the true maximum, then the remaining starts
    /// are visited ascending and skipped outright when their bound is
    /// strictly below the incumbent. Per kept start the deadline sweep
    /// begins at the first deadline `>= a` (earlier jobs cannot be released
    /// at/after `a`) and stops at the certified tail cutoff.
    fn critical_interval(&mut self, active: &[Active], candidates: &mut u64) -> (f64, f64, f64) {
        debug_assert!(!active.is_empty());
        let k = active.len();
        let inflate = 1.0 + (2.0 * k as f64 + 16.0) * f64::EPSILON;

        self.sort_keys.clear();
        self.sort_keys.extend(
            active
                .iter()
                .enumerate()
                .map(|(i, j)| ((total_cmp_key(j.deadline) as u128) << 32) | i as u128),
        );
        self.sort_keys.sort_unstable();
        self.by_deadline.clear();
        self.by_deadline
            .extend(self.sort_keys.iter().map(|&v| v as u32));
        self.dl.clear();
        self.rl.clear();
        self.wk.clear();
        for &idx in &self.by_deadline {
            let j = &active[idx as usize];
            self.dl.push(j.deadline);
            self.rl.push(j.release);
            self.wk.push(j.work);
        }

        self.sort_keys.clear();
        self.sort_keys.extend(
            active
                .iter()
                .enumerate()
                .map(|(i, j)| ((total_cmp_key(j.release) as u128) << 32) | i as u128),
        );
        self.sort_keys.sort_unstable();
        self.by_release.clear();
        self.by_release
            .extend(self.sort_keys.iter().map(|&v| v as u32));
        self.starts.clear();
        self.starts
            .extend(self.by_release.iter().map(|&i| active[i as usize].release));
        self.starts.dedup_by(|a, b| a == b);

        // Suffix scan (releases descending): accumulate work and the minimum
        // deadline over jobs released at/after each start.
        self.ub.clear();
        self.ub.resize(self.starts.len(), 0.0);
        self.suffix_work.clear();
        self.suffix_work.resize(self.starts.len(), 0.0);
        {
            let mut ptr = k;
            let mut work = 0.0f64;
            let mut dmin = f64::INFINITY;
            for s in (0..self.starts.len()).rev() {
                let a = self.starts[s];
                while ptr > 0 && active[self.by_release[ptr - 1] as usize].release >= a {
                    let j = &active[self.by_release[ptr - 1] as usize];
                    work += j.work;
                    dmin = dmin.min(j.deadline);
                    ptr -= 1;
                }
                let w_infl = work * inflate;
                self.suffix_work[s] = w_infl;
                let span = dmin - a;
                self.ub[s] = if span > 0.0 {
                    w_infl / span
                } else {
                    f64::INFINITY
                };
            }
        }

        // Inverse permutation and the linked list over deadline ranks.
        self.rank.clear();
        self.rank.resize(k, 0);
        for (r, &idx) in self.by_deadline.iter().enumerate() {
            self.rank[idx as usize] = r as u32;
        }
        self.next.clear();
        self.prev.clear();
        for j in 0..k as u32 {
            self.next.push(j + 1);
            self.prev.push(j.wrapping_sub(1));
        }
        self.next[k - 1] = LIST_END;
        self.prev[0] = LIST_END;
        let mut head = 0u32;

        // Seed the incumbent from the start with the best bound, then visit
        // the rest ascending: most of them are now strictly below the
        // incumbent and skipped without touching the deadline sweep. (A
        // start *tying* the incumbent bound must still be swept — an equal
        // intensity at an earlier start wins the tie-break.)
        let seed = (0..self.starts.len())
            .max_by(|&x, &y| match self.ub[x].total_cmp(&self.ub[y]) {
                std::cmp::Ordering::Equal => y.cmp(&x),
                o => o,
            })
            .expect("at least one start");

        let mut best = (0.0, 0.0, f64::NEG_INFINITY); // (a, b, g)
        let mut evaluated = 0u64;
        self.sweep_start_array(seed, &mut best, &mut evaluated);
        let mut rel_ptr = 0usize;
        for si in 0..self.starts.len() {
            // The ascending start passed these jobs' releases: unlink them.
            let a = self.starts[si];
            while rel_ptr < k {
                let idx = self.by_release[rel_ptr] as usize;
                if active[idx].release >= a {
                    break;
                }
                let r = self.rank[idx];
                let (p, n) = (self.prev[r as usize], self.next[r as usize]);
                if p == LIST_END {
                    head = n;
                } else {
                    self.next[p as usize] = n;
                }
                if n != LIST_END {
                    self.prev[n as usize] = p;
                }
                rel_ptr += 1;
            }
            if si != seed && self.ub[si] >= best.2 {
                self.sweep_start_list(si, head, &mut best, &mut evaluated);
            }
        }
        *candidates += evaluated;
        debug_assert!(best.2 > f64::NEG_INFINITY);
        (best.0, best.1, best.2)
    }

    /// Division filter threshold: a candidate with `acc < best_g·span·(1-4ε)`
    /// is certainly strictly below the incumbent (`fl(acc/span) < best_g`),
    /// so the division and comparator run only for potential winners/ties.
    /// When the incumbent is not a finite positive intensity the filter is
    /// disabled (0 · span == 0 ≤ acc keeps every candidate on the exact
    /// path, including zero-width spans).
    #[inline]
    fn div_filter(best_g: f64) -> f64 {
        if best_g.is_finite() && best_g > 0.0 {
            best_g * (1.0 - 4.0 * f64::EPSILON)
        } else {
            0.0
        }
    }

    /// Certified tail cutoff on the candidate span: a candidate with
    /// `span > cut` satisfies `best_g·span > w_infl` (the old multiply-form
    /// check, proven sound in the struct docs), so the deadline-ascending
    /// sweep can stop. `+inf` disables the cutoff for non-positive or
    /// non-finite incumbents, matching the multiply form's behavior there.
    #[inline]
    fn tail_cut(best_g: f64, w_infl: f64) -> f64 {
        if best_g.is_finite() && best_g > 0.0 {
            (w_infl / best_g) * (1.0 + 4.0 * f64::EPSILON)
        } else if best_g == f64::INFINITY {
            0.0
        } else {
            f64::INFINITY
        }
    }

    /// Sweep all candidates at start index `si` over the flat deadline-order
    /// arrays (used once to seed the incumbent, before the linked list has
    /// advanced to `si`'s release cutoff). Exactly the reference's
    /// sequential accumulation over jobs in `(deadline, index)` order
    /// restricted to `release >= a`.
    #[inline]
    fn sweep_start_array(&self, si: usize, best: &mut (f64, f64, f64), evaluated: &mut u64) {
        let a = self.starts[si];
        let w_infl = self.suffix_work[si];
        // Jobs with deadline < a cannot have release >= a (windows are never
        // inverted), so the sweep starts at the first deadline >= a. Zero
        // width windows at exactly `a` are kept.
        let lo = self.dl.partition_point(|&d| d < a);
        let mut acc = 0.0f64;
        let mut filter = Self::div_filter(best.2);
        let mut cut = Self::tail_cut(best.2, w_infl);
        for j in lo..self.dl.len() {
            let span = self.dl[j] - a;
            if span > cut {
                break;
            }
            if self.rl[j] >= a {
                acc += self.wk[j];
                *evaluated += 1;
                if acc >= filter * span {
                    let g = acc / span;
                    if beats(g, a, self.dl[j], *best) {
                        *best = (a, self.dl[j], g);
                        filter = Self::div_filter(g);
                        cut = Self::tail_cut(g, w_infl);
                    }
                }
            }
        }
    }

    /// Sweep all candidates at start index `si` by walking the linked list —
    /// every visited job is released at/after `a`, in `(deadline, index)`
    /// order, so the accumulation sequence is identical to the array sweep's.
    #[inline]
    fn sweep_start_list(
        &self,
        si: usize,
        head: u32,
        best: &mut (f64, f64, f64),
        evaluated: &mut u64,
    ) {
        let a = self.starts[si];
        let w_infl = self.suffix_work[si];
        let mut acc = 0.0f64;
        let mut filter = Self::div_filter(best.2);
        let mut cut = Self::tail_cut(best.2, w_infl);
        let mut j = head;
        while j != LIST_END {
            let d = self.dl[j as usize];
            let span = d - a;
            if span > cut {
                break;
            }
            acc += self.wk[j as usize];
            *evaluated += 1;
            if acc >= filter * span {
                let g = acc / span;
                if beats(g, a, d, *best) {
                    *best = (a, d, g);
                    filter = Self::div_filter(g);
                    cut = Self::tail_cut(g, w_infl);
                }
            }
            j = self.next[j as usize];
        }
    }
}

/// Full pipeline: optimal speeds via [`yds`], then an explicit EDF schedule
/// on machine `machine`. The schedule is guaranteed feasible by YDS theory;
/// this function panics if EDF rejects it (which would indicate a bug, not an
/// input condition).
pub fn yds_schedule(jobs: &[Job], alpha: f64, machine: usize) -> (YdsSolution, Schedule) {
    let sol = yds(jobs, alpha);
    let p: Vec<f64> = jobs
        .iter()
        .zip(&sol.speeds)
        .map(|(j, &s)| j.work / s)
        .collect();
    let schedule =
        edf_schedule(jobs, &p, machine).expect("YDS speeds are always EDF-feasible on one machine");
    (sol, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::Instance;
    use ssp_prng::{check, Rng, StdRng};

    #[test]
    fn empty_input() {
        let sol = yds(&[], 2.0);
        assert_eq!(sol.energy, 0.0);
        assert!(sol.speeds.is_empty());
    }

    #[test]
    fn single_job_runs_at_density() {
        let jobs = vec![Job::new(0, 3.0, 1.0, 4.0)];
        let sol = yds(&jobs, 2.0);
        assert!((sol.speeds[0] - 1.0).abs() < 1e-12);
        assert!((sol.energy - 3.0).abs() < 1e-12); // w * s^(a-1) = 3*1
    }

    #[test]
    fn two_disjoint_jobs_each_at_density() {
        let jobs = vec![Job::new(0, 2.0, 0.0, 1.0), Job::new(1, 1.0, 5.0, 7.0)];
        let sol = yds(&jobs, 3.0);
        assert!((sol.speeds[0] - 2.0).abs() < 1e-12);
        assert!((sol.speeds[1] - 0.5).abs() < 1e-12);
        assert!((sol.energy - (2.0 * 4.0 + 1.0 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn nested_job_raises_peak() {
        // Outer job [0,4] w=2; inner urgent job [1,2] w=2.
        // Critical interval is [1,2] at speed 2 (only the inner job fits in
        // [1,2]). After excision the outer job has window [0,3], speed 2/3.
        let jobs = vec![Job::new(0, 2.0, 0.0, 4.0), Job::new(1, 2.0, 1.0, 2.0)];
        let sol = yds(&jobs, 2.0);
        assert!((sol.speeds[1] - 2.0).abs() < 1e-12);
        assert!((sol.speeds[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(sol.peels.len(), 2);
        assert_eq!(sol.peels[0], (1.0, 2.0, 2.0));
    }

    #[test]
    fn identical_windows_share_one_speed() {
        let jobs: Vec<Job> = (0..4).map(|i| Job::new(i, 1.0, 0.0, 2.0)).collect();
        let sol = yds(&jobs, 2.0);
        for &s in &sol.speeds {
            assert!((s - 2.0).abs() < 1e-12); // total work 4 over length 2
        }
    }

    #[test]
    fn schedule_is_valid_and_energy_matches() {
        let jobs = vec![
            Job::new(0, 2.0, 0.0, 4.0),
            Job::new(1, 2.0, 1.0, 2.0),
            Job::new(2, 1.0, 3.0, 6.0),
            Job::new(3, 0.5, 0.0, 1.0),
        ];
        let alpha = 2.5;
        let (sol, schedule) = yds_schedule(&jobs, alpha, 0);
        let inst = Instance::new(jobs, 1, alpha).unwrap();
        let stats = schedule
            .validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
        assert!((stats.energy - sol.energy).abs() < 1e-6 * sol.energy);
    }

    #[test]
    fn speeds_never_below_density() {
        let jobs = vec![
            Job::new(0, 1.0, 0.0, 10.0),
            Job::new(1, 5.0, 2.0, 3.0),
            Job::new(2, 2.0, 2.5, 6.0),
        ];
        let sol = yds(&jobs, 2.0);
        for (j, &s) in jobs.iter().zip(&sol.speeds) {
            assert!(s >= j.density() - 1e-9, "{} below density", j.id);
        }
    }

    #[test]
    fn agreeable_chain_with_uniform_load_is_flat() {
        // Unit jobs, windows [i, i+1]: constant speed 1 everywhere.
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::new(i, 1.0, i as f64, i as f64 + 1.0))
            .collect();
        let sol = yds(&jobs, 2.0);
        for &s in &sol.speeds {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!((sol.energy - 5.0).abs() < 1e-12);
    }

    /// Brute-force check on 2-job instances: discretize both speeds and keep
    /// EDF-feasible combinations; YDS must not be beaten.
    #[test]
    fn two_job_grid_search_cannot_beat_yds() {
        use crate::edf::edf_feasible;
        let cases = [
            (Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 1.5, 0.5, 2.5)),
            (Job::new(0, 2.0, 0.0, 3.0), Job::new(1, 1.0, 1.0, 2.0)),
            (Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)),
        ];
        let alpha = 2.0;
        for (a, b) in cases {
            let jobs = vec![a, b];
            let opt = yds(&jobs, alpha).energy;
            let mut best = f64::INFINITY;
            for sa in 1..=120 {
                for sb in 1..=120 {
                    let (sa, sb) = (sa as f64 * 0.05, sb as f64 * 0.05);
                    let p = vec![a.work / sa, b.work / sb];
                    if edf_feasible(&jobs, &p) {
                        let e = energy_of(a.work, sa, alpha) + energy_of(b.work, sb, alpha);
                        best = best.min(e);
                    }
                }
            }
            assert!(
                opt <= best + 1e-9,
                "grid search found energy {best} below YDS {opt}"
            );
        }
    }

    /// Draw `len`-many random jobs with the standard (work, release, span)
    /// envelope shared by the seeded properties below.
    fn random_jobs(rng: &mut StdRng, len: std::ops::Range<usize>) -> Vec<Job> {
        check::vec_of(rng, len, |r| {
            (
                r.gen_range(0.1f64..3.0),
                r.gen_range(0.0f64..8.0),
                r.gen_range(0.2f64..4.0),
            )
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, len))| Job::new(i as u32, w, r, r + len))
        .collect()
    }

    /// The fast kernel and the retained reference peel agree bit-for-bit:
    /// same peels, same speeds, same energy.
    #[test]
    fn fast_kernel_matches_reference_bitwise() {
        check::cases(60, 0xFA57, |rng| {
            let jobs = random_jobs(rng, 1..24);
            let alpha = rng.gen_range(1.4f64..3.0);
            let fast = yds(&jobs, alpha);
            let reference = yds_reference(&jobs, alpha);
            assert_eq!(fast.peels, reference.peels);
            assert_eq!(fast.energy.to_bits(), reference.energy.to_bits());
            for (s_fast, s_ref) in fast.speeds.iter().zip(&reference.speeds) {
                assert_eq!(s_fast.to_bits(), s_ref.to_bits());
            }
        });
    }

    /// Scale laws: multiplying works by c multiplies OPT by c^alpha;
    /// stretching time by c multiplies OPT by c^(1-alpha).
    #[test]
    fn yds_respects_scale_laws() {
        check::cases(40, 0x5CA1E, |rng| {
            let jobs = random_jobs(rng, 1..8);
            let alpha = rng.gen_range(1.4f64..3.0);
            let c = rng.gen_range(0.3f64..3.0);
            let base = yds(&jobs, alpha).energy;

            let scaled_w: Vec<Job> = jobs
                .iter()
                .map(|j| Job {
                    work: j.work * c,
                    ..*j
                })
                .collect();
            let ew = yds(&scaled_w, alpha).energy;
            assert!(
                (ew - base * c.powf(alpha)).abs() <= 1e-6 * ew.max(base),
                "work scale law: {ew} vs {}",
                base * c.powf(alpha)
            );

            let scaled_t: Vec<Job> = jobs
                .iter()
                .map(|j| Job {
                    release: j.release * c,
                    deadline: j.deadline * c,
                    ..*j
                })
                .collect();
            let et = yds(&scaled_t, alpha).energy;
            assert!(
                (et - base * c.powf(1.0 - alpha)).abs() <= 1e-6 * et.max(base),
                "time scale law: {et} vs {}",
                base * c.powf(1.0 - alpha)
            );
        });
    }

    /// The YDS speed profile is always EDF-feasible and the explicit
    /// schedule validates with matching energy.
    #[test]
    fn yds_schedule_always_validates() {
        check::cases(40, 0x5C_ED, |rng| {
            let jobs = random_jobs(rng, 1..10);
            let alpha = rng.gen_range(1.4f64..3.0);
            let (sol, schedule) = yds_schedule(&jobs, alpha, 0);
            let inst = Instance::new(jobs, 1, alpha).unwrap();
            let stats = schedule
                .validate(&inst, ValidationOptions::non_migratory())
                .unwrap();
            assert!((stats.energy - sol.energy).abs() <= 1e-6 * sol.energy.max(1e-12));
        });
    }

    /// Removing a job never increases optimal energy (monotonicity).
    #[test]
    fn yds_is_monotone_in_job_set() {
        check::cases(40, 0x3007, |rng| {
            let jobs = random_jobs(rng, 2..8);
            let full = yds(&jobs, 2.0).energy;
            let fewer = yds(&jobs[1..], 2.0).energy;
            assert!(fewer <= full + 1e-9 * full.max(1.0));
        });
    }
}
