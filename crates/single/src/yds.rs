//! YDS — the optimal single-processor algorithm (Yao, Demers, Shenker 1995).
//!
//! Repeatedly find the *critical interval*: the interval `I` maximizing the
//! intensity `g(I) = (Σ_{span_i ⊆ I} w_i) / |I|`. The jobs fully contained in
//! `I` run at speed `g(I)` (EDF-ordered inside `I`); they and the interval are
//! then removed — remaining jobs' windows are "squeezed" around the excised
//! interval — and the process repeats. The result is the unique optimal speed
//! profile; its energy is `Σ w_i · s_i^(α-1)`.
//!
//! Complexity: each peel scans `O(n²)` candidate intervals with an `O(n)`
//! sweep per left endpoint, i.e. `O(n²)` per peel and `O(n³)` worst case —
//! the classic bound for direct YDS implementations.

use crate::edf::edf_schedule;
use ssp_model::numeric::energy_of;
use ssp_model::{Job, Schedule, SpeedAssignment};

/// Result of running [`yds`]: optimal constant speed per job (aligned with
/// the input slice) and the optimal energy.
#[derive(Debug, Clone, PartialEq)]
pub struct YdsSolution {
    /// Optimal speed of each input job.
    pub speeds: Vec<f64>,
    /// Optimal total energy `Σ w_i · s_i^(α-1)`.
    pub energy: f64,
    /// Critical intervals in peel order: `(start, end, intensity)` in the
    /// *original* (un-squeezed) time coordinates of the first peel only for
    /// the head element; later entries are in squeezed coordinates and are
    /// exposed for diagnostics/tests of the peeling process.
    pub peels: Vec<(f64, f64, f64)>,
}

impl YdsSolution {
    /// Speeds as a [`SpeedAssignment`] (same indexing as the input slice).
    pub fn assignment(&self) -> SpeedAssignment {
        SpeedAssignment::new(self.speeds.clone())
    }
}

/// Working copy of a job during peeling.
#[derive(Debug, Clone, Copy)]
struct Active {
    orig: usize,
    work: f64,
    release: f64,
    deadline: f64,
}

/// Compute the optimal speed per job on a single processor.
///
/// ```
/// use ssp_model::Job;
/// use ssp_single::yds::yds;
///
/// // A tight job nested in a loose one: the tight one sets the peak.
/// let jobs = vec![Job::new(0, 2.0, 0.0, 4.0), Job::new(1, 2.0, 1.0, 2.0)];
/// let sol = yds(&jobs, 2.0);
/// assert!((sol.speeds[1] - 2.0).abs() < 1e-9);      // critical interval [1,2]
/// assert!((sol.speeds[0] - 2.0 / 3.0).abs() < 1e-9); // squeezed remainder
/// ```
pub fn yds(jobs: &[Job], alpha: f64) -> YdsSolution {
    assert!(alpha > 1.0, "alpha must exceed 1");
    let mut speeds = vec![0.0f64; jobs.len()];
    let mut peels = Vec::new();
    let mut active: Vec<Active> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| Active {
            orig: i,
            work: j.work,
            release: j.release,
            deadline: j.deadline,
        })
        .collect();

    while !active.is_empty() {
        let (a, b, g) = critical_interval(&active);
        peels.push((a, b, g));
        debug_assert!(g.is_finite() && g > 0.0);
        // Fix speeds of contained jobs; keep the rest.
        let mut rest = Vec::with_capacity(active.len());
        for job in active.into_iter() {
            if a <= job.release && job.deadline <= b {
                speeds[job.orig] = g;
            } else {
                rest.push(job);
            }
        }
        // Squeeze the excised interval out of the timeline.
        let shift = b - a;
        for job in &mut rest {
            job.release = squeeze(job.release, a, b, shift);
            job.deadline = squeeze(job.deadline, a, b, shift);
            debug_assert!(job.deadline > job.release);
        }
        active = rest;
    }

    let energy = jobs
        .iter()
        .zip(&speeds)
        .map(|(j, &s)| energy_of(j.work, s, alpha))
        .sum();
    YdsSolution {
        speeds,
        energy,
        peels,
    }
}

/// Map a time coordinate after excising `[a, b]`.
fn squeeze(x: f64, a: f64, b: f64, shift: f64) -> f64 {
    if x <= a {
        x
    } else if x >= b {
        x - shift
    } else {
        a
    }
}

/// The maximum-intensity interval of the active set. Candidate intervals run
/// from a release date to a deadline. Ties break toward the earliest start,
/// then the longest interval, making peeling deterministic.
fn critical_interval(active: &[Active]) -> (f64, f64, f64) {
    debug_assert!(!active.is_empty());
    // For each candidate left endpoint `a` (a release), sweep jobs in
    // deadline order accumulating the work of jobs with release >= a.
    let mut by_deadline: Vec<usize> = (0..active.len()).collect();
    by_deadline.sort_by(|&x, &y| active[x].deadline.total_cmp(&active[y].deadline));
    let mut starts: Vec<f64> = active.iter().map(|j| j.release).collect();
    starts.sort_by(f64::total_cmp);
    starts.dedup();

    // Deterministic argmax: iteration order is fixed (starts ascending,
    // deadlines ascending), strict `>` keeps the first maximizer — i.e. the
    // earliest start, then the earliest right endpoint achieving the maximum.
    let mut best = (0.0, 0.0, f64::NEG_INFINITY);
    for &a in &starts {
        let mut acc = 0.0;
        for &idx in &by_deadline {
            let j = &active[idx];
            // `release >= a` implies `deadline > a` since windows are nonempty.
            if j.release >= a {
                acc += j.work;
                let g = acc / (j.deadline - a);
                if g > best.2 {
                    best = (a, j.deadline, g);
                }
            }
        }
    }
    best
}

/// Full pipeline: optimal speeds via [`yds`], then an explicit EDF schedule
/// on machine `machine`. The schedule is guaranteed feasible by YDS theory;
/// this function panics if EDF rejects it (which would indicate a bug, not an
/// input condition).
pub fn yds_schedule(jobs: &[Job], alpha: f64, machine: usize) -> (YdsSolution, Schedule) {
    let sol = yds(jobs, alpha);
    let p: Vec<f64> = jobs
        .iter()
        .zip(&sol.speeds)
        .map(|(j, &s)| j.work / s)
        .collect();
    let schedule =
        edf_schedule(jobs, &p, machine).expect("YDS speeds are always EDF-feasible on one machine");
    (sol, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::Instance;
    use ssp_prng::{check, Rng, StdRng};

    #[test]
    fn empty_input() {
        let sol = yds(&[], 2.0);
        assert_eq!(sol.energy, 0.0);
        assert!(sol.speeds.is_empty());
    }

    #[test]
    fn single_job_runs_at_density() {
        let jobs = vec![Job::new(0, 3.0, 1.0, 4.0)];
        let sol = yds(&jobs, 2.0);
        assert!((sol.speeds[0] - 1.0).abs() < 1e-12);
        assert!((sol.energy - 3.0).abs() < 1e-12); // w * s^(a-1) = 3*1
    }

    #[test]
    fn two_disjoint_jobs_each_at_density() {
        let jobs = vec![Job::new(0, 2.0, 0.0, 1.0), Job::new(1, 1.0, 5.0, 7.0)];
        let sol = yds(&jobs, 3.0);
        assert!((sol.speeds[0] - 2.0).abs() < 1e-12);
        assert!((sol.speeds[1] - 0.5).abs() < 1e-12);
        assert!((sol.energy - (2.0 * 4.0 + 1.0 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn nested_job_raises_peak() {
        // Outer job [0,4] w=2; inner urgent job [1,2] w=2.
        // Critical interval is [1,2] at speed 2 (only the inner job fits in
        // [1,2]). After excision the outer job has window [0,3], speed 2/3.
        let jobs = vec![Job::new(0, 2.0, 0.0, 4.0), Job::new(1, 2.0, 1.0, 2.0)];
        let sol = yds(&jobs, 2.0);
        assert!((sol.speeds[1] - 2.0).abs() < 1e-12);
        assert!((sol.speeds[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(sol.peels.len(), 2);
        assert_eq!(sol.peels[0], (1.0, 2.0, 2.0));
    }

    #[test]
    fn identical_windows_share_one_speed() {
        let jobs: Vec<Job> = (0..4).map(|i| Job::new(i, 1.0, 0.0, 2.0)).collect();
        let sol = yds(&jobs, 2.0);
        for &s in &sol.speeds {
            assert!((s - 2.0).abs() < 1e-12); // total work 4 over length 2
        }
    }

    #[test]
    fn schedule_is_valid_and_energy_matches() {
        let jobs = vec![
            Job::new(0, 2.0, 0.0, 4.0),
            Job::new(1, 2.0, 1.0, 2.0),
            Job::new(2, 1.0, 3.0, 6.0),
            Job::new(3, 0.5, 0.0, 1.0),
        ];
        let alpha = 2.5;
        let (sol, schedule) = yds_schedule(&jobs, alpha, 0);
        let inst = Instance::new(jobs, 1, alpha).unwrap();
        let stats = schedule
            .validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
        assert!((stats.energy - sol.energy).abs() < 1e-6 * sol.energy);
    }

    #[test]
    fn speeds_never_below_density() {
        let jobs = vec![
            Job::new(0, 1.0, 0.0, 10.0),
            Job::new(1, 5.0, 2.0, 3.0),
            Job::new(2, 2.0, 2.5, 6.0),
        ];
        let sol = yds(&jobs, 2.0);
        for (j, &s) in jobs.iter().zip(&sol.speeds) {
            assert!(s >= j.density() - 1e-9, "{} below density", j.id);
        }
    }

    #[test]
    fn agreeable_chain_with_uniform_load_is_flat() {
        // Unit jobs, windows [i, i+1]: constant speed 1 everywhere.
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::new(i, 1.0, i as f64, i as f64 + 1.0))
            .collect();
        let sol = yds(&jobs, 2.0);
        for &s in &sol.speeds {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!((sol.energy - 5.0).abs() < 1e-12);
    }

    /// Brute-force check on 2-job instances: discretize both speeds and keep
    /// EDF-feasible combinations; YDS must not be beaten.
    #[test]
    fn two_job_grid_search_cannot_beat_yds() {
        use crate::edf::edf_feasible;
        let cases = [
            (Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 1.5, 0.5, 2.5)),
            (Job::new(0, 2.0, 0.0, 3.0), Job::new(1, 1.0, 1.0, 2.0)),
            (Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)),
        ];
        let alpha = 2.0;
        for (a, b) in cases {
            let jobs = vec![a, b];
            let opt = yds(&jobs, alpha).energy;
            let mut best = f64::INFINITY;
            for sa in 1..=120 {
                for sb in 1..=120 {
                    let (sa, sb) = (sa as f64 * 0.05, sb as f64 * 0.05);
                    let p = vec![a.work / sa, b.work / sb];
                    if edf_feasible(&jobs, &p) {
                        let e = energy_of(a.work, sa, alpha) + energy_of(b.work, sb, alpha);
                        best = best.min(e);
                    }
                }
            }
            assert!(
                opt <= best + 1e-9,
                "grid search found energy {best} below YDS {opt}"
            );
        }
    }

    /// Draw `len`-many random jobs with the standard (work, release, span)
    /// envelope shared by the seeded properties below.
    fn random_jobs(rng: &mut StdRng, len: std::ops::Range<usize>) -> Vec<Job> {
        check::vec_of(rng, len, |r| {
            (
                r.gen_range(0.1f64..3.0),
                r.gen_range(0.0f64..8.0),
                r.gen_range(0.2f64..4.0),
            )
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, len))| Job::new(i as u32, w, r, r + len))
        .collect()
    }

    /// Scale laws: multiplying works by c multiplies OPT by c^alpha;
    /// stretching time by c multiplies OPT by c^(1-alpha).
    #[test]
    fn yds_respects_scale_laws() {
        check::cases(40, 0x5CA1E, |rng| {
            let jobs = random_jobs(rng, 1..8);
            let alpha = rng.gen_range(1.4f64..3.0);
            let c = rng.gen_range(0.3f64..3.0);
            let base = yds(&jobs, alpha).energy;

            let scaled_w: Vec<Job> = jobs
                .iter()
                .map(|j| Job {
                    work: j.work * c,
                    ..*j
                })
                .collect();
            let ew = yds(&scaled_w, alpha).energy;
            assert!(
                (ew - base * c.powf(alpha)).abs() <= 1e-6 * ew.max(base),
                "work scale law: {ew} vs {}",
                base * c.powf(alpha)
            );

            let scaled_t: Vec<Job> = jobs
                .iter()
                .map(|j| Job {
                    release: j.release * c,
                    deadline: j.deadline * c,
                    ..*j
                })
                .collect();
            let et = yds(&scaled_t, alpha).energy;
            assert!(
                (et - base * c.powf(1.0 - alpha)).abs() <= 1e-6 * et.max(base),
                "time scale law: {et} vs {}",
                base * c.powf(1.0 - alpha)
            );
        });
    }

    /// The YDS speed profile is always EDF-feasible and the explicit
    /// schedule validates with matching energy.
    #[test]
    fn yds_schedule_always_validates() {
        check::cases(40, 0x5C_ED, |rng| {
            let jobs = random_jobs(rng, 1..10);
            let alpha = rng.gen_range(1.4f64..3.0);
            let (sol, schedule) = yds_schedule(&jobs, alpha, 0);
            let inst = Instance::new(jobs, 1, alpha).unwrap();
            let stats = schedule
                .validate(&inst, ValidationOptions::non_migratory())
                .unwrap();
            assert!((stats.energy - sol.energy).abs() <= 1e-6 * sol.energy.max(1e-12));
        });
    }

    /// Removing a job never increases optimal energy (monotonicity).
    #[test]
    fn yds_is_monotone_in_job_set() {
        check::cases(40, 0x3007, |rng| {
            let jobs = random_jobs(rng, 2..8);
            let full = yds(&jobs, 2.0).energy;
            let fewer = yds(&jobs[1..], 2.0).energy;
            assert!(fewer <= full + 1e-9 * full.max(1.0));
        });
    }
}
