//! Preemptive earliest-deadline-first execution with fixed processing times.
//!
//! Given jobs and per-job processing times `p_i` (already derived from chosen
//! speeds, `p_i = w_i / s_i`), EDF is the canonical optimal single-machine
//! policy: if *any* preemptive schedule meets all deadlines, EDF does. It is
//! used to materialize explicit [`Schedule`]s once an algorithm has fixed
//! speeds, and as a feasibility test inside the non-migratory assignment
//! heuristics.

use ssp_model::numeric::Tol;
use ssp_model::{Job, Schedule};

/// Event-driven preemptive EDF. Returns the explicit schedule on machine
/// `machine` (each job's segments run at its implied constant speed
/// `w_i / p_i`), or `None` if some deadline is missed.
///
/// `p` must be positive and aligned with `jobs`.
pub fn edf_schedule(jobs: &[Job], p: &[f64], machine: usize) -> Option<Schedule> {
    assert_eq!(jobs.len(), p.len(), "jobs/processing-times length mismatch");
    let tol = Tol::default();
    let mut schedule = Schedule::new(machine + 1);
    if jobs.is_empty() {
        return Some(schedule);
    }
    for (j, &pt) in jobs.iter().zip(p) {
        assert!(
            pt > 0.0 && pt.is_finite(),
            "processing time of {} must be > 0",
            j.id
        );
        // Quick reject: job longer than its own window (beyond tolerance).
        if pt > j.span() + tol.margin(j.span()) {
            return None;
        }
    }

    // Jobs sorted by release; `next` walks this order as time advances.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| jobs[a].release.total_cmp(&jobs[b].release));

    // Ready set: (deadline, index) min-heap via BinaryHeap of Reverse.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Key(f64, usize);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let mut ready: BinaryHeap<Reverse<Key>> = BinaryHeap::new();

    let mut remaining: Vec<f64> = p.to_vec();
    let speed: Vec<f64> = jobs.iter().zip(p).map(|(j, &pt)| j.work / pt).collect();
    let mut next = 0usize;
    let mut now = jobs[order[0]].release;

    loop {
        // Admit everything released by `now`.
        while next < order.len() && jobs[order[next]].release <= now + tol.margin(now.abs()) {
            let i = order[next];
            ready.push(Reverse(Key(jobs[i].deadline, i)));
            next += 1;
        }
        match ready.peek() {
            None => {
                if next >= order.len() {
                    break; // all done
                }
                now = jobs[order[next]].release; // idle gap
            }
            Some(&Reverse(Key(_, i))) => {
                // Run job i until completion or next release.
                let finish = now + remaining[i];
                let horizon = if next < order.len() {
                    jobs[order[next]].release
                } else {
                    f64::INFINITY
                };
                let until = finish.min(horizon);
                if until > now {
                    schedule.run(jobs[i].id, machine, now, until, speed[i]);
                    remaining[i] -= until - now;
                }
                now = until;
                if remaining[i] <= tol.margin(p[i]) {
                    // Completed: check the deadline.
                    if now > jobs[i].deadline + tol.margin(jobs[i].deadline.abs().max(1.0)) {
                        return None;
                    }
                    ready.pop();
                    remaining[i] = 0.0;
                } else if now > jobs[i].deadline + tol.margin(jobs[i].deadline.abs().max(1.0)) {
                    return None; // still unfinished past its deadline
                }
            }
        }
    }
    Some(schedule)
}

/// Feasibility-only wrapper: can the jobs with processing times `p` be
/// EDF-scheduled on one machine?
pub fn edf_feasible(jobs: &[Job], p: &[f64]) -> bool {
    edf_schedule(jobs, p, 0).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::{Instance, JobId};

    #[test]
    fn empty_input_is_trivially_feasible() {
        assert!(edf_feasible(&[], &[]));
    }

    #[test]
    fn single_job_exact_fit() {
        let jobs = vec![Job::new(0, 2.0, 1.0, 3.0)];
        let s = edf_schedule(&jobs, &[2.0], 0).unwrap();
        assert_eq!(s.len(), 1);
        let seg = s.segments()[0];
        assert_eq!((seg.start, seg.end), (1.0, 3.0));
        assert!((seg.speed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preempts_for_tighter_deadline() {
        // Long job [0,10] p=6; short urgent job released at 2, deadline 4, p=2.
        let jobs = vec![Job::new(0, 6.0, 0.0, 10.0), Job::new(1, 2.0, 2.0, 4.0)];
        let s = edf_schedule(&jobs, &[6.0, 2.0], 0).unwrap();
        // Job 1 must occupy [2,4].
        let j1: Vec<_> = s.segments().iter().filter(|g| g.job == JobId(1)).collect();
        assert_eq!(j1.len(), 1);
        assert_eq!((j1[0].start, j1[0].end), (2.0, 4.0));
        // Job 0 split around it.
        let j0: Vec<_> = s.segments().iter().filter(|g| g.job == JobId(0)).collect();
        assert_eq!(j0.len(), 2);
        // Validate against the instance (speeds 1.0 each).
        let inst = Instance::new(jobs, 1, 2.0).unwrap();
        s.validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
    }

    #[test]
    fn infeasible_when_overloaded() {
        // Two unit-time jobs, same unit window.
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)];
        assert!(!edf_feasible(&jobs, &[1.0, 1.0]));
        // Feasible when each takes half the time.
        assert!(edf_feasible(&jobs, &[0.5, 0.5]));
    }

    #[test]
    fn infeasible_when_single_job_exceeds_window() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0)];
        assert!(!edf_feasible(&jobs, &[1.5]));
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 5.0, 6.0)];
        let s = edf_schedule(&jobs, &[1.0, 1.0], 0).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.segments()[0].end, 1.0);
        assert_eq!(s.segments()[1].start, 5.0);
    }

    #[test]
    fn ties_on_deadline_are_deterministic() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 1.0, 0.0, 2.0)];
        let s = edf_schedule(&jobs, &[1.0, 1.0], 0).unwrap();
        // Lower index wins the tie.
        assert_eq!(s.segments()[0].job, JobId(0));
        assert_eq!(s.segments()[1].job, JobId(1));
    }

    #[test]
    fn respects_requested_machine_index() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 2.0)];
        let s = edf_schedule(&jobs, &[1.0], 3).unwrap();
        assert_eq!(s.segments()[0].machine, 3);
    }

    #[test]
    fn classic_feasibility_boundary() {
        // Three unit jobs with staggered unit windows on [0,3]: feasible at
        // p=1 each, infeasible if any p grows.
        let jobs = vec![
            Job::new(0, 1.0, 0.0, 1.0),
            Job::new(1, 1.0, 1.0, 2.0),
            Job::new(2, 1.0, 2.0, 3.0),
        ];
        assert!(edf_feasible(&jobs, &[1.0, 1.0, 1.0]));
        assert!(!edf_feasible(&jobs, &[1.0, 1.1, 1.0]));
    }
}
