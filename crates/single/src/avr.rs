//! AVR — the Average Rate online heuristic (Yao, Demers, Shenker 1995).
//!
//! Every job is processed at exactly its density `den_i = w_i/(d_i - r_i)`
//! spread uniformly over its span, so the processor speed at time `t` is
//! `s(t) = Σ_{alive at t} den_i`. AVR is online (it needs only the jobs
//! released so far) and `α^α · 2^(α-1)`-competitive against YDS.
//!
//! On one machine the profile is realized by time-multiplexing: inside each
//! elementary interval every alive job receives a slice of length
//! `den_i/s · |I|` at speed `s`.

use ssp_model::numeric::pow_alpha;
use ssp_model::{IntervalSet, Job, Schedule};

/// Energy of the AVR profile: `Σ_intervals |I| · (Σ_alive den_i)^α`.
pub fn avr_energy(jobs: &[Job], alpha: f64) -> f64 {
    let ivals = IntervalSet::from_jobs(jobs);
    let dens: Vec<f64> = jobs.iter().map(Job::density).collect();
    (0..ivals.len())
        .map(|j| {
            let s: f64 = ivals.alive(j).iter().map(|&i| dens[i]).sum();
            ivals.length(j) * pow_alpha(s, alpha)
        })
        .sum()
}

/// Materialize the AVR schedule on machine `machine` by slicing each
/// elementary interval among the alive jobs proportionally to density.
pub fn avr_schedule(jobs: &[Job], machine: usize) -> Schedule {
    let ivals = IntervalSet::from_jobs(jobs);
    let dens: Vec<f64> = jobs.iter().map(Job::density).collect();
    let mut schedule = Schedule::new(machine + 1);
    for j in 0..ivals.len() {
        let alive = ivals.alive(j);
        if alive.is_empty() {
            continue;
        }
        let speed: f64 = alive.iter().map(|&i| dens[i]).sum();
        let (start, _) = ivals.bounds(j);
        let len = ivals.length(j);
        let mut cursor = start;
        for &i in alive {
            let slice = len * dens[i] / speed;
            schedule.run(jobs[i].id, machine, cursor, cursor + slice, speed);
            cursor += slice;
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yds::yds;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::Instance;

    #[test]
    fn single_job_avr_equals_yds() {
        // One job: AVR runs it at density — exactly optimal.
        let jobs = vec![Job::new(0, 2.0, 0.0, 4.0)];
        assert!((avr_energy(&jobs, 2.0) - yds(&jobs, 2.0).energy).abs() < 1e-12);
    }

    #[test]
    fn disjoint_jobs_avr_is_optimal() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 2.0, 2.0, 4.0)];
        assert!((avr_energy(&jobs, 3.0) - yds(&jobs, 3.0).energy).abs() < 1e-12);
    }

    #[test]
    fn overlap_makes_avr_suboptimal() {
        // Two identical jobs [0,2], w=1 each. AVR: speed 1 on [0,2],
        // E = 2 * 1^2 = 2 — here actually optimal too (YDS gives the same).
        // Use staggered windows instead where AVR wastes energy:
        // job0 [0,2] w=2, job1 [1,3] w=2 => AVR speed 1,2,1 on unit pieces:
        // E(alpha=2) = 1 + 4 + 1 = 6. OPT is speed 4/3 everywhere: E = 16/3.
        let jobs = vec![Job::new(0, 2.0, 0.0, 2.0), Job::new(1, 2.0, 1.0, 3.0)];
        let e_avr = avr_energy(&jobs, 2.0);
        assert!((e_avr - 6.0).abs() < 1e-12);
        let e_opt = yds(&jobs, 2.0).energy;
        assert!((e_opt - 16.0 / 3.0).abs() < 1e-9);
        assert!(e_avr > e_opt);
    }

    #[test]
    fn schedule_matches_profile_energy_and_validates() {
        let jobs = vec![
            Job::new(0, 2.0, 0.0, 2.0),
            Job::new(1, 2.0, 1.0, 3.0),
            Job::new(2, 0.5, 0.5, 2.5),
        ];
        let alpha = 2.2;
        let s = avr_schedule(&jobs, 0);
        let inst = Instance::new(jobs, 1, alpha).unwrap();
        let stats = s
            .validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
        assert!((stats.energy - avr_energy(inst.jobs(), alpha)).abs() < 1e-9);
    }

    #[test]
    fn empty_jobs() {
        assert_eq!(avr_energy(&[], 2.0), 0.0);
        assert!(avr_schedule(&[], 0).is_empty());
    }
}
