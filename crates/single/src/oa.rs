//! OA — Optimal Available (Yao, Demers, Shenker 1995).
//!
//! At every scheduling event, OA computes the *optimal* schedule for the
//! currently available (released, unfinished) work assuming nothing else
//! arrives, and follows it until the next event. For work available at time
//! `τ` (all of it released), the optimal plan is determined by prefix
//! intensities: sort remaining jobs by deadline; the current speed is
//! `max_k (Σ_{i<=k} rem_i) / (d_k − τ)` and the job served is the earliest
//! deadline one. Events are releases and completions. OA is
//! `α^α`-competitive.

use ssp_model::numeric::Tol;
use ssp_model::{Job, Schedule};

/// Simulate OA and return the explicit schedule on machine `machine`.
///
/// OA never misses deadlines (its plan is feasible at every instant and
/// replanning only ever adds work on release events, which the new plan
/// absorbs); a deadline miss therefore indicates a bug and panics.
pub fn oa_schedule(jobs: &[Job], alpha: f64, machine: usize) -> Schedule {
    let _ = alpha; // the OA *policy* is alpha-independent; kept for symmetry
    let tol = Tol::default();
    let mut schedule = Schedule::new(machine + 1);
    if jobs.is_empty() {
        return schedule;
    }

    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| jobs[a].release.total_cmp(&jobs[b].release));
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut done: Vec<bool> = vec![false; jobs.len()];
    let mut available: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut now = jobs[order[0]].release;

    loop {
        while next < order.len() && jobs[order[next]].release <= now + tol.margin(now.abs()) {
            available.push(order[next]);
            next += 1;
        }
        available.retain(|&i| !done[i]);
        if available.is_empty() {
            if next >= order.len() {
                break;
            }
            now = jobs[order[next]].release;
            continue;
        }
        // Prefix-intensity plan over the available set.
        available.sort_by(|&a, &b| jobs[a].deadline.total_cmp(&jobs[b].deadline));
        let mut acc = 0.0;
        let mut speed = 0.0;
        for &i in &available {
            acc += remaining[i];
            let g = acc / (jobs[i].deadline - now);
            if g > speed {
                speed = g;
            }
        }
        debug_assert!(speed > 0.0, "available nonempty ⇒ positive OA speed");
        let current = available[0]; // earliest deadline
                                    // Run until completion or the next release.
        let completion = now + remaining[current] / speed;
        let horizon = if next < order.len() {
            jobs[order[next]].release
        } else {
            f64::INFINITY
        };
        let until = completion.min(horizon);
        if until > now {
            schedule.run(jobs[current].id, machine, now, until, speed);
            remaining[current] -= speed * (until - now);
        }
        now = until;
        if remaining[current] <= tol.margin(jobs[current].work) {
            assert!(
                now <= jobs[current].deadline + tol.margin(jobs[current].deadline.abs().max(1.0)),
                "OA missed a deadline — this is a bug"
            );
            done[current] = true;
            remaining[current] = 0.0;
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yds::yds;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::Instance;

    #[test]
    fn single_job_oa_is_optimal() {
        let jobs = vec![Job::new(0, 2.0, 1.0, 3.0)];
        let s = oa_schedule(&jobs, 2.0, 0);
        assert!((s.energy(2.0) - yds(&jobs, 2.0).energy).abs() < 1e-12);
        // Runs exactly at density over the whole window.
        assert_eq!(s.len(), 1);
        assert!((s.segments()[0].speed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oa_common_release_is_optimal() {
        // All jobs available at once: OA's plan *is* the optimum and no new
        // releases ever disturb it.
        let jobs = vec![
            Job::new(0, 1.0, 0.0, 1.0),
            Job::new(1, 1.0, 0.0, 2.0),
            Job::new(2, 1.0, 0.0, 4.0),
        ];
        let alpha = 2.0;
        let e_oa = oa_schedule(&jobs, alpha, 0).energy(alpha);
        let e_opt = yds(&jobs, alpha).energy;
        assert!((e_oa - e_opt).abs() < 1e-9, "{e_oa} vs {e_opt}");
    }

    #[test]
    fn surprise_release_makes_oa_suboptimal() {
        // Job 0 [0,2] w=1: OA starts at speed 0.5. At t=1 job 1 [1,2] w=1
        // arrives and OA must sprint; clairvoyant OPT runs faster earlier.
        let jobs = vec![Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 1.0, 1.0, 2.0)];
        let alpha = 2.0;
        let e_oa = oa_schedule(&jobs, alpha, 0).energy(alpha);
        let e_opt = yds(&jobs, alpha).energy;
        assert!(e_oa > e_opt + 1e-9, "OA {e_oa} should exceed OPT {e_opt}");
        assert!(
            e_oa <= alpha.powf(alpha) * e_opt + 1e-9,
            "competitive bound violated"
        );
    }

    #[test]
    fn schedule_validates_and_completes_all_work() {
        let jobs = vec![
            Job::new(0, 1.0, 0.0, 3.0),
            Job::new(1, 2.0, 0.5, 2.0),
            Job::new(2, 0.7, 1.0, 4.0),
            Job::new(3, 1.2, 2.5, 5.0),
        ];
        let alpha = 2.7;
        let s = oa_schedule(&jobs, alpha, 0);
        let inst = Instance::new(jobs, 1, alpha).unwrap();
        s.validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
    }

    #[test]
    fn gap_between_batches_idles() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 10.0, 11.0)];
        let s = oa_schedule(&jobs, 2.0, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.segments()[0].end, 1.0);
        assert_eq!(s.segments()[1].start, 10.0);
    }

    #[test]
    fn empty_input() {
        assert!(oa_schedule(&[], 2.0, 0).is_empty());
    }
}
