//! Flow-time objectives for unit-work jobs on one processor — the
//! multicriteria companion problem (Pruhs–Uthaisombut–Woeginger: minimize
//! total flow time under an energy budget; Albers–Fujiwara: minimize
//! flow time *plus* energy).
//!
//! ## Structure of the optimum
//!
//! Unit jobs are processed FIFO with no unnecessary idling. Lagrangian
//! relaxation with multiplier `λ` on energy gives, for a job that delays
//! `k` jobs (itself plus the later jobs in its *busy chain*), the optimal
//! speed
//!
//! ```text
//!   s(k) = (k / (λ(α−1)))^(1/α)  =  c · k^(1/α),   c = (λ(α−1))^(−1/α)
//! ```
//!
//! so earlier jobs of a long busy *chain* run faster (they hold more jobs
//! up). Two further KKT facts pin the global structure: every chain starts
//! exactly at its first job's release (a chain that starts later would have
//! merged with its predecessor), and a chain followed back-to-back by
//! another is **pinned** — sped up uniformly (`scale = H(count)/gap`) to end
//! exactly at the next chain's start, used only when the unconstrained chain
//! would overrun. The chain *partition* therefore determines the entire
//! solution, and an `O(n³)` dynamic program over partitions (rejecting
//! candidates whose interior jobs would start before their releases) is
//! exact.
//!
//! * [`flow_plus_energy`] — minimize `Σ flow + λ·energy` (one DP).
//! * [`min_flow_time_budget`] — minimize total flow under `energy ≤ E`
//!   (outer bisection on `λ`; energy is monotone decreasing in `λ`).
//!
//! Correctness evidence: brute-force grid search over per-job speeds on
//! small instances (tests below) and the Pareto-shape experiment EXP-13.

use ssp_model::numeric::bisect_threshold;
use ssp_model::{Job, JobId, Schedule};

/// Solution of a flow-time optimization.
#[derive(Debug, Clone)]
pub struct FlowtimeSolution {
    /// Release dates, sorted (the solution's job order).
    pub releases: Vec<f64>,
    /// Optimal speed per job (same order).
    pub speeds: Vec<f64>,
    /// Completion time per job.
    pub completions: Vec<f64>,
    /// Total flow time `Σ (C_i − r_i)`.
    pub total_flow: f64,
    /// Total energy `Σ s_i^(α−1)` (unit works).
    pub energy: f64,
    /// The Lagrange multiplier realizing this point.
    pub lambda: f64,
}

impl FlowtimeSolution {
    /// Materialize the schedule on machine `machine` (unit-work jobs with
    /// ids `0..n` in release order; deadlines set to completions so the
    /// schedule can be validated against a synthetic instance).
    pub fn schedule(&self, machine: usize) -> Schedule {
        let mut s = Schedule::new(machine + 1);
        for i in 0..self.releases.len() {
            let start = self.completions[i] - 1.0 / self.speeds[i];
            s.run(
                JobId(i as u32),
                machine,
                start,
                self.completions[i],
                self.speeds[i],
            );
        }
        s
    }

    /// The synthetic instance this solution schedules (deadlines =
    /// completions, slightly padded), for validator-based checks.
    pub fn as_instance(&self, machine_count: usize, alpha: f64) -> ssp_model::Instance {
        let jobs: Vec<Job> = self
            .releases
            .iter()
            .zip(&self.completions)
            .enumerate()
            .map(|(i, (&r, &c))| Job::new(i as u32, 1.0, r, c * (1.0 + 1e-12) + 1e-12))
            .collect();
        ssp_model::Instance::new(jobs, machine_count, alpha).expect("valid synthetic instance")
    }
}

/// Evaluated candidate chain `[a, b)` starting at `rel[a]` with its next
/// chain starting at `next_start` (`None` for the last chain).
struct ChainEval {
    /// `Σ w_i·flow_i + λ·energy` contributed by the chain's jobs.
    cost: f64,
    /// The boundary multiplier (0 for unpinned chains).
    mu: f64,
}

/// Duration of chain `[a, b)` under boundary multiplier `mu`:
/// `Σ_i (λ(α−1)/(W_i + mu))^(1/α)` where `W_i` is the weight of jobs the
/// i-th one delays (suffix weight within the chain).
fn chain_duration(suffix_w: &[f64], lambda: f64, alpha: f64, mu: f64) -> f64 {
    suffix_w
        .iter()
        .map(|&wk| (lambda * (alpha - 1.0) / (wk + mu)).powf(1.0 / alpha))
        .sum()
}

/// Evaluate one chain or reject it (interior validity / overlap).
///
/// KKT structure: job `i` of the chain runs at
/// `s_i = ((W_i + μ)/(λ(α−1)))^(1/α)` where `W_i` is the suffix weight and
/// `μ ≥ 0` is the boundary multiplier — zero when the chain ends strictly
/// before the next release, otherwise the unique value making the chain end
/// exactly at it (found by bisection; duration is strictly decreasing in μ).
fn eval_chain(
    rel: &[f64],
    weights: &[f64],
    a: usize,
    b: usize,
    next_start: Option<f64>,
    alpha: f64,
    lambda: f64,
) -> Option<ChainEval> {
    let count = b - a;
    let start = rel[a];
    // Suffix weights within the chain.
    let mut suffix_w = vec![0.0f64; count];
    let mut acc = 0.0;
    for offset in (0..count).rev() {
        acc += weights[a + offset];
        suffix_w[offset] = acc;
    }
    let unconstrained = chain_duration(&suffix_w, lambda, alpha, 0.0);
    let mu = match next_start {
        None => 0.0,
        Some(ns) => {
            let gap = ns - start;
            if gap <= 0.0 {
                return None; // no room at all
            }
            if unconstrained <= gap {
                0.0 // ends before the next release: constraint slack
            } else {
                // Bisect mu: duration decreases monotonically.
                let (mut lo, mut hi) = (0.0f64, 1.0f64);
                let mut guard = 0;
                while chain_duration(&suffix_w, lambda, alpha, hi) > gap {
                    hi *= 4.0;
                    guard += 1;
                    if guard > 200 {
                        return None; // gap smaller than representable
                    }
                }
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if chain_duration(&suffix_w, lambda, alpha, mid) > gap {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                    if hi - lo <= 1e-13 * hi.max(1.0) {
                        break;
                    }
                }
                hi
            }
        }
    };
    // Walk the chain: interior starts must not precede releases.
    let mut t = start;
    let mut cost = 0.0;
    // Index loop on purpose: `offset` addresses both `suffix_w` and jobs.
    #[allow(clippy::needless_range_loop)]
    for offset in 0..count {
        let i = a + offset;
        if t < rel[i] - 1e-12 * rel[i].abs().max(1.0) {
            return None; // job i would start before its release: split needed
        }
        let s = ((suffix_w[offset] + mu) / (lambda * (alpha - 1.0))).powf(1.0 / alpha);
        t += 1.0 / s;
        cost += weights[i] * (t - rel[i]) + lambda * s.powf(alpha - 1.0);
    }
    Some(ChainEval { cost, mu })
}

/// Minimize `Σ flow + λ · Σ energy` for unit jobs released at `releases` on
/// one processor. `λ > 0`; larger `λ` trades flow time for energy.
///
/// ```
/// use ssp_single::flowtime::flow_plus_energy;
///
/// // A lone job at alpha=2, lambda=1 runs at speed 1 (balance point of
/// // 1/s + s): flow 1, energy 1.
/// let sol = flow_plus_energy(&[0.0], 2.0, 1.0);
/// assert!((sol.speeds[0] - 1.0).abs() < 1e-9);
/// assert!((sol.total_flow - 1.0).abs() < 1e-9);
/// ```
pub fn flow_plus_energy(releases: &[f64], alpha: f64, lambda: f64) -> FlowtimeSolution {
    weighted_flow_plus_energy(releases, &vec![1.0; releases.len()], alpha, lambda)
}

/// Weighted variant: minimize `Σ w_i·flow_i + λ·energy` (unit works; the
/// weight is the job's importance, e.g. a request's SLO class).
///
/// Exact algorithm: by the KKT structure every *chain* (maximal busy run)
/// starts exactly at its first job's release; within a chain job `i` runs at
/// `((W_i + μ)/(λ(α−1)))^(1/α)` with `W_i` the suffix weight and `μ` the
/// chain's boundary multiplier (0 unless the chain abuts the next one). The
/// chain *partition* therefore determines the whole solution, and a
/// quadratic DP over partitions (with an `O(n)` walk per candidate chain to
/// check interior validity) finds the best one.
///
/// Jobs are processed in release order; `weights[i]` refers to the job with
/// the i-th **sorted** release. (Weighted FIFO is not always the optimal
/// *order* for weighted flow; this solves the optimal speeds for the given
/// release order, exact for uniform weights and the standard policy
/// otherwise.)
pub fn weighted_flow_plus_energy(
    releases: &[f64],
    weights: &[f64],
    alpha: f64,
    lambda: f64,
) -> FlowtimeSolution {
    assert!(alpha > 1.0, "alpha must exceed 1");
    assert!(
        lambda > 0.0 && lambda.is_finite(),
        "lambda must be positive"
    );
    assert_eq!(releases.len(), weights.len(), "weights length mismatch");
    assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
    let mut order: Vec<usize> = (0..releases.len()).collect();
    order.sort_by(|&x, &y| releases[x].total_cmp(&releases[y]));
    let rel: Vec<f64> = order.iter().map(|&i| releases[i]).collect();
    let weights: Vec<f64> = order.iter().map(|&i| weights[i]).collect();
    let n = rel.len();

    // best[i] = optimal cost of scheduling jobs i..n when job i opens a
    // chain; choice[i] = end of that chain.
    let mut best = vec![f64::INFINITY; n + 1];
    let mut choice = vec![0usize; n + 1];
    best[n] = 0.0;
    for a in (0..n).rev() {
        for b in (a + 1)..=n {
            let next_start = if b < n { Some(rel[b]) } else { None };
            if let Some(eval) = eval_chain(&rel, &weights, a, b, next_start, alpha, lambda) {
                let total = eval.cost + best[b];
                if total < best[a] {
                    best[a] = total;
                    choice[a] = b;
                }
            }
        }
        assert!(
            best[a].is_finite(),
            "no valid chain decomposition from job {a} — structure theorem violated"
        );
    }

    // Reconstruct.
    let mut speeds = vec![0.0f64; n];
    let mut completions = vec![0.0f64; n];
    let mut a = 0usize;
    while a < n {
        let b = choice[a];
        let next_start = if b < n { Some(rel[b]) } else { None };
        let eval = eval_chain(&rel, &weights, a, b, next_start, alpha, lambda)
            .expect("chosen chain re-evaluates");
        let count = b - a;
        let mut suffix_w = vec![0.0f64; count];
        let mut acc = 0.0;
        for offset in (0..count).rev() {
            acc += weights[a + offset];
            suffix_w[offset] = acc;
        }
        let mut t = rel[a];
        for offset in 0..count {
            let s = ((suffix_w[offset] + eval.mu) / (lambda * (alpha - 1.0))).powf(1.0 / alpha);
            t += 1.0 / s;
            speeds[a + offset] = s;
            completions[a + offset] = t;
        }
        a = b;
    }

    // Validity safety net: no job may start before its release. The margin
    // scales with the segment duration too — `completion - 1/s` cancels
    // catastrophically when speeds are tiny (extreme-lambda probes during
    // the budget bisection).
    for i in 0..n {
        let start = completions[i] - 1.0 / speeds[i];
        let scale = rel[i].abs().max(1.0 / speeds[i]).max(1.0);
        debug_assert!(
            start >= rel[i] - 1e-9 * scale,
            "job {i} starts at {start} before its release {}",
            rel[i]
        );
    }
    let total_flow = completions
        .iter()
        .zip(&rel)
        .zip(&weights)
        .map(|((c, r), w)| w * (c - r))
        .sum();
    let energy = speeds.iter().map(|s| s.powf(alpha - 1.0)).sum();
    FlowtimeSolution {
        releases: rel,
        speeds,
        completions,
        total_flow,
        energy,
        lambda,
    }
}

/// Minimize total flow time subject to `energy ≤ budget` (unit jobs, one
/// processor): bisect the multiplier until the budget is met.
///
/// Caveat: `energy(λ)` jumps at the finitely many multipliers where the
/// optimal chain partition changes, so the returned solution is the best
/// *Lagrangian-extreme* point within budget — it may underspend by the size
/// of one jump (observed ≤ a few percent). Between extremes the true
/// optimum interpolates boundary multipliers, a refinement not implemented;
/// the reported flow is a valid upper bound and the solution is feasible.
pub fn min_flow_time_budget(releases: &[f64], alpha: f64, budget: f64) -> FlowtimeSolution {
    assert!(budget > 0.0 && budget.is_finite());
    if releases.is_empty() {
        return FlowtimeSolution {
            releases: vec![],
            speeds: vec![],
            completions: vec![],
            total_flow: 0.0,
            energy: 0.0,
            lambda: 1.0,
        };
    }
    // energy(λ) is decreasing; find λ with energy(λ) <= budget, then bisect
    // down to the threshold. Search in log-space for robustness.
    let energy_at = |ln_lambda: f64| flow_plus_energy(releases, alpha, ln_lambda.exp()).energy;
    let (mut lo, mut hi) = (-40.0f64, 40.0f64);
    let mut guard = 0;
    while energy_at(hi) > budget {
        hi += 20.0;
        guard += 1;
        assert!(guard < 10, "budget unreachable even at enormous lambda");
    }
    while energy_at(lo) < budget && lo > -400.0 {
        lo -= 20.0;
    }
    // Monotone: feasible(λ) := energy(λ) <= budget is an upward-closed set
    // in λ; bisect for its lower edge.
    let (_, ln_lambda) = bisect_threshold(lo, hi, 1e-13, |l| energy_at(l) <= budget);
    let sol = flow_plus_energy(releases, alpha, ln_lambda.exp());
    debug_assert!(sol.energy <= budget * (1.0 + 1e-6));
    sol
}

/// Total flow time of running every job at one fixed speed `s` (FIFO) — the
/// fixed-clock baseline used by EXP-13.
pub fn fixed_speed_flow(releases: &[f64], s: f64) -> f64 {
    assert!(s > 0.0);
    let mut rel: Vec<f64> = releases.to_vec();
    rel.sort_by(f64::total_cmp);
    let mut t = f64::NEG_INFINITY;
    let mut flow = 0.0;
    for &r in &rel {
        t = t.max(r) + 1.0 / s;
        flow += t - r;
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn single_job_closed_form() {
        // One job: minimize (1/s) + λ s^(α−1): s = (1/(λ(α−1)))^(1/α).
        let (alpha, lambda) = (3.0, 0.5);
        let sol = flow_plus_energy(&[2.0], alpha, lambda);
        let expect = (1.0 / (lambda * (alpha - 1.0))).powf(1.0 / alpha);
        assert!((sol.speeds[0] - expect).abs() < TOL);
        assert!((sol.total_flow - 1.0 / expect).abs() < TOL);
        assert!((sol.completions[0] - (2.0 + 1.0 / expect)).abs() < TOL);
    }

    #[test]
    fn common_release_speeds_follow_k_pow_inv_alpha() {
        // n jobs at r = 0: one busy period, s_i = c (n−i)^(1/α)... with
        // counts n, n−1, ..., 1.
        let (alpha, lambda, n) = (2.0, 1.0, 5usize);
        let sol = flow_plus_energy(&vec![0.0; n], alpha, lambda);
        let c = (lambda * (alpha - 1.0)).powf(-1.0 / alpha);
        for (i, &s) in sol.speeds.iter().enumerate() {
            let k = (n - i) as f64;
            assert!((s - c * k.powf(1.0 / alpha)).abs() < TOL, "job {i}");
        }
        // Completions strictly increasing.
        assert!(sol.completions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn far_apart_releases_stay_separate_periods() {
        let sol = flow_plus_energy(&[0.0, 100.0, 200.0], 2.0, 1.0);
        // Each job alone: same speed everywhere, starts at its release.
        let s0 = sol.speeds[0];
        assert!(sol.speeds.iter().all(|&s| (s - s0).abs() < TOL));
        for (i, &r) in sol.releases.iter().enumerate() {
            assert!((sol.completions[i] - (r + 1.0 / s0)).abs() < TOL);
        }
    }

    #[test]
    fn overlapping_releases_merge_and_speed_up_the_head() {
        // Two jobs released together-ish: the first must run faster.
        let sol = flow_plus_energy(&[0.0, 0.01], 2.0, 1.0);
        assert!(sol.speeds[0] > sol.speeds[1] * (1.0 + 1e-6));
        // No job starts before its release.
        for i in 0..2 {
            let start = sol.completions[i] - 1.0 / sol.speeds[i];
            assert!(start >= sol.releases[i] - 1e-12);
        }
    }

    #[test]
    fn pinned_boundary_case_is_detected_and_valid() {
        // Construct: job 0 at r=0; job 1 at r just below job 0's
        // unconstrained completion. Merged speeds would finish the head
        // before r_1 — the boundary binds and job 0 is pinned to end at r_1.
        let (alpha, lambda) = (2.0, 1.0);
        let solo = flow_plus_energy(&[0.0], alpha, lambda);
        let c0 = solo.completions[0];
        let r1 = c0 * 0.95; // inside the overlap-but-merge-undershoots band
        let sol = flow_plus_energy(&[0.0, r1], alpha, lambda);
        // Validity: starts after releases, completions ordered.
        for i in 0..2 {
            let start = sol.completions[i] - 1.0 / sol.speeds[i];
            assert!(start >= sol.releases[i] - 1e-12, "job {i} starts early");
        }
        // Job 1 starts exactly at its release in the pinned case; job 0's
        // completion == r1.
        if (sol.completions[0] - r1).abs() < 1e-9 {
            let start1 = sol.completions[1] - 1.0 / sol.speeds[1];
            assert!((start1 - r1).abs() < 1e-9);
        }
        // Never worse than the brute-force optimum (checked below more
        // systematically); here just check objective sanity.
        assert!(sol.total_flow > 0.0 && sol.energy > 0.0);
    }

    /// Brute-force validation of the Lagrangian objective on 2-job
    /// instances: grid over both speeds, FIFO simulation, compare objective.
    #[test]
    fn two_job_grid_search_cannot_beat_the_sweep() {
        let alpha = 2.0;
        for (r1, lambda) in [
            (0.0, 1.0),
            (0.3, 1.0),
            (0.8, 0.5),
            (1.2, 2.0),
            (0.95, 1.0), // near the pinned-boundary band
        ] {
            let releases = [0.0, r1];
            let sol = flow_plus_energy(&releases, alpha, lambda);
            let objective = sol.total_flow + lambda * sol.energy;
            let mut best = f64::INFINITY;
            for a in 1..=400 {
                for b in 1..=400 {
                    let (s0, s1) = (a as f64 * 0.02, b as f64 * 0.02);
                    let c0 = 1.0 / s0;
                    let start1 = c0.max(r1);
                    let c1 = start1 + 1.0 / s1;
                    let flow = c0 + (c1 - r1);
                    let energy = s0.powf(alpha - 1.0) + s1.powf(alpha - 1.0);
                    best = best.min(flow + lambda * energy);
                }
            }
            assert!(
                objective <= best + 1e-3,
                "r1={r1} lambda={lambda}: sweep {objective} vs grid {best}"
            );
        }
    }

    #[test]
    fn budget_form_is_binding_and_monotone() {
        let releases: Vec<f64> = vec![0.0, 0.2, 0.5, 0.9, 1.0, 2.5];
        let alpha = 2.5;
        let mut prev_flow = f64::INFINITY;
        for budget in [2.0, 4.0, 8.0, 16.0] {
            let sol = min_flow_time_budget(&releases, alpha, budget);
            assert!(sol.energy <= budget * (1.0 + 1e-6), "budget exceeded");
            assert!(
                sol.energy >= budget * (1.0 - 0.05),
                "budget far from binding: used {} of {budget}",
                sol.energy
            );
            assert!(sol.total_flow < prev_flow, "more energy must reduce flow");
            prev_flow = sol.total_flow;
        }
    }

    #[test]
    fn beats_the_fixed_speed_baseline_at_equal_energy() {
        let releases: Vec<f64> = vec![0.0, 0.1, 0.2, 1.5, 1.6, 4.0];
        let alpha = 2.0;
        let budget = 10.0;
        let sol = min_flow_time_budget(&releases, alpha, budget);
        // Fixed speed with the same energy: n·s^(α−1) = budget.
        let s = (budget / releases.len() as f64).powf(1.0 / (alpha - 1.0));
        let fixed = fixed_speed_flow(&releases, s);
        assert!(
            sol.total_flow <= fixed * (1.0 + 1e-9),
            "optimal {} vs fixed-speed {}",
            sol.total_flow,
            fixed
        );
    }

    #[test]
    fn schedule_materializes_and_validates() {
        let releases = vec![0.0, 0.05, 0.4, 2.0];
        let sol = flow_plus_energy(&releases, 2.0, 0.8);
        let schedule = sol.schedule(0);
        let inst = sol.as_instance(1, 2.0);
        let stats = schedule
            .validate(
                &inst,
                ssp_model::schedule::ValidationOptions::non_migratory(),
            )
            .unwrap();
        assert!((stats.energy - sol.energy).abs() <= 1e-6 * sol.energy);
    }

    #[test]
    fn empty_input() {
        let sol = min_flow_time_budget(&[], 2.0, 1.0);
        assert_eq!(sol.total_flow, 0.0);
        assert_eq!(flow_plus_energy(&[], 2.0, 1.0).energy, 0.0);
    }

    #[test]
    fn lambda_zero_or_negative_rejected() {
        let r = [0.0];
        assert!(std::panic::catch_unwind(|| flow_plus_energy(&r, 2.0, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| flow_plus_energy(&r, 2.0, -1.0)).is_err());
    }

    /// A pinned *multi-job* chain: the correctness-sensitive case where the
    /// boundary multiplier μ shifts every speed additively (a uniform
    /// rescaling would be wrong). Compare with a fine grid.
    #[test]
    fn pinned_two_job_chain_matches_fine_grid() {
        let (alpha, lambda) = (2.0, 1.0);
        // Jobs 0,1 close together; job 2's release chosen inside the band
        // where the {0,1} chain must pin (unconstrained end overshoots r2,
        // merged {0,1,2} would start job 2 before its release).
        let base = flow_plus_energy(&[0.0, 0.1], alpha, lambda);
        let r2 = base.completions[1] * 0.97;
        let releases = [0.0, 0.1, r2];
        let sol = flow_plus_energy(&releases, alpha, lambda);
        let objective = sol.total_flow + lambda * sol.energy;
        let mut best = f64::INFINITY;
        let grid: Vec<f64> = (1..=240).map(|k| k as f64 * 0.025).collect();
        for &s0 in &grid {
            for &s1 in &grid {
                for &s2 in &grid {
                    let c0 = 1.0 / s0;
                    let c1 = c0.max(releases[1]) + 1.0 / s1;
                    let c2 = c1.max(releases[2]) + 1.0 / s2;
                    let flow = c0 + (c1 - releases[1]) + (c2 - releases[2]);
                    let energy = s0.powf(alpha - 1.0) + s1.powf(alpha - 1.0) + s2.powf(alpha - 1.0);
                    best = best.min(flow + lambda * energy);
                }
            }
        }
        assert!(
            objective <= best + 5e-3,
            "pinned chain suboptimal: sweep {objective} vs grid {best}"
        );
    }

    #[test]
    fn weighted_equal_weights_match_unweighted() {
        let releases = [0.0, 0.2, 0.5, 1.4];
        let a = flow_plus_energy(&releases, 2.5, 0.7);
        let b = weighted_flow_plus_energy(&releases, &[1.0; 4], 2.5, 0.7);
        for i in 0..4 {
            assert!((a.speeds[i] - b.speeds[i]).abs() < 1e-12);
        }
        assert!((a.total_flow - b.total_flow).abs() < 1e-12);
    }

    #[test]
    fn heavier_jobs_get_lower_latency() {
        // Two coupled jobs: weighting the *second* job speeds up the first
        // (it delays the heavy one) and the second itself.
        let releases = [0.0, 0.01];
        let light = weighted_flow_plus_energy(&releases, &[1.0, 1.0], 2.0, 1.0);
        let heavy = weighted_flow_plus_energy(&releases, &[1.0, 5.0], 2.0, 1.0);
        assert!(heavy.speeds[0] > light.speeds[0]);
        assert!(heavy.speeds[1] > light.speeds[1]);
        let lat_light = light.completions[1] - releases[1];
        let lat_heavy = heavy.completions[1] - releases[1];
        assert!(lat_heavy < lat_light, "paying weight must buy latency");
    }

    #[test]
    fn weighted_two_job_grid_search_cannot_beat_the_dp() {
        let (alpha, lambda) = (2.0, 1.0);
        for (r1, w0, w1) in [(0.3, 2.0, 1.0), (0.8, 1.0, 3.0), (0.95, 4.0, 1.0)] {
            let releases = [0.0, r1];
            let sol = weighted_flow_plus_energy(&releases, &[w0, w1], alpha, lambda);
            let objective = sol.total_flow + lambda * sol.energy;
            let mut best = f64::INFINITY;
            for a in 1..=400 {
                for b in 1..=400 {
                    let (s0, s1) = (a as f64 * 0.02, b as f64 * 0.02);
                    let c0 = 1.0 / s0;
                    let start1 = c0.max(r1);
                    let c1 = start1 + 1.0 / s1;
                    let flow = w0 * c0 + w1 * (c1 - r1);
                    let energy = s0.powf(alpha - 1.0) + s1.powf(alpha - 1.0);
                    best = best.min(flow + lambda * energy);
                }
            }
            assert!(
                objective <= best + 1e-2,
                "r1={r1} w=({w0},{w1}): DP {objective} vs grid {best}"
            );
        }
    }

    /// Deeper brute force: 3 jobs near the pinned band, coarse grid.
    #[test]
    fn three_job_grid_search_cannot_beat_the_sweep() {
        let alpha = 2.0;
        let lambda = 1.0;
        for releases in [[0.0, 0.5, 1.0], [0.0, 0.9, 1.1], [0.0, 0.1, 1.9]] {
            let sol = flow_plus_energy(&releases, alpha, lambda);
            let objective = sol.total_flow + lambda * sol.energy;
            let mut best = f64::INFINITY;
            let grid: Vec<f64> = (1..=60).map(|k| k as f64 * 0.1).collect();
            for &s0 in &grid {
                for &s1 in &grid {
                    for &s2 in &grid {
                        let c0 = 1.0 / s0;
                        let c1 = c0.max(releases[1]) + 1.0 / s1;
                        let c2 = c1.max(releases[2]) + 1.0 / s2;
                        let flow = c0 + (c1 - releases[1]) + (c2 - releases[2]);
                        let energy =
                            s0.powf(alpha - 1.0) + s1.powf(alpha - 1.0) + s2.powf(alpha - 1.0);
                        best = best.min(flow + lambda * energy);
                    }
                }
            }
            assert!(
                objective <= best + 2e-2,
                "{releases:?}: sweep {objective} vs grid {best}"
            );
        }
    }
}
