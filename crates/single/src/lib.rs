//! # ssp-single
//!
//! Single-processor speed scaling. These algorithms are *substrates* for the
//! multiprocessor results: every non-migratory algorithm in the target paper
//! first partitions jobs among machines and then runs the optimal
//! single-processor algorithm on each machine.
//!
//! * [`mod@yds`] — the optimal offline algorithm of Yao, Demers and Shenker
//!   (FOCS'95): repeated peeling of maximum-intensity *critical intervals*.
//! * [`edf`] — preemptive earliest-deadline-first execution of jobs with
//!   fixed processing times; the standard way to materialize an explicit
//!   schedule once speeds are known.
//! * [`avr`] — the Average Rate online heuristic (each job runs at its
//!   density over its whole span), `α^α 2^(α-1)`-competitive.
//! * [`oa`] — the Optimal Available online algorithm (re-plan optimally at
//!   every event), `α^α`-competitive.
//!
//! All entry points take a job slice plus `alpha` (the machine count of an
//! [`ssp_model::Instance`] is irrelevant on one processor) and produce
//! [`ssp_model::Schedule`]s on a caller-chosen machine index so multiprocessor
//! drivers can place per-machine schedules side by side.

#![warn(missing_docs)]

pub mod avr;
pub mod edf;
pub mod flowtime;
pub mod oa;
pub mod yds;

pub use avr::{avr_energy, avr_schedule};
pub use edf::{edf_feasible, edf_schedule};
pub use flowtime::{
    flow_plus_energy, min_flow_time_budget, weighted_flow_plus_energy, FlowtimeSolution,
};
pub use oa::oa_schedule;
pub use yds::{yds, yds_schedule, YdsSolution};

#[cfg(test)]
mod ordering_tests {
    //! Online-vs-offline sanity: OA and AVR are incomparable with each other,
    //! but both are lower-bounded by YDS and upper-bounded by their
    //! competitive factors. Checked by seeded property cases on random
    //! workloads.
    use crate::{avr_energy, oa_schedule, yds};
    use ssp_model::Job;
    use ssp_prng::{check, Rng};

    fn random_jobs(seeds: &[(f64, f64, f64)]) -> Vec<Job> {
        seeds
            .iter()
            .enumerate()
            .map(|(i, &(w, r, len))| Job::new(i as u32, 0.1 + w, r, r + 0.1 + len))
            .collect()
    }

    /// OPT <= OA-energy <= alpha^alpha * OPT and
    /// OPT <= AVR-energy <= alpha^alpha 2^(alpha-1) * OPT.
    #[test]
    fn online_algorithms_within_competitive_bounds() {
        check::cases(48, 0x0A_41, |rng| {
            let seeds: Vec<(f64, f64, f64)> = check::vec_of(rng, 1..10, |r| {
                (
                    r.gen_range(0.0f64..4.0),
                    r.gen_range(0.0f64..10.0),
                    r.gen_range(0.0f64..5.0),
                )
            });
            let alpha = rng.gen_range(1.3f64..3.0);
            let jobs = random_jobs(&seeds);
            let opt = yds(&jobs, alpha).energy;
            let oa = oa_schedule(&jobs, alpha, 0).energy(alpha);
            let avr = avr_energy(&jobs, alpha);
            assert!(opt <= oa * (1.0 + 1e-6) + 1e-9, "OA {oa} below OPT {opt}");
            assert!(
                opt <= avr * (1.0 + 1e-6) + 1e-9,
                "AVR {avr} below OPT {opt}"
            );
            let oa_bound = alpha.powf(alpha);
            let avr_bound = alpha.powf(alpha) * 2.0f64.powf(alpha - 1.0);
            assert!(
                oa <= oa_bound * opt * (1.0 + 1e-6) + 1e-9,
                "OA {oa} exceeds {oa_bound} * OPT {opt}"
            );
            assert!(
                avr <= avr_bound * opt * (1.0 + 1e-6) + 1e-9,
                "AVR {avr} exceeds {avr_bound} * OPT {opt}"
            );
        });
    }
}
