//! Telemetry robustness: traced solves must emit well-formed, parseable
//! traces even on fault-injected adversarial instances, and the trace must
//! reflect the degradation chain the report records.
//!
//! Probe sessions are process-global, so every test here funnels through a
//! shared lock; the integration-test binary keeps the lock local to this
//! file.

use ssp_harness::fault::FaultPlan;
use ssp_harness::{solve_traced, Algo, SolveOptions};
use ssp_model::resource::Budget;
use ssp_model::{Instance, Job};
use ssp_probe::Trace;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

fn session_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn round_trip(trace: &Trace) -> Trace {
    let parsed = Trace::parse(&trace.to_jsonl()).expect("emitted trace must parse back");
    parsed.validate().expect("parsed trace must be well-formed");
    parsed
}

/// Fault-injected solves (the gauntlet's adversarial-but-constructible
/// cases) still emit structurally valid traces that round-trip through
/// JSONL. Budget caps keep adversarial numerics from stalling the test.
#[test]
fn fault_injected_solves_emit_well_formed_traces() {
    let _lock = session_lock();
    let opts = SolveOptions {
        budget: Budget::iterations(50_000).with_time(Duration::from_millis(250)),
        lower_bound: false,
        ..Default::default()
    };
    let mut traced_runs = 0usize;
    for case in FaultPlan::new(0xFA17).cases(40) {
        let Ok(instance) = &case.instance else {
            continue; // construction faults never reach the harness
        };
        for algo in [Algo::Rr, Algo::Local, Algo::Bal] {
            let report = solve_traced(instance, algo, &opts);
            let trace = report
                .telemetry
                .as_ref()
                .expect("no competing session: telemetry must be captured");
            trace
                .validate()
                .unwrap_or_else(|e| panic!("case {} ({}): {e}", case.index, case.fault));
            let parsed = round_trip(trace);
            // Whatever happened inside — typed failure, budget exhaustion,
            // fallback — the root of the tree is always the solve span.
            let roots = parsed.roots();
            assert_eq!(roots.len(), 1, "case {}: one root span", case.index);
            assert_eq!(roots[0].name, "solve");
            traced_runs += 1;
        }
    }
    assert!(
        traced_runs >= 45,
        "gauntlet produced too few constructible cases: {traced_runs}"
    );
}

/// A traced degradation chain carries one child span per attempt, named
/// after the algorithm, in chain order — so a slow fallback is attributable
/// from the trace alone.
#[test]
fn degradation_chain_appears_as_attempt_spans() {
    let _lock = session_lock();
    // 20 jobs: the exact solver's n <= 16 precondition fails, degrading
    // exact → local (which succeeds).
    let jobs: Vec<Job> = (0..20)
        .map(|i| Job::new(i, 1.0, i as f64 * 0.1, i as f64 * 0.1 + 2.0))
        .collect();
    let instance = Instance::new(jobs, 2, 2.0).unwrap();
    let report = solve_traced(&instance, Algo::Exact, &SolveOptions::default());
    assert!(report.degraded(), "expected exact → local fallback");
    let trace = report.telemetry.expect("telemetry captured");
    let parsed = round_trip(&trace);
    let solve_id = parsed.roots()[0].id;
    let attempt_names: Vec<&str> = parsed
        .children(solve_id)
        .iter()
        .map(|s| s.name.as_str())
        .filter(|n| *n != "lower_bound")
        .collect();
    let recorded: Vec<&str> = report.attempts.iter().map(|a| a.algo.name()).collect();
    assert_eq!(
        attempt_names, recorded,
        "attempt spans must mirror the report's chain"
    );
}

/// Counter totals in the trace agree with the solver's own accounting:
/// BAL's `flow_computations` is exported 1:1 as `bal.flow_calls`.
#[test]
fn counters_match_solver_accounting() {
    let _lock = session_lock();
    let jobs: Vec<Job> = (0..8)
        .map(|i| {
            Job::new(
                i,
                1.0 + i as f64 * 0.2,
                i as f64 * 0.3,
                i as f64 * 0.3 + 2.5,
            )
        })
        .collect();
    let instance = Instance::new(jobs, 2, 2.0).unwrap();
    let session = ssp_probe::Session::begin().expect("no competing session");
    let sol = ssp_migratory::bal::try_bal(&instance, Budget::unlimited()).unwrap();
    let trace = session.end();
    assert_eq!(
        trace.counter("bal.flow_calls"),
        sol.flow_computations as u64,
        "trace and BalSolution must agree on flow-call count"
    );
    assert_eq!(trace.counter("bal.rounds"), sol.rounds.len() as u64);
    // Every flow computation either ran the generic engine (cold Dinic
    // rebuild, warm restart of a previous run, or a resume seeded from the
    // sweep's greedy flow) or was answered entirely by the certified sweep
    // fast path, which never touches the network.
    assert!(
        trace.counter("maxflow.rebuild")
            + trace.counter("maxflow.warm_reuse")
            + trace.counter("maxflow.dinic.seeded_resumes")
            + trace.counter("wap.fast_path")
            >= sol.flow_computations as u64
    );
    assert!(
        trace.counter("maxflow.warm_reuse") + trace.counter("wap.fast_path") > 0,
        "probes must be answered warm-started or by the sweep fast path"
    );
}
