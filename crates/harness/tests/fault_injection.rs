//! The fault-injection gauntlet: 220 seeded corrupted/adversarial instances
//! through every registered algorithm. The process must never abort — every
//! failure is a typed [`ModelError`] or [`SolveError`], and every accepted
//! schedule passed validation inside the harness.

use ssp_harness::fault::{FaultPlan, FAULT_KINDS};
use ssp_harness::{solve, Algo, SolveOptions};
use ssp_model::resource::Budget;
use ssp_model::SolveError;
use std::time::Duration;

const CASES: usize = 220;
const SEED: u64 = 0xFA17;

// Acceptance floor: at least 200 cases, cycling the whole fault menu.
const _: () = assert!(CASES >= 200);
const _: () = assert!(CASES >= FAULT_KINDS);

fn gauntlet_options() -> SolveOptions {
    SolveOptions {
        // Cap every iterative solver so adversarial numerics cannot stall
        // the suite; exhaustion must surface as a marker, not a hang.
        budget: Budget::iterations(50_000).with_time(Duration::from_millis(250)),
        degrade: false, // judge each algorithm on its own
        lower_bound: false,
        ..Default::default()
    }
}

/// Every case, every algorithm: no panic escapes, no abort, every failure
/// typed. This is the headline robustness guarantee.
#[test]
fn no_algorithm_panics_on_the_fault_gauntlet() {
    let opts = gauntlet_options();
    let mut construction_rejects = 0usize;
    let mut runs = 0usize;
    let mut typed_failures = 0usize;
    for case in FaultPlan::new(SEED).cases(CASES) {
        let instance = match &case.instance {
            Err(_) => {
                // Construction faults are stopped by the model layer with a
                // typed error; the harness never sees an instance.
                construction_rejects += 1;
                continue;
            }
            Ok(inst) => inst,
        };
        for algo in Algo::ALL {
            // `solve` is total by contract: a panic anywhere in the stack
            // would abort this test process and fail the suite.
            let report = solve(instance, algo, &opts);
            runs += 1;
            match report.outcome {
                Some(outcome) => {
                    // Accepted schedules were validated inside the harness;
                    // energies of valid schedules are finite or the
                    // validator would have rejected them — but adversarial
                    // overflow-scale instances may legitimately produce
                    // infinite energy, so only sanity-check non-NaN here.
                    assert!(
                        !outcome.stats.energy.is_nan(),
                        "case {} ({}) algo {algo}: accepted schedule with NaN energy",
                        case.index,
                        case.fault
                    );
                }
                None => {
                    let err = report.error().unwrap_or_else(|| {
                        panic!(
                            "case {} ({}) algo {algo}: no outcome and no error",
                            case.index, case.fault
                        )
                    });
                    // Every failure is a typed SolveError with a stable kind.
                    assert!(
                        !err.kind().is_empty(),
                        "case {} ({}) algo {algo}: untyped failure",
                        case.index,
                        case.fault
                    );
                    typed_failures += 1;
                }
            }
        }
    }
    // Sanity: the gauntlet actually exercised both classes.
    assert!(
        construction_rejects > CASES / 4,
        "too few construction faults"
    );
    assert!(
        runs >= 100 * Algo::ALL.len() / 2,
        "too few solver runs: {runs}"
    );
    // Some algorithms are allowed to fail on adversarial numerics — the
    // point is that they fail with types. But if *nothing* ever failed the
    // adversarial menu is too soft, and if *everything* failed the solvers
    // are broken.
    assert!(
        typed_failures < runs,
        "every run failed: solvers are broken"
    );
    println!(
        "gauntlet: {CASES} cases → {construction_rejects} rejected at construction, \
         {runs} solver runs, {typed_failures} typed failures, 0 panics"
    );
}

/// Control-valid cases are plain well-formed instances: every algorithm must
/// produce a validated schedule whose energy is consistent with the
/// certified lower bound (ratio >= 1 - 1e-9).
#[test]
fn control_cases_solve_with_certified_ratio() {
    let opts = SolveOptions {
        budget: Budget::iterations(200_000).with_time(Duration::from_millis(500)),
        degrade: false,
        ..Default::default()
    };
    let mut controls = 0usize;
    for case in FaultPlan::new(SEED).cases(CASES) {
        if case.fault != "control-valid" {
            continue;
        }
        controls += 1;
        let instance = case.instance.as_ref().expect("control cases are valid");
        for algo in Algo::ALL {
            let report = solve(instance, algo, &opts);
            let outcome = report.outcome.as_ref().unwrap_or_else(|| {
                panic!(
                    "case {} algo {algo} failed on a valid instance:\n{}",
                    case.index,
                    report.summary()
                )
            });
            assert!(
                !matches!(
                    report.attempts[0].error,
                    Some(SolveError::InternalPanic { .. })
                ),
                "case {} algo {algo}: panic on a valid instance",
                case.index
            );
            if let Some(ratio) = outcome.lb_ratio {
                assert!(
                    ratio >= 1.0 - 1e-9,
                    "case {} algo {algo}: energy/LB ratio {ratio} < 1",
                    case.index
                );
            }
        }
    }
    assert!(
        controls >= CASES / FAULT_KINDS,
        "expected control cases in the plan"
    );
}

/// Corrupted serialized text must be rejected by the parser with a typed
/// `ModelError` — never a panic — and the error must say where.
#[test]
fn corrupted_text_yields_typed_parse_errors() {
    let mut corrupted = 0usize;
    for case in FaultPlan::new(SEED).cases(CASES) {
        if case.fault != "corrupted-text" {
            continue;
        }
        corrupted += 1;
        // Re-parse from text: same typed outcome, no panic.
        let reparsed = ssp_model::io::parse(&case.text);
        assert_eq!(
            reparsed.is_ok(),
            case.instance.is_ok(),
            "case {}: parse outcome not reproducible",
            case.index
        );
        if let Err(e) = &case.instance {
            // The error Display must be non-empty and human-readable.
            assert!(!e.to_string().is_empty());
        }
    }
    assert!(
        corrupted >= CASES / FAULT_KINDS,
        "expected corrupted-text cases"
    );
}

/// Degradation sanity on the gauntlet: when the chain is enabled and the
/// requested algorithm fails on an adversarial-but-valid instance, the
/// harness either recovers with a fallback (recording why) or reports a
/// typed terminal error — never silence.
#[test]
fn degradation_chain_recovers_or_types_out() {
    let opts = SolveOptions {
        budget: Budget::iterations(50_000).with_time(Duration::from_millis(250)),
        degrade: true,
        lower_bound: false,
        ..Default::default()
    };
    for case in FaultPlan::new(SEED ^ 0x5EED).cases(60) {
        let Ok(instance) = &case.instance else {
            continue;
        };
        let report = solve(instance, Algo::Exact, &opts);
        match &report.outcome {
            Some(outcome) => {
                if report.degraded() {
                    // Fallback attempts record the reason they were reached.
                    let accepted = report.attempts.last().unwrap();
                    assert_eq!(accepted.algo, outcome.algorithm);
                    assert!(
                        accepted.fallback_reason.is_some(),
                        "case {}: degraded without a recorded reason",
                        case.index
                    );
                }
            }
            None => {
                assert!(
                    report.error().is_some(),
                    "case {}: silent total failure",
                    case.index
                );
                // Every attempt in the chain carries its own typed error.
                for a in &report.attempts {
                    assert!(a.error.is_some());
                }
            }
        }
    }
}
