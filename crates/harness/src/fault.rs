//! Deterministic fault injection: seeded corrupted and adversarial
//! instances for exercising the solve harness.
//!
//! A [`FaultPlan`] expands a seed into a stream of [`FaultCase`]s. Each case
//! starts from a random *valid* instance and applies one fault from a fixed
//! menu — NaN/infinite fields, inverted or empty deadline windows, duplicate
//! job ids, zero machines, bad `alpha`, overflow-scale and denormal works,
//! tolerance-boundary windows, corrupted serialized text. The menu is cycled
//! by case index, so any `count >= FAULT_KINDS` covers every kind; all
//! randomness is derived from the plan seed, so a failing case reproduces
//! from its index alone.
//!
//! Faults split into two classes:
//!
//! * **construction faults** — rejected by [`Instance::new`]; the case
//!   carries the typed [`ModelError`] and the harness never sees an
//!   instance. These assert the model layer's first line of defense.
//! * **adversarial instances** — pass construction but stress numerics
//!   (huge/denormal values, degenerate windows). Every registered algorithm
//!   must process them without panicking: a valid schedule or a typed
//!   [`ssp_model::SolveError`].

use ssp_model::{io, Instance, Job, ModelError};
use ssp_prng::rngs::StdRng;
use ssp_prng::seq::SliceRandom;
use ssp_prng::{subseed, Rng, SeedableRng};

/// Number of distinct fault kinds in the menu (cycled by case index).
pub const FAULT_KINDS: usize = 20;

/// A seeded generator of corrupted/adversarial instances.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
}

/// One corrupted instance: its serialized text, the outcome of trying to
/// construct it, and a human-readable fault tag.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Index within the plan (reproduces the case given the plan seed).
    pub index: usize,
    /// Which fault was injected (stable kebab-case tag).
    pub fault: &'static str,
    /// The case in the `.ssp` text format (faults included verbatim;
    /// `{:?}` float formatting keeps `NaN`/`inf` readable by the parser).
    pub text: String,
    /// Result of building the instance — `Err` for construction faults,
    /// `Ok` for adversarial-but-valid instances.
    pub instance: Result<Instance, ModelError>,
}

impl FaultPlan {
    /// A plan deriving every case from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// Generate the first `count` cases of the plan.
    pub fn cases(&self, count: usize) -> Vec<FaultCase> {
        (0..count).map(|index| self.case(index)).collect()
    }

    /// Generate one case by index.
    pub fn case(&self, index: usize) -> FaultCase {
        let mut rng = StdRng::seed_from_u64(subseed(self.seed, index as u64));
        let n = rng.gen_range(2usize..9);
        let mut machines = rng.gen_range(1usize..4);
        let mut alpha = rng.gen_range(1.3f64..3.0);
        let mut fields: Vec<(u32, f64, f64, f64)> = (0..n)
            .map(|i| {
                let work = rng.gen_range(0.1f64..4.0);
                let release = rng.gen_range(0.0f64..6.0);
                let deadline = release + rng.gen_range(0.2f64..4.0);
                (i as u32, work, release, deadline)
            })
            .collect();
        let victim = rng.gen_range(0usize..n);
        let mut corrupt_text: Option<String> = None;

        let fault = match index % FAULT_KINDS {
            0 => {
                fields[victim].1 = f64::NAN;
                "nan-work"
            }
            1 => {
                fields[victim].1 = f64::INFINITY;
                "infinite-work"
            }
            2 => {
                fields[victim].1 = -rng.gen_range(0.1f64..2.0);
                "negative-work"
            }
            3 => {
                fields[victim].2 = f64::NAN;
                "nan-release"
            }
            4 => {
                fields[victim].3 = f64::INFINITY;
                "infinite-deadline"
            }
            5 => {
                // Deadline strictly before release.
                fields[victim].3 = fields[victim].2 - rng.gen_range(0.1f64..1.0);
                "inverted-window"
            }
            6 => {
                // Deadline exactly at release: an empty window.
                fields[victim].3 = fields[victim].2;
                "empty-window"
            }
            7 => {
                let other = (victim + 1) % n;
                fields[other].0 = fields[victim].0;
                "duplicate-job-id"
            }
            8 => {
                machines = 0;
                "zero-machines"
            }
            9 => {
                alpha = *[1.0, 0.5, -2.0, f64::NAN]
                    .choose(&mut rng)
                    .expect("non-empty alpha menu");
                "bad-alpha"
            }
            10 => {
                fields.clear();
                "no-jobs"
            }
            11 => {
                fields[victim].1 = 1e307;
                "overflow-scale-work"
            }
            12 => {
                fields[victim].1 = 1e-320;
                "denormal-work"
            }
            13 => {
                // Tolerance-boundary window: far below REL_EPS of the span.
                fields[victim].3 = fields[victim].2 + 1e-13;
                "tolerance-boundary-window"
            }
            14 => {
                // All jobs share one window; works differ by sub-tolerance
                // amounts, so peeling rounds tie within 1e-12.
                let base = rng.gen_range(0.5f64..2.0);
                for (k, f) in fields.iter_mut().enumerate() {
                    f.1 = base + k as f64 * 1e-12;
                    f.2 = 0.0;
                    f.3 = 1.0;
                }
                "tolerance-boundary-ties"
            }
            15 => {
                fields[victim].2 = 1e9;
                fields[victim].3 = 1e9 + 1e-6;
                "far-future-sliver"
            }
            16 => {
                machines = 64;
                "many-machines"
            }
            17 => {
                // Work spanning ~14 orders of magnitude in one instance.
                for (k, f) in fields.iter_mut().enumerate() {
                    f.1 = 10f64.powi(k as i32 * 2 - 7);
                }
                "extreme-work-spread"
            }
            18 => "control-valid",
            _ => {
                // Corrupt the serialized form, not the fields: truncate at a
                // random byte and splice garbage tokens.
                let valid = render_text(machines, alpha, &fields);
                let cut = rng.gen_range(0usize..valid.len().max(1));
                let mut t: String = valid.chars().take(cut).collect();
                t.push_str(
                    [
                        "\njob",
                        "\nmachines -3",
                        "\u{1F4A5}",
                        "\nalpha",
                        " 1e",
                        "\njob 0 x y z",
                    ]
                    .choose(&mut rng)
                    .expect("non-empty garbage menu"),
                );
                corrupt_text = Some(t);
                "corrupted-text"
            }
        };

        let text = corrupt_text.unwrap_or_else(|| render_text(machines, alpha, &fields));
        // Construction goes through the parser for text faults (that *is*
        // the fault surface) and through `Instance::new` otherwise.
        let instance = match fault {
            "corrupted-text" => io::parse(&text),
            _ => Instance::new(
                fields
                    .iter()
                    .map(|&(id, w, r, d)| Job::new(id, w, r, d))
                    .collect(),
                machines,
                alpha,
            ),
        };
        FaultCase {
            index,
            fault,
            text,
            instance,
        }
    }
}

fn render_text(machines: usize, alpha: f64, fields: &[(u32, f64, f64, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("machines {machines}\n"));
    out.push_str(&format!("alpha {alpha:?}\n"));
    for &(id, w, r, d) in fields {
        out.push_str(&format!("job {id} {w:?} {r:?} {d:?}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let a = FaultPlan::new(42).cases(40);
        let b = FaultPlan::new(42).cases(40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn menu_is_fully_covered() {
        let cases = FaultPlan::new(7).cases(FAULT_KINDS);
        let kinds: std::collections::BTreeSet<&str> = cases.iter().map(|c| c.fault).collect();
        assert_eq!(kinds.len(), FAULT_KINDS, "kinds seen: {kinds:?}");
    }

    #[test]
    fn construction_faults_are_rejected_with_typed_errors() {
        for case in FaultPlan::new(3).cases(60) {
            match case.fault {
                "nan-work" | "infinite-work" | "nan-release" | "infinite-deadline" => {
                    assert!(
                        matches!(case.instance, Err(ModelError::NotFinite { .. })),
                        "case {} ({}) should be NotFinite: {:?}",
                        case.index,
                        case.fault,
                        case.instance
                    );
                }
                "negative-work" => {
                    assert!(matches!(
                        case.instance,
                        Err(ModelError::NonPositiveWork { .. })
                    ));
                }
                "inverted-window" | "empty-window" => {
                    assert!(matches!(case.instance, Err(ModelError::EmptyWindow { .. })));
                }
                "duplicate-job-id" => {
                    assert!(matches!(
                        case.instance,
                        Err(ModelError::DuplicateJobId { .. })
                    ));
                }
                "zero-machines" => {
                    assert!(matches!(case.instance, Err(ModelError::NoMachines)));
                }
                "bad-alpha" => {
                    assert!(matches!(case.instance, Err(ModelError::BadAlpha { .. })));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn adversarial_cases_construct() {
        for case in FaultPlan::new(11).cases(60) {
            if matches!(
                case.fault,
                "overflow-scale-work"
                    | "denormal-work"
                    | "tolerance-boundary-window"
                    | "tolerance-boundary-ties"
                    | "far-future-sliver"
                    | "many-machines"
                    | "extreme-work-spread"
                    | "control-valid"
            ) {
                assert!(
                    case.instance.is_ok(),
                    "case {} ({}) should construct: {:?}",
                    case.index,
                    case.fault,
                    case.instance
                );
            }
        }
    }

    #[test]
    fn text_matches_instance_for_construction_faults() {
        // Parsing the rendered text must reject exactly when construction
        // rejects (the parser funnels into `Instance::new`).
        for case in FaultPlan::new(5).cases(40) {
            if case.fault == "corrupted-text" {
                continue; // the fault *is* the text for these
            }
            let parsed = io::parse(&case.text);
            assert_eq!(
                parsed.is_ok(),
                case.instance.is_ok(),
                "case {} ({}): parse {:?} vs construct {:?}",
                case.index,
                case.fault,
                parsed.err(),
                case.instance.as_ref().err()
            );
        }
    }
}
