//! # ssp-harness
//!
//! The panic-free solve harness: every solve attempt in the workspace is
//! **total**. Whatever instance comes in — valid, adversarial, or corrupted
//! — and whatever algorithm is requested, [`solve`] returns a structured
//! [`SolveReport`]; it never panics and never aborts the process.
//!
//! Three layers make that true:
//!
//! 1. **Typed failures.** Every registered algorithm runs behind a
//!    [`boundary::catch`] unwind boundary; panics become
//!    [`SolveError::InternalPanic`], and the fallible solver entry points
//!    ([`ssp_migratory::bal::try_bal`], budgeted local search, the budgeted
//!    bisection) surface their own [`SolveError`]s directly.
//! 2. **Post-validation.** A schedule an algorithm *claims* is only
//!    accepted after [`ssp_model::Schedule::validate`] passes and its energy
//!    is consistent with the certified BAL/KKT lower bound. A bad schedule
//!    is a typed failure like any other.
//! 3. **Degradation.** When the requested algorithm fails, the harness
//!    walks a fallback chain (`requested → local → greedy → least-loaded →
//!    rr`), recording each attempt — algorithm, outcome, energy, lower-bound
//!    ratio, wall time, and the failure that caused the fallback — in the
//!    report.
//!
//! Resource budgets ([`ssp_model::resource::Budget`]) bound every iterative
//! solver; exhaustion yields the best valid solution found so far, marked in
//! the report rather than silently returned.
//!
//! Every solve is also *observable*: the solver stack carries [`ssp_probe`]
//! spans and counters, and [`solve_traced`] wraps a solve in a probe session
//! so [`SolveReport::telemetry`] holds the complete span tree — lower bound,
//! every chain attempt by algorithm name, validation — plus counter totals
//! (max-flow work, BAL bisection steps, local-search moves). When no session
//! is active the probes cost a relaxed atomic load; see
//! `docs/OBSERVABILITY.md` for the trace schema and how to read one.
//!
//! [`fault::FaultPlan`] generates the seeded corrupted-instance stream used
//! by the fault-injection suite (`tests/fault_injection.rs`) to enforce the
//! no-panic guarantee over every registered algorithm.

#![warn(missing_docs)]

pub mod boundary;
pub mod fault;

use ssp_core::assignment::{assignment_schedule, Assignment};
use ssp_core::classified::classified_assignment;
use ssp_core::exact::exact_nonmigratory;
use ssp_core::list::{least_loaded, marginal_energy_greedy};
use ssp_core::local_search::{improve, LocalSearchOptions};
use ssp_core::online::{avr_m, oa_m};
use ssp_core::relax::relax_round;
use ssp_core::rr::rr_assignment;
use ssp_migratory::bal::try_bal;
use ssp_migratory::kkt::certify;
use ssp_model::numeric::Tol;
use ssp_model::resource::Budget;
use ssp_model::schedule::ValidationOptions;
use ssp_model::{Instance, Schedule, ScheduleStats, SolveError};
use std::fmt;
use std::time::{Duration, Instant};

/// Every algorithm the harness can drive, mirroring the CLI names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the algorithm names themselves
pub enum Algo {
    Rr,
    Classified,
    LeastLoaded,
    Relax,
    Greedy,
    Local,
    Exact,
    Bal,
    Avr,
    Oa,
}

impl Algo {
    /// All registered algorithms, in registry order.
    pub const ALL: [Algo; 10] = [
        Algo::Rr,
        Algo::Classified,
        Algo::LeastLoaded,
        Algo::Relax,
        Algo::Greedy,
        Algo::Local,
        Algo::Exact,
        Algo::Bal,
        Algo::Avr,
        Algo::Oa,
    ];

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Rr => "rr",
            Algo::Classified => "classified",
            Algo::LeastLoaded => "least-loaded",
            Algo::Relax => "relax",
            Algo::Greedy => "greedy",
            Algo::Local => "local",
            Algo::Exact => "exact",
            Algo::Bal => "bal",
            Algo::Avr => "avr",
            Algo::Oa => "oa",
        }
    }

    /// Human-readable description (matches the CLI labels).
    pub fn label(self) -> &'static str {
        match self {
            Algo::Rr => "round-robin + YDS (non-migratory)",
            Algo::Classified => "classified RR + YDS (non-migratory)",
            Algo::LeastLoaded => "least-loaded + YDS (non-migratory)",
            Algo::Relax => "relax-and-round + YDS (non-migratory)",
            Algo::Greedy => "marginal-energy greedy (non-migratory)",
            Algo::Local => "greedy + local search (non-migratory)",
            Algo::Exact => "exact optimum (non-migratory)",
            Algo::Bal => "BAL optimum (migratory)",
            Algo::Avr => "AVR-m (online, migratory)",
            Algo::Oa => "OA-m (online, migratory)",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Result<Algo, SolveError> {
        Algo::ALL
            .into_iter()
            .find(|a| a.name() == name)
            .ok_or_else(|| SolveError::UnknownAlgorithm {
                name: name.to_string(),
            })
    }

    /// Whether the algorithm produces one-machine-per-job schedules (and is
    /// therefore validated under the stricter non-migratory rules).
    pub fn non_migratory(self) -> bool {
        !matches!(self, Algo::Bal | Algo::Avr | Algo::Oa)
    }
}

impl fmt::Display for Algo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Resource budget applied to every iterative solver the harness runs
    /// (BAL peeling/bisection probes, local-search evaluations) — including
    /// the lower-bound computation.
    pub budget: Budget,
    /// Precondition cap for the exponential exact solver.
    pub max_exact_jobs: usize,
    /// Walk the degradation chain on failure (`false` = requested
    /// algorithm only).
    pub degrade: bool,
    /// Compute the certified BAL/KKT lower bound and check every accepted
    /// schedule against it.
    pub lower_bound: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            budget: Budget::unlimited(),
            max_exact_jobs: 16,
            degrade: true,
            lower_bound: true,
        }
    }
}

/// A schedule produced by one algorithm run, before post-validation.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// The produced schedule.
    pub schedule: Schedule,
    /// Set when the algorithm hit its budget and returned a best-so-far
    /// (valid, possibly suboptimal) result.
    pub budget_exhausted: Option<&'static str>,
}

/// Run one registered algorithm behind the panic boundary. Returns the raw
/// (not yet validated) schedule or a typed error; never panics.
pub fn run_algorithm(
    instance: &Instance,
    algo: Algo,
    opts: &SolveOptions,
) -> Result<AlgoRun, SolveError> {
    let budget = opts.budget.clone();
    let max_exact_jobs = opts.max_exact_jobs;
    boundary::catch(|| {
        let from_assignment = |a: Assignment| AlgoRun {
            schedule: assignment_schedule(instance, &a),
            budget_exhausted: None,
        };
        Ok(match algo {
            Algo::Rr => from_assignment(rr_assignment(instance)),
            Algo::Classified => from_assignment(classified_assignment(instance)),
            Algo::LeastLoaded => from_assignment(least_loaded(instance)),
            Algo::Relax => from_assignment(relax_round(instance)),
            Algo::Greedy => from_assignment(marginal_energy_greedy(instance)),
            Algo::Exact => {
                if instance.len() > max_exact_jobs {
                    return Err(SolveError::Precondition {
                        algorithm: "exact",
                        message: format!(
                            "branch-and-bound limited to n <= {max_exact_jobs} (got {})",
                            instance.len()
                        ),
                    });
                }
                from_assignment(exact_nonmigratory(instance).assignment)
            }
            Algo::Local => {
                let seed = marginal_energy_greedy(instance);
                let search_opts = LocalSearchOptions {
                    max_evaluations: budget
                        .max_iterations
                        .map(|n| n.min(usize::MAX as u64) as usize)
                        .unwrap_or(2_000_000),
                    max_time: budget.max_time,
                    deadline: budget.deadline,
                    cancel: budget.cancel.clone(),
                    ..Default::default()
                };
                let result = improve(instance, &seed, search_opts);
                AlgoRun {
                    schedule: assignment_schedule(instance, &result.assignment),
                    budget_exhausted: result.budget_exhausted,
                }
            }
            Algo::Bal => {
                let sol = try_bal(instance, budget)?;
                AlgoRun {
                    schedule: sol.schedule(instance),
                    budget_exhausted: sol.budget_exhausted,
                }
            }
            Algo::Avr => AlgoRun {
                schedule: avr_m(instance),
                budget_exhausted: None,
            },
            Algo::Oa => AlgoRun {
                schedule: oa_m(instance),
                budget_exhausted: None,
            },
        })
    })
}

/// The certified lower bound: a full (non-budget-exhausted) BAL run whose
/// KKT certificate verifies. `None` when either step fails — the harness
/// then simply has no bound to compare against.
pub fn certified_lower_bound(instance: &Instance, budget: Budget) -> Option<f64> {
    boundary::catch(|| {
        let sol = try_bal(instance, budget)?;
        if let Some(resource) = sol.budget_exhausted {
            return Err(SolveError::BudgetExhausted {
                resource,
                message: "lower-bound BAL run did not converge".into(),
            });
        }
        certify(instance, &sol, Tol::rel(1e-6)).map_err(|v| SolveError::Numeric {
            message: format!("KKT certificate failed: {v}"),
        })?;
        // Accepted schedules are measured by the validator's quadrature,
        // which can differ from BAL's internal accounting by ~1e-9 relative;
        // take the min so the bound is conservative under either measure.
        let stats = sol
            .schedule(instance)
            .validate(instance, ValidationOptions::default())
            .map_err(SolveError::from)?;
        Ok(sol.energy.min(stats.energy))
    })
    .ok()
}

/// One attempt in the degradation chain.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// Which algorithm ran.
    pub algo: Algo,
    /// `None` = the attempt produced a validated schedule.
    pub error: Option<SolveError>,
    /// Validated energy (successful attempts only).
    pub energy: Option<f64>,
    /// `energy / lower_bound` when both exist.
    pub lb_ratio: Option<f64>,
    /// Wall-clock time of the attempt (solve + validation).
    pub wall: Duration,
    /// Budget-exhaustion marker carried up from the solver.
    pub budget_exhausted: Option<&'static str>,
    /// Why the chain reached this algorithm: the previous attempt's error
    /// (`None` for the originally requested algorithm).
    pub fallback_reason: Option<String>,
}

/// The accepted result of a solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The algorithm whose schedule was accepted.
    pub algorithm: Algo,
    /// The validated schedule.
    pub schedule: Schedule,
    /// Validator statistics (energy, makespan, preemptions, migrations…).
    pub stats: ScheduleStats,
    /// `stats.energy / lower_bound` when a certified bound exists.
    pub lb_ratio: Option<f64>,
    /// Set when the producing solver stopped on a budget cap (the schedule
    /// is valid but possibly suboptimal).
    pub budget_exhausted: Option<&'static str>,
}

/// Full record of a [`solve`] call: every attempt plus the accepted outcome
/// (or none, when the whole chain failed — inspect [`SolveReport::error`]).
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The algorithm originally asked for.
    pub requested: Algo,
    /// The certified BAL/KKT lower bound, when computable.
    pub lower_bound: Option<f64>,
    /// Every attempt, in chain order; the last one is the accepted one when
    /// [`SolveReport::outcome`] is `Some`.
    pub attempts: Vec<Attempt>,
    /// The accepted result.
    pub outcome: Option<SolveOutcome>,
    /// Captured probe trace ([`solve_traced`] only): the span tree and
    /// counter totals for the whole chain, including every fallback step.
    pub telemetry: Option<ssp_probe::Trace>,
}

impl SolveReport {
    /// Did the harness have to fall back past the requested algorithm?
    pub fn degraded(&self) -> bool {
        self.outcome
            .as_ref()
            .is_some_and(|o| o.algorithm != self.requested)
    }

    /// The terminal error when the whole chain failed.
    pub fn error(&self) -> Option<&SolveError> {
        if self.outcome.is_some() {
            return None;
        }
        self.attempts.last().and_then(|a| a.error.as_ref())
    }

    /// Multi-line human-readable account of the attempts.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for a in &self.attempts {
            let status = match &a.error {
                None => {
                    let mut s = format!("ok energy={:.6}", a.energy.unwrap_or(f64::NAN));
                    if let Some(r) = a.lb_ratio {
                        s.push_str(&format!(" lb-ratio={r:.6}"));
                    }
                    if let Some(b) = a.budget_exhausted {
                        s.push_str(&format!(" [{b} budget exhausted]"));
                    }
                    s
                }
                Some(e) => format!("failed ({}): {e}", e.kind()),
            };
            let via = match &a.fallback_reason {
                Some(reason) => format!(" (fallback after: {reason})"),
                None => String::new(),
            };
            out.push_str(&format!(
                "{}: {status} in {:.1}ms{via}\n",
                a.algo,
                a.wall.as_secs_f64() * 1e3
            ));
        }
        out
    }
}

/// The degradation chain for a requested algorithm: cheaper and more robust
/// at every step, ending at round-robin (total for every valid instance).
pub fn degradation_chain(requested: Algo) -> Vec<Algo> {
    let mut chain = vec![requested];
    for fallback in [Algo::Local, Algo::Greedy, Algo::LeastLoaded, Algo::Rr] {
        if fallback != requested {
            chain.push(fallback);
        }
    }
    chain
}

/// Solve `instance` with `requested`, post-validating the schedule and
/// degrading through [`degradation_chain`] on failure. Total: always
/// returns a report, never panics.
pub fn solve(instance: &Instance, requested: Algo, opts: &SolveOptions) -> SolveReport {
    let _solve_span = ssp_probe::span("solve");
    let lower_bound = if opts.lower_bound {
        let _lb_span = ssp_probe::span("lower_bound");
        certified_lower_bound(instance, opts.budget.clone())
    } else {
        None
    };
    let chain = if opts.degrade {
        degradation_chain(requested)
    } else {
        vec![requested]
    };

    let mut attempts = Vec::new();
    let mut outcome = None;
    let mut fallback_reason: Option<String> = None;
    for algo in chain {
        let start = Instant::now();
        let result = {
            // Span named after the algorithm, so every fallback step shows
            // up as its own phase under `solve`.
            let _attempt_span = ssp_probe::span(algo.name());
            attempt(instance, algo, opts, lower_bound)
        };
        let wall = start.elapsed();
        // Attempt latency distribution across the whole session (gauntlets
        // run many solves); microseconds keep the log2 buckets meaningful
        // from sub-ms heuristics to multi-second exact solves.
        ssp_probe::histogram!("solve.attempt_us", wall.as_micros() as u64);
        match result {
            Ok((schedule, stats, budget_exhausted)) => {
                let lb_ratio = ratio(stats.energy, lower_bound);
                attempts.push(Attempt {
                    algo,
                    error: None,
                    energy: Some(stats.energy),
                    lb_ratio,
                    wall,
                    budget_exhausted,
                    fallback_reason: fallback_reason.take(),
                });
                outcome = Some(SolveOutcome {
                    algorithm: algo,
                    schedule,
                    stats,
                    lb_ratio,
                    budget_exhausted,
                });
                break;
            }
            Err(error) => {
                let reason = error.to_string();
                attempts.push(Attempt {
                    algo,
                    error: Some(error),
                    energy: None,
                    lb_ratio: None,
                    wall,
                    budget_exhausted: None,
                    fallback_reason: fallback_reason.replace(reason),
                });
            }
        }
    }
    SolveReport {
        requested,
        lower_bound,
        attempts,
        outcome,
        telemetry: None,
    }
}

/// Like [`solve`], but wrapped in a probe session: the returned report
/// carries the captured [`ssp_probe::Trace`] in [`SolveReport::telemetry`].
/// When another session already holds the probes the solve still runs and
/// the report's telemetry is simply `None` — tracing never blocks a solve.
///
/// When the whole chain fails (no outcome), the trace is still captured
/// and its [`Trace::error`](ssp_probe::Trace) field carries the last
/// attempt's error, so failed gauntlet cases stay debuggable.
pub fn solve_traced(instance: &Instance, requested: Algo, opts: &SolveOptions) -> SolveReport {
    match ssp_probe::Session::begin() {
        Some(session) => {
            let mut report = solve(instance, requested, opts);
            let mut trace = session.end();
            if report.outcome.is_none() {
                trace.error = Some(
                    report
                        .attempts
                        .iter()
                        .rev()
                        .find_map(|a| a.error.as_ref().map(|e| e.to_string()))
                        .unwrap_or_else(|| "solve failed with no attempts".to_string()),
                );
            }
            report.telemetry = Some(trace);
            report
        }
        None => solve(instance, requested, opts),
    }
}

/// One chain step: run, validate, check against the lower bound.
fn attempt(
    instance: &Instance,
    algo: Algo,
    opts: &SolveOptions,
    lower_bound: Option<f64>,
) -> Result<(Schedule, ScheduleStats, Option<&'static str>), SolveError> {
    let run = run_algorithm(instance, algo, opts)?;
    let vopts = if algo.non_migratory() {
        ValidationOptions::non_migratory()
    } else {
        ValidationOptions::default()
    };
    let stats = boundary::catch(|| {
        run.schedule
            .validate(instance, vopts)
            .map_err(SolveError::from)
    })?;
    if let Some(lb) = lower_bound {
        if stats.energy < lb * (1.0 - 1e-9) {
            return Err(SolveError::Numeric {
                message: format!(
                    "energy {} below the certified lower bound {lb} — schedule rejected",
                    stats.energy
                ),
            });
        }
    }
    Ok((run.schedule, stats, run.budget_exhausted))
}

fn ratio(energy: f64, lower_bound: Option<f64>) -> Option<f64> {
    match lower_bound {
        Some(lb) if lb > 0.0 => Some(energy / lb),
        Some(_) if energy <= 0.0 => Some(1.0), // empty instances: 0/0
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::Job;

    fn small_instance() -> Instance {
        Instance::new(
            vec![
                Job::new(0, 2.0, 0.0, 2.0),
                Job::new(1, 1.0, 0.5, 3.0),
                Job::new(2, 1.5, 1.0, 4.0),
                Job::new(3, 0.5, 2.0, 5.0),
            ],
            2,
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn algo_names_roundtrip() {
        for algo in Algo::ALL {
            assert_eq!(Algo::from_name(algo.name()).unwrap(), algo);
            assert_eq!(algo.to_string(), algo.name());
        }
        assert!(matches!(
            Algo::from_name("nope"),
            Err(SolveError::UnknownAlgorithm { .. })
        ));
    }

    #[test]
    fn every_algorithm_solves_a_valid_instance() {
        let inst = small_instance();
        for algo in Algo::ALL {
            let report = solve(&inst, algo, &SolveOptions::default());
            let outcome = report.outcome.as_ref().unwrap_or_else(|| {
                panic!("{algo} failed: {}", report.summary());
            });
            assert_eq!(
                outcome.algorithm,
                algo,
                "no fallback expected:\n{}",
                report.summary()
            );
            let ratio = outcome.lb_ratio.expect("certified bound must exist here");
            assert!(
                ratio >= 1.0 - 1e-9,
                "{algo}: energy/LB ratio {ratio} below 1"
            );
        }
    }

    #[test]
    fn bal_matches_the_lower_bound_exactly() {
        let inst = small_instance();
        let report = solve(&inst, Algo::Bal, &SolveOptions::default());
        let outcome = report.outcome.unwrap();
        let ratio = outcome.lb_ratio.unwrap();
        assert!(
            (ratio - 1.0).abs() <= 1e-6,
            "BAL is the bound, got ratio {ratio}"
        );
    }

    #[test]
    fn exact_precondition_degrades_to_a_fallback() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, 1.0, i as f64 * 0.1, i as f64 * 0.1 + 2.0))
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let report = solve(&inst, Algo::Exact, &SolveOptions::default());
        assert!(
            report.degraded(),
            "expected fallback:\n{}",
            report.summary()
        );
        let first = &report.attempts[0];
        assert!(matches!(first.error, Some(SolveError::Precondition { .. })));
        let second = &report.attempts[1];
        assert_eq!(second.algo, Algo::Local);
        assert!(second
            .fallback_reason
            .as_ref()
            .unwrap()
            .contains("precondition"));
        assert!(report.outcome.is_some());
    }

    #[test]
    fn no_degradation_when_disabled() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, 1.0, i as f64 * 0.1, i as f64 * 0.1 + 2.0))
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let opts = SolveOptions {
            degrade: false,
            ..Default::default()
        };
        let report = solve(&inst, Algo::Exact, &opts);
        assert!(report.outcome.is_none());
        assert_eq!(report.attempts.len(), 1);
        assert!(matches!(
            report.error(),
            Some(SolveError::Precondition { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_is_marked_not_fatal() {
        let jobs: Vec<Job> = (0..10)
            .map(|i| {
                Job::new(
                    i,
                    1.0 + i as f64 * 0.3,
                    i as f64 * 0.4,
                    i as f64 * 0.4 + 2.0,
                )
            })
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let opts = SolveOptions {
            budget: Budget::iterations(4),
            lower_bound: false,
            ..Default::default()
        };
        let report = solve(&inst, Algo::Bal, &opts);
        let outcome = report
            .outcome
            .expect("budgeted BAL still yields a valid schedule");
        assert_eq!(outcome.algorithm, Algo::Bal);
        assert_eq!(outcome.budget_exhausted, Some("iterations"));
    }

    #[test]
    fn summary_narrates_the_chain() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, 1.0, i as f64 * 0.1, i as f64 * 0.1 + 2.0))
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let report = solve(&inst, Algo::Exact, &SolveOptions::default());
        let s = report.summary();
        assert!(s.contains("exact: failed (precondition)"));
        assert!(s.contains("local: ok energy="));
        assert!(s.contains("fallback after:"));
    }

    #[test]
    fn empty_instance_reports_ratio_one() {
        let inst = Instance::new(vec![], 2, 2.0).unwrap();
        let report = solve(&inst, Algo::Rr, &SolveOptions::default());
        let outcome = report.outcome.unwrap();
        assert_eq!(outcome.stats.energy, 0.0);
        assert_eq!(outcome.lb_ratio, Some(1.0));
    }
}
