//! The panic boundary: run a solver closure and convert any panic into a
//! typed [`SolveError::InternalPanic`].
//!
//! `catch_unwind` alone still lets the default panic hook print a
//! `thread panicked at ...` banner (plus backtrace) to stderr, which is
//! noise once panics are data. We install a process-wide hook exactly once
//! that delegates to the previous hook *unless* the panicking thread is
//! currently inside a harness boundary (tracked by a thread-local flag), so
//! panics elsewhere in the process keep their normal diagnostics.

use ssp_model::SolveError;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    static IN_BOUNDARY: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_BOUNDARY.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Guard restoring the thread-local flag even if the closure panics through
/// `catch_unwind`'s landing pad bookkeeping.
struct BoundaryGuard {
    was: bool,
}

impl BoundaryGuard {
    fn enter() -> Self {
        let was = IN_BOUNDARY.with(Cell::get);
        IN_BOUNDARY.with(|f| f.set(true));
        BoundaryGuard { was }
    }
}

impl Drop for BoundaryGuard {
    fn drop(&mut self) {
        IN_BOUNDARY.with(|f| f.set(self.was));
    }
}

/// Run `f`, converting a panic into [`SolveError::InternalPanic`] with the
/// panic payload as the message (when it was a string).
pub fn catch<T>(f: impl FnOnce() -> Result<T, SolveError>) -> Result<T, SolveError> {
    install_quiet_hook();
    let guard = BoundaryGuard::enter();
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    drop(guard);
    match result {
        Ok(inner) => inner,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(SolveError::InternalPanic { message })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_values_and_errors_through() {
        assert_eq!(catch(|| Ok(7)), Ok(7));
        let e = catch::<u32>(|| {
            Err(SolveError::Numeric {
                message: "x".into(),
            })
        });
        assert_eq!(
            e,
            Err(SolveError::Numeric {
                message: "x".into()
            })
        );
    }

    #[test]
    fn converts_panics_to_internal_panic() {
        let r = catch::<()>(|| panic!("deliberate test panic: {}", 42));
        match r {
            Err(SolveError::InternalPanic { message }) => {
                assert!(message.contains("deliberate test panic: 42"));
            }
            other => panic!("expected InternalPanic, got {other:?}"),
        }
    }

    #[test]
    fn boundary_flag_is_restored_after_a_panic() {
        let _ = catch::<()>(|| panic!("first"));
        // A second catch still works and the flag did not leak.
        assert_eq!(catch(|| Ok(1)), Ok(1));
        assert!(!IN_BOUNDARY.with(Cell::get));
    }

    #[test]
    fn non_string_payloads_are_reported() {
        let r = catch::<()>(|| std::panic::panic_any(17u32));
        match r {
            Err(SolveError::InternalPanic { message }) => {
                assert!(message.contains("non-string"));
            }
            other => panic!("expected InternalPanic, got {other:?}"),
        }
    }
}
