//! Experiment CLI: regenerate the tables/figures of `EXPERIMENTS.md`.
//!
//! ```text
//! ssp-exper list                 # show the experiment registry
//! ssp-exper all [--quick]        # run everything
//! ssp-exper exp3 exp4 [--seed 7] # run selected experiments
//! ssp-exper all --csv results/   # additionally write one CSV per table
//! ```
//!
//! Every experiment runs inside a probe session; the final `telemetry`
//! table (and `timings.csv` under `--csv`) attributes each experiment's
//! wall time to solver work — max-flow runs, BAL bisection steps,
//! local-search evaluations. See `docs/OBSERVABILITY.md`.

use ssp_exper::table::Cell;
use ssp_exper::{registry, RunCfg, Table};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit(0);
    }
    let mut cfg = RunCfg::default();
    let mut selected: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => {
                let v = iter.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    std::process::exit(2)
                });
                cfg.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad seed '{v}'");
                    std::process::exit(2)
                });
            }
            "--csv" => {
                csv_dir = Some(iter.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2)
                }));
            }
            "list" => {
                for e in registry() {
                    println!("{:6}  {}", e.id, e.title);
                }
                return;
            }
            "all" => selected = registry().iter().map(|e| e.id.to_string()).collect(),
            "-h" | "--help" => usage_and_exit(0),
            other if other.starts_with("exp") => selected.push(other.to_string()),
            other => {
                eprintln!("unknown argument '{other}'");
                usage_and_exit(2);
            }
        }
    }
    if selected.is_empty() {
        usage_and_exit(2);
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    let reg = registry();
    let mut timings = Table::new(
        "telemetry: per-experiment wall time and solver counters",
        &[
            "exp",
            "wall s",
            "flow runs",
            "bal rounds",
            "bisect steps",
            "ls evals",
            "validations",
        ],
    );
    for id in selected {
        let exp = reg.iter().find(|e| e.id == id).unwrap_or_else(|| {
            eprintln!("unknown experiment '{id}' (try 'list')");
            std::process::exit(2);
        });
        eprintln!(
            "== {}: {} (seed {}, {}) ==",
            exp.id,
            exp.title,
            cfg.seed,
            if cfg.quick { "quick" } else { "full" }
        );
        let t0 = std::time::Instant::now();
        // One probe session per experiment: counters in the timings table
        // are per-experiment totals (across all its worker threads). exp17
        // measures enabled-vs-disabled itself; exp20 and exp21 own their
        // sessions (exp21 reads the serve latency histograms back), so all
        // three need the probe idle.
        let session = if matches!(exp.id, "exp17" | "exp20" | "exp21") {
            None
        } else {
            ssp_probe::Session::begin()
        };
        let tables = (exp.run)(&cfg);
        let trace = session.map(|s| s.end());
        let wall = t0.elapsed().as_secs_f64();
        for (k, table) in tables.iter().enumerate() {
            println!("{}", table.to_markdown());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}_{k}.csv", exp.id);
                let mut f = std::fs::File::create(&path).expect("create csv file");
                f.write_all(table.to_csv().as_bytes()).expect("write csv");
                eprintln!("wrote {path}");
            }
        }
        if let Some(trace) = &trace {
            timings.push(vec![
                Cell::Text(exp.id.to_string()),
                Cell::Num(wall, 3),
                Cell::Int(
                    (trace.counter("maxflow.dinic.runs") + trace.counter("maxflow.pr.runs")) as i64,
                ),
                Cell::Int(trace.counter("bal.rounds") as i64),
                Cell::Int(trace.counter("bal.bisect_steps") as i64),
                Cell::Int(trace.counter("local_search.evaluations") as i64),
                Cell::Int(trace.counter("validate.calls") as i64),
            ]);
        }
        eprintln!("== {} done in {wall:.1}s ==\n", exp.id);
    }
    if !timings.rows.is_empty() {
        println!("{}", timings.to_markdown());
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/timings.csv");
            let mut f = std::fs::File::create(&path).expect("create csv file");
            f.write_all(timings.to_csv().as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}

fn usage_and_exit(code: i32) -> ! {
    eprintln!(
        "usage: ssp-exper <list | all | expN...> [--quick] [--seed N] [--csv DIR]\n\
         Regenerates the tables/figures of EXPERIMENTS.md."
    );
    std::process::exit(code);
}
