//! Result tables with Markdown and CSV emitters.

use std::fmt::Write as _;

/// A cell: text or a number with a display precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Verbatim text.
    Text(String),
    /// Integer count.
    Int(i64),
    /// Float rendered with the given number of significant decimals.
    Num(f64, usize),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Num(x, prec) => format!("{x:.prec$}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}
impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Num(x, 4)
    }
}

/// A titled table of results.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (matches the EXPERIMENTS.md artifact name).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows (each with `columns.len()` cells).
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics on arity mismatch (a programming error in the
    /// experiment runner, not a data condition).
    pub fn push(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch in '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Render as GitHub-flavored Markdown (title as an `###` header).
    pub fn to_markdown(&self) -> String {
        let mut rendered: Vec<Vec<String>> = vec![self.columns.clone()];
        rendered.extend(
            self.rows
                .iter()
                .map(|r| r.iter().map(Cell::render).collect()),
        );
        let widths: Vec<usize> = (0..self.columns.len())
            .map(|c| rendered.iter().map(|r| r[c].len()).max().unwrap_or(1))
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        for (k, row) in rendered.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(v, w)| format!("{v:>w$}"))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
            if k == 0 {
                let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
                let _ = writeln!(out, "| {} |", dashes.join(" | "));
            }
        }
        out
    }

    /// Render as CSV (no title; callers name the file).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| escape(&c.render())).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Max of a slice (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Min of a slice (+inf for empty).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Sample standard deviation (0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["name", "n", "ratio"]);
        t.push(vec!["alpha=2".into(), 10usize.into(), 1.2345678.into()]);
        t.push(vec![
            Cell::Text("a,b".into()),
            Cell::Int(-3),
            Cell::Num(0.5, 2),
        ]);
        t
    }

    #[test]
    fn markdown_has_header_separator_and_alignment() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("name") && md.contains("ratio"));
        assert!(md.contains("----"), "separator row missing");
        assert!(md.contains("1.2346")); // default 4 decimals
        assert!(md.contains("0.50"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.lines().next().unwrap().contains("name,n,ratio"));
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("-3"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("X", &["a", "b"]);
        t.push(vec!["only one".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 3.0]), 3.0);
        assert_eq!(min(&[1.0, 3.0]), 1.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 2.0f64.sqrt()).abs() < 1e-12);
    }
}
