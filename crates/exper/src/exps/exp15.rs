//! EXP-15 — "Table 12": maintenance windows (extension).
//!
//! Drain one machine of `m` for a growing fraction of the busiest stretch
//! of the horizon and measure the energy premium of the downtime-aware
//! optimum over the fully-available optimum. Expected shape: premium ≥ 0,
//! monotone in the drain length, growing steeply as the drained fraction
//! approaches the point where the remaining capacity binds, and larger for
//! smaller `m` (losing 1 of 2 machines hurts more than 1 of 8).

use crate::par::par_map;
use crate::table::{max, mean, Cell, Table};
use crate::RunCfg;
use ssp_migratory::bal::bal;
use ssp_migratory::downtime::{bal_with_downtime, violates_downtime, Downtime};
use ssp_workloads::{families, subseed};

/// Run EXP-15.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 12 — maintenance windows: energy premium vs drain fraction",
        &[
            "m",
            "drain frac of horizon",
            "mean premium %",
            "max premium %",
        ],
    );
    let n = cfg.pick(24usize, 10);
    let seeds = cfg.pick(10usize, 2);
    let ms: Vec<usize> = cfg.pick(vec![2, 4, 8], vec![2, 4]);
    let fracs: Vec<f64> = cfg.pick(vec![0.1, 0.25, 0.5, 0.75], vec![0.25, 0.5]);
    for &m in &ms {
        let mut prev_mean = 0.0f64;
        for &frac in &fracs {
            let items: Vec<u64> = (0..seeds as u64).collect();
            let premiums = par_map(items, |&s| {
                let inst = families::general(n, m, 2.0).gen(subseed(cfg.seed ^ 0x155, s));
                let (lo, hi) = inst.horizon().unwrap();
                let span = hi - lo;
                let d = Downtime {
                    machine: 0,
                    start: lo + 0.5 * (1.0 - frac) * span,
                    end: lo + 0.5 * (1.0 + frac) * span,
                };
                let plain = bal(&inst).energy;
                let (sol, schedule) =
                    bal_with_downtime(&inst, &[d]).expect("m >= 2 keeps everything feasible");
                assert!(!violates_downtime(&schedule, &[d]));
                (sol.energy / plain - 1.0) * 100.0
            });
            assert!(
                premiums.iter().all(|&p| p >= -1e-6),
                "downtime reduced energy?!"
            );
            let mp = mean(&premiums);
            assert!(
                mp >= prev_mean - 1e-6,
                "longer drains must cost at least as much: {mp}% after {prev_mean}%"
            );
            prev_mean = mp;
            t.push(vec![
                m.into(),
                Cell::Num(frac, 2),
                Cell::Num(mp, 3),
                Cell::Num(max(&premiums), 3),
            ]);
        }
    }
    vec![t]
}
