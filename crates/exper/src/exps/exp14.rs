//! EXP-14 — "Table 11": the AVR-adversarial cascade.
//!
//! The random families of EXP-8 make AVR look benign (ratios ≤ 2.4). The
//! geometric release cascade (`families::avr_cascade`) is the classic
//! stress structure: densities double toward a shared deadline, so
//! committing each job to its average rate stacks the rates while the
//! optimum smooths them. Measured shape: the AVR/OPT ratio climbs
//! monotonically with cascade depth and converges to `2^(α−1)` (= 2 at
//! α = 2) — the textbook AVR lower-bound value. A notable secondary
//! finding: on this family OA *coincides* with AVR (with a common deadline,
//! replanning the optimum over the remaining work reproduces exactly the
//! average rates), so the cascade is adversarial for both.

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_core::online::{avr_m_energy, oa_m};
use ssp_migratory::bal::bal;
use ssp_workloads::families;

/// Run EXP-14.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 11 — AVR on its adversarial cascade (m=1, alpha=2)",
        &["cascade depth n", "AVR/OPT", "OA/OPT", "theory AVR bound"],
    );
    let alpha = 2.0f64;
    let depths: Vec<usize> = cfg.pick(vec![2, 4, 8, 12, 16, 20], vec![4, 16]);
    let bound = alpha.powf(alpha) * 2.0f64.powf(alpha - 1.0);
    let mut prev_ratio = 0.0f64;
    for &n in &depths {
        let inst = families::avr_cascade(n, 1, alpha);
        let opt = bal(&inst).energy;
        let avr = avr_m_energy(&inst) / opt;
        let oa = oa_m(&inst).energy(alpha) / opt;
        assert!(avr >= 1.0 - 1e-6 && oa >= 1.0 - 1e-6);
        assert!(
            avr <= bound * (1.0 + 1e-6),
            "AVR above its competitive bound"
        );
        assert!(
            avr >= prev_ratio - 1e-6,
            "cascade should monotonically stress AVR: {avr} after {prev_ratio}"
        );
        prev_ratio = avr;
        t.push(vec![
            n.into(),
            Cell::Num(avr, 4),
            Cell::Num(oa, 4),
            Cell::Num(bound, 2),
        ]);
    }
    // Deep cascades approach the 2^(alpha-1) asymptote.
    let asymptote = 2.0f64.powf(alpha - 1.0);
    assert!(
        prev_ratio > asymptote - 0.1,
        "deep cascades should approach {asymptote}: got {prev_ratio}"
    );
    assert!(prev_ratio <= asymptote + 1e-6);
    vec![t]
}
