//! EXP-17 — probe overhead: observability must be (nearly) free.
//!
//! `ssp-probe` claims that with no session installed its macros cost one
//! relaxed atomic load, and that an active session stays under the noise
//! floor of the solvers it instruments. This runner measures both claims on
//! the two hottest kernels:
//!
//! * **BAL** on a general-family instance — exercises spans (`bal`,
//!   `bal.round`, `bal.bisect`, `wap.solve`) and the Dinic counters;
//! * **push-relabel** max-flow on a WAP-shaped layered network — exercises
//!   the counter-only fast path (`maxflow.pr.*`), which fires orders of
//!   magnitude more often than any span.
//!
//! Each repetition times the kernel twice: once with the probe idle and
//! once inside a fresh session. The *minimum* over repetitions is compared
//! rather than the mean — timing noise is strictly additive, so the ratio
//! of minima is the sharpest, most reproducible overhead estimate.
//!
//! Acceptance (asserted here, recorded in `EXPERIMENTS.md`): enabled vs
//! disabled overhead below **2%** in full mode. Quick mode — the tier-1
//! smoke test on shared CI machines — runs sub-millisecond kernels where a
//! 2% bound is pure noise, so it only keeps a coarse sanity ceiling.

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_maxflow::push_relabel::PushRelabel;
use ssp_migratory::bal::bal;
use ssp_workloads::{families, subseed};
use std::time::Instant;

/// Full-mode acceptance threshold on the enabled/disabled ratio of minima.
const FULL_MODE_MAX_RATIO: f64 = 1.02;
/// Quick-mode sanity ceiling (smoke test only; kernels are too small for a
/// meaningful percentage bound).
const QUICK_MODE_MAX_RATIO: f64 = 5.0;

/// A WAP-shaped layered network: source → jobs → intervals → sink, with
/// deterministic capacities (no RNG needed — the shape, not the values,
/// drives push-relabel's work).
fn layered_network(jobs: usize, intervals: usize) -> (PushRelabel, usize, usize) {
    let s = 0;
    let t = 1 + jobs + intervals;
    let mut net = PushRelabel::new(t + 1);
    for j in 0..jobs {
        net.add_edge(s, 1 + j, 1.0 + (j % 7) as f64);
        for i in 0..intervals {
            if (j + i) % 3 != 0 {
                net.add_edge(1 + j, 1 + jobs + i, 0.5 + ((j * 13 + i * 7) % 5) as f64);
            }
        }
    }
    for i in 0..intervals {
        net.add_edge(1 + jobs + i, t, 2.0 + (i % 4) as f64);
    }
    (net, s, t)
}

/// Time `kernel` once idle and once inside a fresh session; returns the two
/// wall times in milliseconds plus the session's trace stats.
fn measure_pair(kernel: &mut dyn FnMut()) -> (f64, f64, usize, u64) {
    let t0 = Instant::now();
    kernel();
    let off_ms = t0.elapsed().as_secs_f64() * 1e3;

    let session = ssp_probe::Session::begin()
        .expect("exp17 needs the probe idle (the runner must not hold a session around it)");
    let t1 = Instant::now();
    kernel();
    let on_ms = t1.elapsed().as_secs_f64() * 1e3;
    let trace = session.end();
    let spans = trace.spans.len();
    let events: u64 = trace.counters.iter().map(|(_, v)| *v).sum();
    (off_ms, on_ms, spans, events)
}

/// Run EXP-17.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "EXP-17 — probe overhead, enabled vs disabled session (ratio of minima)",
        &[
            "kernel",
            "reps",
            "off ms (min)",
            "on ms (min)",
            "overhead %",
            "spans",
            "counter events",
        ],
    );
    let reps = cfg.pick(9usize, 3);
    let max_ratio = cfg.pick(FULL_MODE_MAX_RATIO, QUICK_MODE_MAX_RATIO);

    let bal_n = cfg.pick(150, 30);
    let inst = families::general(bal_n, 4, 2.0).gen(subseed(cfg.seed ^ 0x17, bal_n as u64));
    let (proto, s, snk) = layered_network(cfg.pick(700, 40), cfg.pick(120, 12));

    type Kernel<'a> = Box<dyn FnMut() + 'a>;
    let kernels: Vec<(&str, Kernel)> = vec![
        (
            "bal",
            Box::new(|| {
                let sol = bal(&inst);
                assert!(std::hint::black_box(sol.flow_computations) > 0);
            }),
        ),
        (
            "push_relabel",
            Box::new(|| {
                let mut net = proto.clone();
                let v = net.max_flow(s, snk);
                assert!(std::hint::black_box(v) > 0.0);
            }),
        ),
    ];

    for (name, mut kernel) in kernels {
        let mut off_min = f64::INFINITY;
        let mut on_min = f64::INFINITY;
        let mut spans = 0usize;
        let mut events = 0u64;
        // Warmup rep (discarded): populates caches and the lazy counter
        // registrations so neither side pays first-touch costs.
        let _ = measure_pair(&mut *kernel);
        let mut measure_round = |off_min: &mut f64, on_min: &mut f64, n: usize| {
            for _ in 0..n {
                let (off, on, sp, ev) = measure_pair(&mut *kernel);
                *off_min = off_min.min(off);
                *on_min = on_min.min(on);
                spans = sp;
                events = ev;
            }
        };
        measure_round(&mut off_min, &mut on_min, reps);
        if on_min / off_min >= max_ratio {
            // Noise guard: a transient load spike (another build, a cron
            // job) inflates one side of a millisecond-scale kernel. Minima
            // only improve, so one longer re-measure round either finds a
            // quiet window or confirms a real regression.
            measure_round(&mut off_min, &mut on_min, 2 * reps);
        }
        let ratio = on_min / off_min;
        assert!(
            ratio.is_finite() && ratio < max_ratio,
            "{name}: probe overhead {:.2}% exceeds the {} bound ({:.2}%)",
            (ratio - 1.0) * 100.0,
            if cfg.quick { "quick sanity" } else { "EXP-17" },
            (max_ratio - 1.0) * 100.0,
        );
        t.push(vec![
            Cell::Text(name.to_string()),
            reps.into(),
            Cell::Num(off_min, 3),
            Cell::Num(on_min, 3),
            Cell::Num((ratio - 1.0) * 100.0, 2),
            spans.into(),
            Cell::Int(events as i64),
        ]);
    }
    vec![t]
}
