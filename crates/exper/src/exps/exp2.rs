//! EXP-2 — "Table 2": the NP-hard regime (unit works, arbitrary windows).
//!
//! Two observable consequences of R2's hardness proof are measured on the
//! gadget families: (a) the exact branch-and-bound's node count grows
//! quickly with gadget size, and (b) polynomial heuristics — including RR,
//! which is *optimal* in the agreeable regime — leave strict gaps to the
//! optimum once windows cross.

use crate::table::Table;
use crate::RunCfg;
use ssp_core::exact::exact_nonmigratory;
use ssp_core::hardness::{crossing, interlock};
use ssp_core::relax::relax_round;
use ssp_core::rr::rr_assignment;

/// Run EXP-2.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 2 — gadget families: exact-search growth and heuristic gaps",
        &[
            "family",
            "n",
            "exact nodes",
            "OPT energy",
            "RR/OPT",
            "RelaxRound/OPT",
        ],
    );
    let inter_ks: Vec<usize> = cfg.pick(vec![1, 2, 3, 4], vec![1, 2]);
    for k in inter_ks {
        let inst = interlock(k, 2, 2.0);
        let exact = exact_nonmigratory(&inst);
        let rr = super::ratio_of(&inst, &rr_assignment(&inst), exact.energy);
        let relax = super::ratio_of(&inst, &relax_round(&inst), exact.energy);
        assert!(rr >= 1.0 - 1e-9 && relax >= 1.0 - 1e-9);
        t.push(vec![
            format!("interlock k={k}").into(),
            inst.len().into(),
            exact.nodes.into(),
            exact.energy.into(),
            rr.into(),
            relax.into(),
        ]);
    }
    let cross_ns: Vec<usize> = cfg.pick(vec![5, 7, 9, 11], vec![5, 7]);
    let mut rr_gap_seen = false;
    for n in cross_ns {
        let inst = crossing(n, 2, 2.0);
        let exact = exact_nonmigratory(&inst);
        let rr = super::ratio_of(&inst, &rr_assignment(&inst), exact.energy);
        let relax = super::ratio_of(&inst, &relax_round(&inst), exact.energy);
        if rr > 1.0 + 1e-6 {
            rr_gap_seen = true;
        }
        t.push(vec![
            format!("crossing n={n}").into(),
            inst.len().into(),
            exact.nodes.into(),
            exact.energy.into(),
            rr.into(),
            relax.into(),
        ]);
    }
    assert!(
        rr_gap_seen,
        "expected RR to be strictly suboptimal on at least one crossing gadget"
    );
    vec![t]
}
