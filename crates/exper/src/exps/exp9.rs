//! EXP-9 — "Table 7": optimality certificates and cross-validation.
//!
//! The trust anchor for every other experiment: the migratory lower bound is
//! only as good as BAL, so BAL is checked three independent ways:
//!
//! 1. **KKT certificate** on every run (sufficient conditions ⇒ optimal);
//! 2. **`m = 1` reduction**: BAL must equal YDS exactly;
//! 3. **closed forms**: equal jobs in a common window have a known optimal
//!    speed `max(w/T, n·w/(m·T))`.
//!
//! Every row must read `pass = total`; the runner asserts it.

use crate::par::par_map;
use crate::table::Table;
use crate::RunCfg;
use ssp_migratory::bal::bal;
use ssp_migratory::kkt::certify;
use ssp_model::numeric::Tol;
use ssp_model::{Instance, Job};
use ssp_single::yds::yds;
use ssp_workloads::{families, subseed};

/// Run EXP-9.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 7 — BAL optimality certificates",
        &["check", "cases", "passed"],
    );
    let seeds = cfg.pick(24usize, 4);
    let n = cfg.pick(30usize, 10);

    // 1. KKT + schedule validation across families and parameters.
    let mut cases = Vec::new();
    for (fam_id, m, alpha) in [
        (0usize, 2usize, 2.0f64),
        (1, 4, 2.0),
        (2, 2, 3.0),
        (3, 3, 1.5),
        (4, 4, 2.5),
    ] {
        for s in 0..seeds as u64 {
            cases.push((fam_id, m, alpha, s));
        }
    }
    let total_kkt = cases.len();
    let results = par_map(cases, |&(fam_id, m, alpha, s)| {
        let spec = match fam_id {
            0 => families::unit_agreeable(n, m, alpha),
            1 => families::unit_arbitrary(n, m, alpha),
            2 => families::weighted_agreeable(n, m, alpha),
            3 => families::general(n, m, alpha),
            _ => families::bursty(n, m, alpha),
        };
        let inst = spec.gen(subseed(cfg.seed ^ 0x99, s * 37 + fam_id as u64));
        let sol = bal(&inst);
        let kkt_ok = certify(&inst, &sol, Tol::rel(1e-6)).is_ok();
        let schedule = sol.schedule(&inst);
        let sched_ok = match schedule.validate(&inst, Default::default()) {
            Ok(stats) => (stats.energy - sol.energy).abs() <= 1e-6 * sol.energy.max(1e-12),
            Err(_) => false,
        };
        kkt_ok && sched_ok
    });
    let passed_kkt = results.iter().filter(|&&ok| ok).count();
    assert_eq!(passed_kkt, total_kkt, "a KKT certificate failed");
    t.push(vec![
        "KKT + schedule validation".into(),
        total_kkt.into(),
        passed_kkt.into(),
    ]);

    // 2. m = 1 reduction to YDS.
    let m1_cases: Vec<u64> = (0..seeds as u64).collect();
    let m1 = par_map(m1_cases, |&s| {
        let inst = families::general(n, 1, 2.0).gen(subseed(cfg.seed ^ 0xAA, s));
        let e_bal = bal(&inst).energy;
        let jobs: Vec<Job> = inst.jobs().to_vec();
        let e_yds = yds(&jobs, 2.0).energy;
        (e_bal - e_yds).abs() <= 1e-6 * e_yds
    });
    let passed_m1 = m1.iter().filter(|&&ok| ok).count();
    assert_eq!(passed_m1, seeds, "BAL != YDS at m = 1");
    t.push(vec![
        "m=1 reduction (BAL == YDS)".into(),
        seeds.into(),
        passed_m1.into(),
    ]);

    // 3. Closed forms: k equal jobs, common window, m machines.
    let mut closed = 0usize;
    let mut closed_total = 0usize;
    for (k, m, w, horizon, alpha) in [
        (3usize, 2usize, 2.0f64, 4.0f64, 2.0f64),
        (5, 2, 1.0, 2.0, 2.5),
        (2, 4, 3.0, 3.0, 3.0),
        (8, 3, 0.5, 1.0, 1.8),
    ] {
        closed_total += 1;
        let jobs: Vec<Job> = (0..k)
            .map(|i| Job::new(i as u32, w, 0.0, horizon))
            .collect();
        let inst = Instance::new(jobs, m, alpha).unwrap();
        let sol = bal(&inst);
        let speed = (w / horizon).max(k as f64 * w / (m as f64 * horizon));
        let expect = k as f64 * w * speed.powf(alpha - 1.0);
        if (sol.energy - expect).abs() <= 1e-6 * expect {
            closed += 1;
        }
    }
    assert_eq!(closed, closed_total, "a closed-form check failed");
    t.push(vec![
        "closed forms (common window)".into(),
        closed_total.into(),
        closed.into(),
    ]);

    vec![t]
}
