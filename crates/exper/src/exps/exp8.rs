//! EXP-8 — "Table 6": online baselines on `m` machines.
//!
//! AVR-m (density water-filling), OA-m (replan the migratory optimum at
//! every release) and Dispatch-OA (the *non-migratory* online policy:
//! irrevocable assignment on release + per-machine Optimal Available)
//! against the offline optimum. Expected shape: OA-m below `α^α`, AVR-m
//! below `α^α 2^(α-1)`, OA-m ≤ AVR-m on bursty inputs (OA reacts, AVR
//! commits), Dispatch-OA close behind OA-m (the price of never migrating,
//! online), and all → 1 as inputs become predictable.

use crate::par::par_map;
use crate::table::{max, mean, Table};
use crate::RunCfg;
use ssp_core::online::{avr_m_energy, dispatch_oa_nonmigratory, oa_m};
use ssp_migratory::bal::bal;
use ssp_workloads::{families, subseed};

/// Run EXP-8.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 6 — online vs offline optimum (migratory, m machines)",
        &[
            "family",
            "m",
            "alpha",
            "AVR-m mean",
            "AVR-m max",
            "bound a^a 2^(a-1)",
            "OA-m mean",
            "OA-m max",
            "bound a^a",
            "Dispatch-OA mean",
        ],
    );
    let n = cfg.pick(48usize, 14);
    let seeds = cfg.pick(8usize, 2);
    let grid: Vec<(usize, f64)> = cfg.pick(
        vec![(2usize, 2.0f64), (2, 3.0), (4, 2.0), (4, 3.0)],
        vec![(2, 2.0)],
    );
    for family in ["bursty", "general"] {
        for &(m, alpha) in &grid {
            let items: Vec<u64> = (0..seeds as u64).collect();
            let rows = par_map(items, |&s| {
                let spec = match family {
                    "bursty" => families::bursty(n, m, alpha),
                    _ => families::general(n, m, alpha),
                };
                let inst = spec.gen(subseed(cfg.seed ^ 0x88, s * 13 + m as u64));
                let opt = bal(&inst).energy;
                let avr = avr_m_energy(&inst) / opt;
                let oa = oa_m(&inst).energy(alpha) / opt;
                let dispatch = dispatch_oa_nonmigratory(&inst).energy(alpha) / opt;
                (avr, oa, dispatch)
            });
            let avr: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let oa: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let dispatch: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let avr_bound = alpha.powf(alpha) * 2.0f64.powf(alpha - 1.0);
            let oa_bound = alpha.powf(alpha);
            assert!(avr.iter().all(|&r| r >= 1.0 - 1e-6));
            assert!(oa.iter().all(|&r| r >= 1.0 - 1e-6));
            assert!(dispatch.iter().all(|&r| r >= 1.0 - 1e-6));
            assert!(
                max(&oa) <= oa_bound * (1.0 + 1e-6),
                "OA-m above alpha^alpha: {} > {oa_bound}",
                max(&oa)
            );
            t.push(vec![
                family.into(),
                m.into(),
                alpha.into(),
                mean(&avr).into(),
                max(&avr).into(),
                avr_bound.into(),
                mean(&oa).into(),
                max(&oa).into(),
                oa_bound.into(),
                mean(&dispatch).into(),
            ]);
        }
    }
    vec![t]
}
