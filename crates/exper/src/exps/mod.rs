//! Experiment runners, one module per `EXPERIMENTS.md` artifact.

pub mod exp1;
pub mod exp10;
pub mod exp11;
pub mod exp12;
pub mod exp13;
pub mod exp14;
pub mod exp15;
pub mod exp17;
pub mod exp18;
pub mod exp19;
pub mod exp2;
pub mod exp20;
pub mod exp21;
pub mod exp22;
pub mod exp23;
pub mod exp24;
pub mod exp25;
pub mod exp3;
pub mod exp4;
pub mod exp5;
pub mod exp6;
pub mod exp7;
pub mod exp8;
pub mod exp9;

use ssp_core::assignment::{assignment_energy, Assignment};
use ssp_model::Instance;

/// Energy ratio of an assignment against a reference energy.
pub(crate) fn ratio_of(instance: &Instance, assignment: &Assignment, reference: f64) -> f64 {
    assignment_energy(instance, assignment) / reference
}

/// The paper's R2 approximation factor.
pub(crate) fn bound_r2(m: usize, alpha: f64) -> f64 {
    2.0 * (2.0 - 1.0 / m as f64).powf(alpha)
}

/// The paper's R3 approximation factor.
pub(crate) fn bound_r3(alpha: f64) -> f64 {
    alpha.powf(alpha) * 2.0f64.powf(4.0 * alpha)
}

#[cfg(test)]
mod smoke {
    //! Every experiment must run to completion in quick mode and produce
    //! non-empty tables. (Correctness of the numbers is asserted inside the
    //! individual runners and in the crates' own tests.)
    use crate::{registry, RunCfg};

    #[test]
    fn all_experiments_run_in_quick_mode() {
        let cfg = RunCfg::quick();
        for exp in registry() {
            let tables = (exp.run)(&cfg);
            assert!(!tables.is_empty(), "{} produced no tables", exp.id);
            for t in &tables {
                assert!(!t.rows.is_empty(), "{}: table '{}' empty", exp.id, t.title);
                // Emitters must not panic.
                let _ = t.to_markdown();
                let _ = t.to_csv();
            }
        }
    }
}
