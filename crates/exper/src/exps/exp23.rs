//! EXP-23 — the parallel probe ladder vs plain bisection, and the
//! thread-invariance wall measured in the open.
//!
//! The BAL peeling loop locates each round's critical speed with one of
//! two drivers: the default cut-guided probe **ladder** (a deterministic
//! fan-out of Newton-bound and splitter candidates, solved on per-probe
//! scratch copies of one warm base state) or the retained budgeted
//! **bisection** baseline. This experiment quantifies the gap the ladder
//! buys and re-states its two contracts as assertions:
//!
//! 1. **Agreement.** Both drivers stop inside the feasibility classifier's
//!    `1e-9` relative tolerance, so their energies must agree to `1e-8`
//!    relative on every cell (the transcripts legitimately differ — that
//!    is the point).
//! 2. **Thread invariance.** For the ladder, the full probe transcript
//!    (every `(speed, feasible)` pair, every round) and the energy bits
//!    must be identical at fan-out widths 1 and 8: parallelism may change
//!    wall time only. The differential wall pins this per commit; the
//!    table reports it per family so the property is visible next to the
//!    probe counts it protects.
//!
//! The headline column is the probe ratio (bisection probes / ladder
//! probes): every feasibility probe is a parametric max-flow solve, so the
//! ratio is the algorithmic speedup available to any machine, independent
//! of this box's core count (`BENCH_bal.json` carries the wall-clock side).

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_migratory::bal::{try_bal_with_wap_strategy, BalSolution, ProbeStrategy};
use ssp_migratory::wap::Wap;
use ssp_model::par::set_thread_override;
use ssp_model::resource::Budget;
use ssp_model::Instance;
use ssp_workloads::{families, subseed};

fn solve(instance: &Instance, strategy: ProbeStrategy) -> BalSolution {
    let (wap, intervals) = Wap::from_instance(instance);
    try_bal_with_wap_strategy(instance, wap, intervals, Budget::unlimited(), strategy)
        .expect("generated instances are feasible")
}

fn solve_at_width(instance: &Instance, strategy: ProbeStrategy, width: usize) -> BalSolution {
    let prev = set_thread_override(Some(width));
    let sol = solve(instance, strategy);
    set_thread_override(prev);
    sol
}

/// Bitwise transcript equality: probes, round speeds, peel sets, energy.
fn transcripts_identical(a: &BalSolution, b: &BalSolution) -> bool {
    a.energy.to_bits() == b.energy.to_bits()
        && a.flow_computations == b.flow_computations
        && a.rounds.len() == b.rounds.len()
        && a.rounds.iter().zip(&b.rounds).all(|(ra, rb)| {
            ra.speed.to_bits() == rb.speed.to_bits()
                && ra.jobs == rb.jobs
                && ra.probes.len() == rb.probes.len()
                && ra
                    .probes
                    .iter()
                    .zip(&rb.probes)
                    .all(|(pa, pb)| pa.0.to_bits() == pb.0.to_bits() && pa.1 == pb.1)
        })
}

/// Run EXP-23.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let machines = 3;
    let alpha = 2.0;
    let sizes: &[usize] = if cfg.quick { &[60] } else { &[100, 300] };

    let mut table = Table::new(
        "EXP-23 — BAL probe ladder vs bisection: probe counts, agreement, thread invariance (m=3, alpha=2)",
        &[
            "family",
            "n",
            "rounds",
            "ladder probes",
            "bisect probes",
            "probe ratio",
            "energy rel diff",
            "width-8 transcript",
        ],
    );

    for (k, family) in ["general", "laminar", "crossing", "bursty"]
        .iter()
        .enumerate()
    {
        for (s, &n) in sizes.iter().enumerate() {
            let seed = subseed(cfg.seed ^ 0x23, (k * sizes.len() + s) as u64);
            let instance = match *family {
                "laminar" => families::laminar_nested(n, machines, alpha, seed),
                "crossing" => families::crossing(n, machines, alpha, seed),
                "bursty" => families::bursty(n, machines, alpha).gen(seed),
                _ => families::general(n, machines, alpha).gen(seed),
            };

            let ladder = solve_at_width(&instance, ProbeStrategy::Ladder, 1);
            let bisect = solve_at_width(&instance, ProbeStrategy::Bisection, 1);

            // Contract 1: strategy agreement within the classifier band.
            let rel = (ladder.energy - bisect.energy).abs() / bisect.energy.max(1e-12);
            assert!(
                rel <= 1e-8,
                "{family}/n={n}: strategy energies diverged (rel {rel:.3e})"
            );

            // Contract 2: ladder transcripts are thread-count invariant.
            let wide = solve_at_width(&instance, ProbeStrategy::Ladder, 8);
            assert!(
                transcripts_identical(&ladder, &wide),
                "{family}/n={n}: ladder transcript changed with the thread count"
            );

            table.push(vec![
                Cell::Text(family.to_string()),
                Cell::Int(n as i64),
                Cell::Int(ladder.rounds.len() as i64),
                Cell::Int(ladder.flow_computations as i64),
                Cell::Int(bisect.flow_computations as i64),
                Cell::Num(
                    bisect.flow_computations as f64 / ladder.flow_computations.max(1) as f64,
                    2,
                ),
                Cell::Num(rel, 12),
                Cell::Text("identical".to_string()),
            ]);
        }
    }

    vec![table]
}
