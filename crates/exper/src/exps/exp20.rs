//! EXP-20 — histogram coherence and allocation attribution end-to-end.
//!
//! The deep-profiling layer records five distributions (see
//! `docs/OBSERVABILITY.md`): Dinic augmentation path lengths, BAL bisection
//! probe counts, YDS peel interval widths, `YdsEval` rejection-tier
//! outcomes, and harness attempt latencies. This runner drives the EXP-6
//! workload (general family, m=4, alpha=2) through every layer that records
//! one — BAL, per-machine YDS, local search through the oracle, and a full
//! harness solve — inside a single probe session, then checks each
//! histogram on read-back:
//!
//! * it captured samples (`count > 0`), and
//! * its derived quantiles are coherent (`p50 <= p90 <= p99 <= max`) — the
//!   clamp-to-observed-max guarantee of the log2 bucket scheme.
//!
//! Built with `--features probe-alloc` it additionally asserts that the
//! counting allocator attributed a nonzero number of heap bytes/allocations
//! to spans (`alloc.bytes` / `alloc.count` in the trace).

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_core::list::marginal_energy_greedy;
use ssp_core::local_search::improve;
use ssp_core::rr::rr_yds;
use ssp_harness::{Algo, SolveOptions};
use ssp_migratory::bal::bal;
use ssp_workloads::{families, subseed};

/// The five distributions the deep-profiling layer records.
const HISTOGRAMS: [&str; 5] = [
    "maxflow.dinic.path_len",
    "bal.bisect.probes",
    "yds.peel_width",
    "eval.reject_tier",
    "solve.attempt_us",
];

/// Run EXP-20.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let n = cfg.pick(200, 50);
    let inst = families::general(n, 4, 2.0).gen(subseed(cfg.seed ^ 0x20, n as u64));
    let session = ssp_probe::Session::begin()
        .expect("exp20 needs the probe idle (the runner owns its session)");

    // BAL: Dinic path lengths + per-round bisection probe counts.
    let sol = bal(&inst);
    assert!(std::hint::black_box(sol.flow_computations) > 0);
    // Per-machine YDS: peel interval widths.
    let schedule = rr_yds(&inst);
    assert!(!schedule.is_empty());
    // Local search through the YdsEval oracle: rejection tiers.
    let seed_assignment = marginal_energy_greedy(&inst);
    let improved = improve(&inst, &seed_assignment, Default::default());
    assert!(!improved.assignment.is_empty());
    // The harness chain: attempt latencies.
    let report = ssp_harness::solve(&inst, Algo::Rr, &SolveOptions::default());
    assert!(
        report.outcome.is_some(),
        "harness solve failed:\n{}",
        report.summary()
    );

    let trace = session.end();
    trace.validate().expect("exp20 trace must be well-formed");

    let mut t = Table::new(
        "EXP-20 — histogram coherence on the EXP-6 workload (one session, all layers)",
        &["histogram", "count", "p50", "p90", "p99", "max", "mean"],
    );
    for name in HISTOGRAMS {
        let h = trace
            .hist(name)
            .unwrap_or_else(|| panic!("histogram '{name}' recorded no samples"));
        assert!(h.count > 0, "{name}: empty histogram survived read-back");
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= h.max,
            "{name}: incoherent quantiles p50={p50} p90={p90} p99={p99} max={}",
            h.max
        );
        t.push(vec![
            Cell::Text(name.to_string()),
            Cell::Int(h.count as i64),
            Cell::Int(p50 as i64),
            Cell::Int(p90 as i64),
            Cell::Int(p99 as i64),
            Cell::Int(h.max as i64),
            Cell::Num(h.mean(), 1),
        ]);
    }

    let alloc_bytes = trace.counter("alloc.bytes");
    let alloc_count = trace.counter("alloc.count");
    #[cfg(feature = "probe-alloc")]
    assert!(
        alloc_bytes > 0 && alloc_count > 0,
        "probe-alloc is enabled but the trace attributes no allocations"
    );
    let mut a = Table::new(
        "EXP-20 — span-attributed allocation totals (nonzero only under --features probe-alloc)",
        &["counter", "value"],
    );
    a.push(vec![
        Cell::Text("alloc.bytes".to_string()),
        Cell::Int(alloc_bytes as i64),
    ]);
    a.push(vec![
        Cell::Text("alloc.count".to_string()),
        Cell::Int(alloc_count as i64),
    ]);
    vec![t, a]
}
