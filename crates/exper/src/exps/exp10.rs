//! EXP-10 — "Table 8": ablations of the design choices called out in
//! DESIGN.md.
//!
//! 1. **Rounding order** inside RelaxRound (the `(2−1/m)` list step): EDF
//!    (default) vs release order vs longest-relaxed-time-first.
//! 2. **Classification base** inside ClassifiedRR: base 2 (the paper's
//!    power-of-two classes) vs finer (1.3) and coarser (8, 1e9 ≈ plain RR)
//!    classes.
//!
//! Ratios against the migratory lower bound, as in EXP-3/4.

use crate::par::par_map;
use crate::table::{max, mean, Table};
use crate::RunCfg;
use ssp_core::classified::classified_assignment_with_base;
use ssp_core::relax::{relax_round_with, RoundingOrder};
use ssp_migratory::bal::bal;
use ssp_workloads::{families, subseed};

/// Run EXP-10.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let n = cfg.pick(80usize, 16);
    let seeds = cfg.pick(12usize, 2);
    let (m, alpha) = (4usize, 2.5f64);

    // Ablation 1: rounding order (unit arbitrary — the R2 regime).
    let mut t1 = Table::new(
        "Table 8a — RelaxRound rounding-order ablation (unit arbitrary, m=4, alpha=2.5)",
        &["order", "mean ratio", "max ratio"],
    );
    for (name, order) in [
        (
            "earliest-deadline (default)",
            RoundingOrder::EarliestDeadline,
        ),
        ("release order", RoundingOrder::Release),
        (
            "longest-relaxed-time first",
            RoundingOrder::LongestRelaxedTime,
        ),
    ] {
        let items: Vec<u64> = (0..seeds as u64).collect();
        let ratios = par_map(items, |&s| {
            let inst = families::unit_arbitrary(n, m, alpha).gen(subseed(cfg.seed ^ 0x10A, s));
            let lb = bal(&inst).energy;
            super::ratio_of(&inst, &relax_round_with(&inst, order), lb)
        });
        assert!(ratios.iter().all(|&r| r >= 1.0 - 1e-6));
        t1.push(vec![name.into(), mean(&ratios).into(), max(&ratios).into()]);
    }

    // Ablation 2: classification base (weighted agreeable — the R3 regime).
    let mut t2 = Table::new(
        "Table 8b — ClassifiedRR class-base ablation (weighted agreeable, m=4, alpha=2.5)",
        &["class base", "mean ratio", "max ratio"],
    );
    for (name, base) in [
        ("1.3 (fine classes)", 1.3),
        ("2 (paper's choice)", 2.0),
        ("8 (coarse classes)", 8.0),
        ("1e9 (single class = plain RR)", 1e9),
    ] {
        let items: Vec<u64> = (0..seeds as u64).collect();
        let ratios = par_map(items, |&s| {
            let inst = families::weighted_agreeable(n, m, alpha).gen(subseed(cfg.seed ^ 0x10B, s));
            let lb = bal(&inst).energy;
            super::ratio_of(&inst, &classified_assignment_with_base(&inst, base), lb)
        });
        assert!(ratios.iter().all(|&r| r >= 1.0 - 1e-6));
        t2.push(vec![name.into(), mean(&ratios).into(), max(&ratios).into()]);
    }

    vec![t1, t2]
}
