//! EXP-13 — "Figure 5": the flow-time / energy trade-off (multicriteria
//! context of the paper's introduction; Pruhs–Uthaisombut–Woeginger's
//! budgeted objective for unit jobs on one processor).
//!
//! Sweep the energy budget and record the optimal total flow time alongside
//! the fixed-speed baseline spending the same energy. Expected shape: the
//! Pareto frontier is decreasing and convex (in log-log), the budget is
//! spent (up to the small Lagrangian-extreme jumps where the chain
//! partition changes), and the optimum beats the fixed-speed clock at every
//! point except the degenerate extremes.

use crate::table::{Cell, Table};
use crate::RunCfg;
use rand_free_releases::poisson_releases;
use ssp_single::flowtime::{fixed_speed_flow, min_flow_time_budget};

/// Deterministic pseudo-Poisson releases without an RNG dependency in this
/// module (SplitMix-derived uniforms through the inverse-exponential map).
mod rand_free_releases {
    use ssp_workloads::subseed;

    /// `n` arrivals with mean gap `1/rate`.
    pub fn poisson_releases(n: usize, rate: f64, seed: u64) -> Vec<f64> {
        let mut t = 0.0;
        (0..n)
            .map(|i| {
                let u = (subseed(seed, i as u64) >> 11) as f64 / (1u64 << 53) as f64;
                t += -(1.0 - u).ln() / rate;
                t
            })
            .collect()
    }
}

/// Run EXP-13.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let n = cfg.pick(40usize, 12);
    let alpha = 2.0f64;
    let releases = poisson_releases(n, 1.2, cfg.seed ^ 0x133);

    let mut t = Table::new(
        "Figure 5 (series) — flow-time vs energy budget (unit jobs, 1 processor)",
        &[
            "budget E",
            "optimal flow",
            "energy used",
            "fixed-speed flow",
            "improvement %",
        ],
    );
    let budgets: Vec<f64> = cfg
        .pick(vec![0.5, 1.0, 2.0, 4.0, 8.0], vec![1.0, 4.0])
        .into_iter()
        .map(|f| f * n as f64)
        .collect();
    let mut prev_flow = f64::INFINITY;
    let mut points = Vec::new();
    for &budget in &budgets {
        let sol = min_flow_time_budget(&releases, alpha, budget);
        assert!(sol.energy <= budget * (1.0 + 1e-6), "budget exceeded");
        // The lambda-path jumps where the chain partition changes; the
        // solver returns the best extreme point within budget (see the
        // flowtime module docs), so allow a small underspend.
        assert!(
            sol.energy >= budget * (1.0 - 0.05),
            "budget far from binding: {} of {budget}",
            sol.energy
        );
        assert!(
            sol.total_flow < prev_flow,
            "frontier must strictly decrease"
        );
        prev_flow = sol.total_flow;
        // Fixed-speed baseline with identical energy.
        let s = (budget / n as f64).powf(1.0 / (alpha - 1.0));
        let fixed = fixed_speed_flow(&releases, s);
        assert!(
            sol.total_flow <= fixed * (1.0 + 1e-9),
            "optimum lost to the fixed clock: {} vs {fixed}",
            sol.total_flow
        );
        t.push(vec![
            Cell::Num(budget, 2),
            Cell::Num(sol.total_flow, 4),
            Cell::Num(sol.energy, 4),
            Cell::Num(fixed, 4),
            Cell::Num((1.0 - sol.total_flow / fixed) * 100.0, 2),
        ]);
        points.push((sol.energy, sol.total_flow));
    }
    // Convexity of the frontier in (energy, flow) space: the returned points
    // are Pareto-extreme, so consecutive slopes must be nondecreasing.
    let slopes: Vec<f64> = points
        .windows(2)
        .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
        .collect();
    for pair in slopes.windows(2) {
        assert!(
            pair[1] >= pair[0] * (1.0 + 1e-9) || pair[1] >= pair[0] - 1e-9,
            "frontier not convex: slopes {pair:?}"
        );
    }
    vec![t]
}
