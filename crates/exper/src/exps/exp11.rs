//! EXP-11 — "Table 9": discrete DVFS levels (extension).
//!
//! Real processors expose a finite frequency table, not the continuum the
//! paper assumes. The classic two-level-mixing reduction converts any
//! continuous-speed schedule into a level-respecting one with the same
//! feasibility; this experiment measures the *energy overhead* of that
//! conversion as the level grid gets finer, alongside the analytic
//! worst-case chord bound for the widest bracket of the grid.
//!
//! Expected shape: overhead ≥ 1, strictly decreasing in the number of
//! levels, and far below the worst-case bound (the optimum spends most time
//! near its few distinct speeds, not at the worst point of a bracket).

use crate::par::par_map;
use crate::table::{max, mean, Cell, Table};
use crate::RunCfg;
use ssp_migratory::bal::bal;
use ssp_model::quantize::{quantize_speeds, two_level_overhead, SpeedLevels};
use ssp_workloads::{families, subseed};

/// Run EXP-11.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 9 — discrete DVFS: energy overhead of two-level mixing vs grid size",
        &[
            "levels",
            "mean overhead",
            "max overhead",
            "worst-bracket chord bound",
        ],
    );
    let n = cfg.pick(40usize, 12);
    let seeds = cfg.pick(12usize, 2);
    let (m, alpha) = (3usize, 2.5f64);
    let level_counts: Vec<usize> = cfg.pick(vec![2, 4, 8, 16, 32], vec![2, 8]);

    let mut prev_mean = f64::INFINITY;
    for &count in &level_counts {
        let items: Vec<u64> = (0..seeds as u64).collect();
        let rows = par_map(items, |&s| {
            let inst = families::general(n, m, alpha).gen(subseed(cfg.seed ^ 0x111, s));
            let sol = bal(&inst);
            let schedule = sol.schedule(&inst);
            // Grid spanning the optimum's own speed range (what a designer
            // sizing a DVFS table for this workload would pick).
            let smin = sol.speeds.min_speed();
            let smax = sol.speeds.max_speed() * (1.0 + 1e-9);
            let levels = SpeedLevels::geometric(smin, smax, count.max(2)).expect("valid grid");
            let q = quantize_speeds(&schedule, &levels).expect("grid covers the optimum's speeds");
            let ratio = q.energy(alpha) / sol.energy;
            // Worst bracket of this grid (constant ratio grid => it's the
            // same chord bound everywhere; compute on the first bracket).
            let chord = two_level_overhead(levels.levels()[0], levels.levels()[1], alpha);
            (ratio, chord)
        });
        let ratios: Vec<f64> = rows.iter().map(|r| r.0).collect();
        // Each seed sizes its own grid, so each row has its own chord bound;
        // compare per row, report the largest in the table.
        let chord = rows.iter().map(|r| r.1).fold(1.0f64, f64::max);
        assert!(
            ratios.iter().all(|&r| r >= 1.0 - 1e-9),
            "quantization reduced energy"
        );
        for (ratio, bound) in &rows {
            assert!(
                *ratio <= bound + 1e-9,
                "overhead {ratio} above this grid's chord bound {bound}"
            );
        }
        let m_ratio = mean(&ratios);
        assert!(
            m_ratio <= prev_mean + 1e-9,
            "overhead should shrink with finer grids: {m_ratio} after {prev_mean}"
        );
        prev_mean = m_ratio;
        t.push(vec![
            count.into(),
            Cell::Num(m_ratio, 5),
            Cell::Num(max(&ratios), 5),
            Cell::Num(chord, 5),
        ]);
    }
    vec![t]
}
