//! EXP-18 — warm-start parametric max-flow: cold vs warm bisection work.
//!
//! The BAL bisection evaluates a ladder of uniform-speed feasibility
//! probes that differ only in the source-edge capacities of the WAP
//! network. PR 3 made the flow kernel parametric (`set_capacity` +
//! `max_flow_incremental`), so a probe repairs the previous flow instead
//! of rebuilding it. This runner replays the *same* bisection transcript
//! both ways on EXP-6's workload family and compares the total
//! augmentation work (probe counters `maxflow.dinic.augmentations` +
//! `maxflow.dinic.drain_paths` — drains are charged to the warm side) and
//! wall time.
//!
//! Asserted acceptance: warm-start cuts the total augmentation work by at
//! least **2×** aggregated over the size sweep, both searches converge to
//! the same critical speed, and the warm-started full BAL solve still
//! passes the KKT optimality certificate on every instance.

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_migratory::bal::bal;
use ssp_migratory::kkt::certify;
use ssp_migratory::wap::{Wap, WapKernel};
use ssp_model::numeric::{bisect_threshold, Tol, BINARY_SEARCH_REL_WIDTH};
use ssp_model::Instance;
use ssp_workloads::{families, subseed};
use std::time::Instant;

/// Aggregate acceptance threshold on cold/warm augmentation work.
const MIN_WORK_RATIO: f64 = 2.0;

/// Snapshot the Dinic work counters (augmenting paths + drain paths).
fn work_counters() -> (u64, u64) {
    (
        ssp_probe::counter_value("maxflow.dinic.augmentations"),
        ssp_probe::counter_value("maxflow.dinic.drain_paths"),
    )
}

/// The uniform-speed bisection bracket used by `min_peak_speed`.
fn speed_bracket(instance: &Instance, wap: &Wap) -> (f64, f64) {
    let n = instance.len();
    let lo = instance.max_density();
    let mut hi = lo;
    for j in 0..wap.num_intervals() {
        if wap.capacity(j) <= 0.0 {
            continue;
        }
        let dens: f64 = (0..n)
            .filter(|&i| wap.alive_of(i).contains(&j))
            .map(|i| instance.job(i).density())
            .sum();
        hi = hi.max(wap.length(j) * dens / wap.capacity(j));
    }
    (lo, hi * (1.0 + 1e-12))
}

/// One measured bisection: returns (critical speed, wall ms, augmentation
/// work including drains, probe count).
fn run_bisection(
    instance: &Instance,
    wap: &Wap,
    lo: f64,
    hi: f64,
    warm: bool,
) -> (f64, f64, u64, u64) {
    let works: Vec<f64> = instance.jobs().iter().map(|j| j.work).collect();
    let mut p = vec![0.0; works.len()];
    let mut probes = 0u64;
    let (aug0, drain0) = work_counters();
    let t0 = Instant::now();
    let v = if warm {
        let mut solver = wap.solver();
        let mut feasible = |v: f64| -> bool {
            probes += 1;
            for (pi, w) in p.iter_mut().zip(&works) {
                *pi = w / v;
            }
            solver.solve(&p);
            solver.feasible()
        };
        let mut hi = hi;
        while !feasible(hi) {
            hi *= 2.0;
        }
        bisect_threshold(lo.min(hi), hi, BINARY_SEARCH_REL_WIDTH, feasible).1
    } else {
        let mut feasible = |v: f64| -> bool {
            probes += 1;
            for (pi, w) in p.iter_mut().zip(&works) {
                *pi = w / v;
            }
            wap.solve(&p).feasible()
        };
        let mut hi = hi;
        while !feasible(hi) {
            hi *= 2.0;
        }
        bisect_threshold(lo.min(hi), hi, BINARY_SEARCH_REL_WIDTH, feasible).1
    };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let (aug1, drain1) = work_counters();
    (v, ms, (aug1 - aug0) + (drain1 - drain0), probes)
}

/// Run EXP-18.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    // Counter deltas need an active probe session; the ssp-exper binary
    // leaves installation to this runner (like EXP-17), while `all`-style
    // ambient sessions are reused as-is.
    let own_session = ssp_probe::Session::begin();

    let mut t = Table::new(
        "EXP-18 — cold vs warm parametric bisection (m=4, alpha=2, general family)",
        &[
            "n",
            "probes",
            "cold ms",
            "warm ms",
            "cold aug work",
            "warm aug work",
            "work ratio",
            "KKT",
        ],
    );
    let sizes: Vec<usize> = cfg.pick(vec![50, 100, 200, 400], vec![25, 50]);
    let mut cold_total = 0u64;
    let mut warm_total = 0u64;
    for &n in &sizes {
        let inst = families::general(n, 4, 2.0).gen(subseed(cfg.seed ^ 0x18, n as u64));
        let (mut wap, _) = Wap::from_instance(&inst);
        // This experiment measures the *generic flow engine's* warm-start
        // repair; the sweep kernel never touches those counters.
        wap.set_kernel(WapKernel::Flow);
        let (lo, hi) = speed_bracket(&inst, &wap);
        let (v_cold, cold_ms, cold_work, probes_cold) = run_bisection(&inst, &wap, lo, hi, false);
        let (v_warm, warm_ms, warm_work, probes_warm) = run_bisection(&inst, &wap, lo, hi, true);
        assert_eq!(
            probes_cold, probes_warm,
            "n={n}: transcripts diverged — warm feasibility differs from cold"
        );
        assert!(
            (v_cold - v_warm).abs() <= 1e-9 * v_cold,
            "n={n}: critical speed mismatch, cold {v_cold} vs warm {v_warm}"
        );
        // The warm-started full solve must still be certifiably optimal.
        let sol = bal(&inst);
        certify(&inst, &sol, Tol::rel(1e-6))
            .unwrap_or_else(|e| panic!("n={n}: KKT certificate failed on warm BAL: {e}"));
        let first_round = sol.rounds.first().map(|r| r.speed).unwrap_or(0.0);
        assert!(
            (first_round - v_warm).abs() <= 1e-8 * v_warm,
            "n={n}: BAL first critical speed {first_round} vs bisection {v_warm}"
        );
        cold_total += cold_work;
        warm_total += warm_work;
        let ratio = cold_work as f64 / (warm_work.max(1)) as f64;
        t.push(vec![
            n.into(),
            (probes_cold as usize).into(),
            Cell::Num(cold_ms, 2),
            Cell::Num(warm_ms, 2),
            Cell::Int(cold_work as i64),
            Cell::Int(warm_work as i64),
            Cell::Num(ratio, 2),
            Cell::Text("ok".to_string()),
        ]);
    }
    let total_ratio = cold_total as f64 / warm_total.max(1) as f64;
    assert!(
        total_ratio >= MIN_WORK_RATIO,
        "warm-start saved only {total_ratio:.2}x augmentation work \
         (cold {cold_total} vs warm {warm_total}); EXP-18 requires >= {MIN_WORK_RATIO}x"
    );
    let mut s = Table::new(
        "EXP-18 (summary) — aggregate augmentation work",
        &["cold total", "warm total", "ratio", "bound"],
    );
    s.push(vec![
        Cell::Int(cold_total as i64),
        Cell::Int(warm_total as i64),
        Cell::Num(total_ratio, 2),
        Cell::Num(MIN_WORK_RATIO, 1),
    ]);
    if let Some(session) = own_session {
        let _ = session.end();
    }
    vec![t, s]
}
