//! EXP-12 — "Table 10": bounded maximum speed (extension).
//!
//! Real processors cap at `s_max`. Below the workload's min-peak speed some
//! jobs must be dropped; this experiment sweeps the cap as a fraction of
//! that peak and measures admitted-job fractions for the greedy admission
//! policy against the exact optimum (subset search), plus how often greedy
//! is exactly optimal.
//!
//! Expected shape: throughput monotone in the cap, 100 % at the peak
//! (that's the definition of the peak), greedy within a few percent of the
//! exact optimum throughout.

use crate::par::par_map;
use crate::table::{mean, min, Cell, Table};
use crate::RunCfg;
use ssp_core::throughput::{max_throughput_exact, max_throughput_greedy};
use ssp_migratory::bounded::min_peak_speed;
use ssp_workloads::{families, subseed};

/// Run EXP-12.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 10 — speed cap vs throughput (unit arbitrary, m=2, n=14)",
        &[
            "cap / min-peak",
            "greedy mean frac",
            "exact mean frac",
            "greedy/exact min",
            "greedy optimal in",
        ],
    );
    let n = 14usize; // exact subset search stays comfortable
    let seeds = cfg.pick(10usize, 2);
    let factors: Vec<f64> = cfg.pick(vec![0.4, 0.6, 0.8, 0.95, 1.0], vec![0.5, 1.0]);
    let mut prev_exact = 0.0f64;
    for &factor in &factors {
        let items: Vec<u64> = (0..seeds as u64).collect();
        let rows = par_map(items, |&s| {
            let inst = families::unit_arbitrary(n, 2, 2.0).gen(subseed(cfg.seed ^ 0x122, s));
            let cap = min_peak_speed(&inst) * factor * (1.0 + 1e-9);
            let g = max_throughput_greedy(&inst, cap).throughput();
            let e = max_throughput_exact(&inst, cap).throughput();
            assert!(g <= e, "greedy {g} above exact {e}?!");
            (g as f64 / n as f64, e as f64 / n as f64)
        });
        let greedy: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let exact: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let ratio: Vec<f64> = rows
            .iter()
            .map(|r| if r.1 > 0.0 { r.0 / r.1 } else { 1.0 })
            .collect();
        let optimal = rows.iter().filter(|r| r.0 == r.1).count();
        if (factor - 1.0).abs() < 1e-12 {
            assert!(
                exact.iter().all(|&f| (f - 1.0).abs() < 1e-12),
                "everything must fit at the min-peak cap"
            );
        }
        let e_mean = mean(&exact);
        assert!(
            e_mean >= prev_exact - 1e-12,
            "exact throughput decreased as the cap rose"
        );
        prev_exact = e_mean;
        t.push(vec![
            Cell::Num(factor, 2),
            mean(&greedy).into(),
            e_mean.into(),
            min(&ratio).into(),
            format!("{optimal}/{seeds}").into(),
        ]);
    }
    vec![t]
}
