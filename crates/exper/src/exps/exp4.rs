//! EXP-4 — "Table 4 / Figure 2": approximation quality in the agreeable
//! arbitrary-work regime against the paper's `α^α · 2^{4α}` factor (R3).
//!
//! Same methodology as EXP-3 (ratios against the certified migratory lower
//! bound). The analytic factor here is enormous (`α=3` gives `3^3·2^12 ≈
//! 1.1e5`); the reproduction shape is that measured ratios stay `O(1)` while
//! the bound explodes — classification is cheap in practice, expensive only
//! in analysis.

use crate::par::par_map;
use crate::table::{max, mean, Table};
use crate::RunCfg;
use ssp_core::classified::classified_assignment;
use ssp_core::list::marginal_energy_greedy;
use ssp_core::rr::rr_assignment;
use ssp_migratory::bal::bal;
use ssp_workloads::{families, subseed};

/// Run EXP-4.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 4 — agreeable deadlines, heterogeneous works: ratio to migratory LB",
        &[
            "m",
            "alpha",
            "bound a^a 2^{4a}",
            "ClassifiedRR mean",
            "ClassifiedRR max",
            "plain RR mean",
            "Greedy mean",
        ],
    );
    let n = cfg.pick(100usize, 20);
    let seeds = cfg.pick(10usize, 2);
    let ms: Vec<usize> = cfg.pick(vec![2, 4, 8], vec![2, 4]);
    let alphas: Vec<f64> = cfg.pick(vec![1.5, 2.0, 2.5, 3.0], vec![2.0]);
    for &m in &ms {
        for &alpha in &alphas {
            let items: Vec<u64> = (0..seeds as u64).collect();
            let rows = par_map(items, |&s| {
                let inst = families::weighted_agreeable(n, m, alpha).gen(subseed(
                    cfg.seed ^ 0x44,
                    s * 131 + m as u64 * 11 + (alpha * 10.0) as u64,
                ));
                let lb = bal(&inst).energy;
                (
                    super::ratio_of(&inst, &classified_assignment(&inst), lb),
                    super::ratio_of(&inst, &rr_assignment(&inst), lb),
                    super::ratio_of(&inst, &marginal_energy_greedy(&inst), lb),
                )
            });
            let class: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let rr: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let greedy: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let bound = super::bound_r3(alpha);
            assert!(class.iter().all(|&r| r >= 1.0 - 1e-6));
            assert!(
                max(&class) <= bound,
                "ClassifiedRR exceeded the paper factor: {} > {bound}",
                max(&class)
            );
            t.push(vec![
                m.into(),
                alpha.into(),
                bound.into(),
                mean(&class).into(),
                max(&class).into(),
                mean(&rr).into(),
                mean(&greedy).into(),
            ]);
        }
    }
    vec![t]
}
