//! EXP-6 — "Figure 3": complexity scaling.
//!
//! The paper's headline complexity claims, measured:
//! * BAL runs in `O(n · f(n) · log P)` — the table reports wall time, the
//!   number of max-flow computations, and the number of peeling rounds as
//!   `n` doubles; flow count should grow roughly linearly in the number of
//!   rounds times the `log P` bisection depth.
//! * RR-YDS is `O(n log n)` assignment + per-machine YDS (`O((n/m)^3)`
//!   worst case) — wall time should stay far below BAL's.
//!
//! Timings are sequential (no `par_map`) so the numbers are clean.

use crate::table::Table;
use crate::RunCfg;
use ssp_core::rr::rr_yds;
use ssp_migratory::bal::bal;
use ssp_workloads::{families, subseed};
use std::time::Instant;

/// Run EXP-6.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 3 (series) — scaling with n (m=4, alpha=2, general family)",
        &[
            "n",
            "BAL ms",
            "BAL flows",
            "BAL rounds",
            "flows per round",
            "bisect steps",
            "dinic phases",
            "RR-YDS ms",
        ],
    );
    let sizes: Vec<usize> = cfg.pick(vec![25, 50, 100, 200, 400, 800], vec![25, 50, 100]);
    let reps = cfg.pick(3usize, 1);
    for &n in &sizes {
        let inst = families::general(n, 4, 2.0).gen(subseed(cfg.seed ^ 0x66, n as u64));
        // Median-of-reps wall time for BAL.
        let mut bal_ms = Vec::new();
        let mut flows = 0usize;
        let mut rounds = 0usize;
        // Probe-counter deltas per run (zero when no session is active,
        // e.g. in the quick-mode smoke test; the ssp-exper binary installs
        // a session per experiment, so CSV regeneration records them).
        let mut bisect_steps = 0u64;
        let mut dinic_phases = 0u64;
        for _ in 0..reps {
            let b0 = ssp_probe::counter_value("bal.bisect_steps");
            let p0 = ssp_probe::counter_value("maxflow.dinic.phases");
            let t0 = Instant::now();
            let sol = bal(&inst);
            bal_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            bisect_steps = ssp_probe::counter_value("bal.bisect_steps") - b0;
            dinic_phases = ssp_probe::counter_value("maxflow.dinic.phases") - p0;
            flows = sol.flow_computations;
            rounds = sol.rounds.len();
        }
        bal_ms.sort_by(f64::total_cmp);
        let bal_med = bal_ms[bal_ms.len() / 2];

        let mut rr_ms = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            let s = rr_yds(&inst);
            rr_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            assert!(!s.is_empty());
        }
        rr_ms.sort_by(f64::total_cmp);
        let rr_med = rr_ms[rr_ms.len() / 2];

        assert!(rounds >= 1 && flows >= rounds, "flow accounting broken");
        t.push(vec![
            n.into(),
            crate::table::Cell::Num(bal_med, 2),
            flows.into(),
            rounds.into(),
            crate::table::Cell::Num(flows as f64 / rounds as f64, 1),
            (bisect_steps as usize).into(),
            (dinic_phases as usize).into(),
            crate::table::Cell::Num(rr_med, 2),
        ]);
    }
    vec![t]
}
