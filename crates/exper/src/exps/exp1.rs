//! EXP-1 — "Table 1": round-robin optimality on unit-work agreeable
//! instances (paper result R1).
//!
//! Part A compares RR-YDS with the exact exponential solver on small
//! instances: the ratio must be exactly 1 (up to numerics) in every cell.
//! Part B scales `n` up and reports RR against the *migratory* lower bound —
//! the residual gap there is the (small) price of forbidding migration, not
//! a deficiency of RR.

use crate::par::par_map;
use crate::table::{max, mean, Table};
use crate::RunCfg;
use ssp_core::exact::exact_nonmigratory;
use ssp_core::rr::rr_assignment;
use ssp_migratory::bal::bal;
use ssp_workloads::{families, subseed};

/// Run EXP-1.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t_exact = Table::new(
        "Table 1a — RR vs exact optimum (unit works, agreeable deadlines)",
        &[
            "m",
            "alpha",
            "n",
            "seeds",
            "mean RR/OPT",
            "max RR/OPT",
            "optimal in",
        ],
    );
    let seeds = cfg.pick(20usize, 3);
    let sizes: Vec<usize> = cfg.pick(vec![8, 10], vec![6]);
    for &m in cfg.pick(&[2usize, 3][..], &[2][..]) {
        for &alpha in cfg.pick(&[2.0f64, 3.0][..], &[2.0][..]) {
            for &n in &sizes {
                let jobs: Vec<u64> = (0..seeds as u64).collect();
                let ratios = par_map(jobs, |&s| {
                    let inst = families::unit_agreeable(n, m, alpha)
                        .gen(subseed(cfg.seed, s * 1000 + n as u64));
                    let rr = super::ratio_of(&inst, &rr_assignment(&inst), 1.0);
                    let opt = exact_nonmigratory(&inst).energy;
                    rr / opt
                });
                let optimal = ratios.iter().filter(|&&r| r <= 1.0 + 1e-6).count();
                assert!(
                    max(&ratios) <= 1.0 + 1e-6,
                    "R1 violated: RR suboptimal on a unit agreeable instance \
                     (m={m}, alpha={alpha}, n={n}, max ratio {})",
                    max(&ratios)
                );
                t_exact.push(vec![
                    m.into(),
                    alpha.into(),
                    n.into(),
                    seeds.into(),
                    mean(&ratios).into(),
                    max(&ratios).into(),
                    format!("{optimal}/{seeds}").into(),
                ]);
            }
        }
    }

    let mut t_scale = Table::new(
        "Table 1b — RR vs migratory lower bound at scale (unit agreeable)",
        &["m", "n", "seeds", "mean RR/LB", "max RR/LB"],
    );
    let big: Vec<usize> = cfg.pick(vec![50, 100, 200, 400], vec![30]);
    let seeds_b = cfg.pick(10usize, 2);
    for &m in cfg.pick(&[2usize, 4, 8][..], &[2, 4][..]) {
        for &n in &big {
            let items: Vec<u64> = (0..seeds_b as u64).collect();
            let ratios = par_map(items, |&s| {
                let inst = families::unit_agreeable(n, m, 2.0)
                    .gen(subseed(cfg.seed ^ 0xB, s * 7919 + n as u64));
                let rr = super::ratio_of(&inst, &rr_assignment(&inst), 1.0);
                rr / bal(&inst).energy
            });
            // Migration can only help, so the ratio is >= 1; it must also
            // stay modest on this easy family.
            assert!(ratios.iter().all(|&r| r >= 1.0 - 1e-6));
            t_scale.push(vec![
                m.into(),
                n.into(),
                seeds_b.into(),
                mean(&ratios).into(),
                max(&ratios).into(),
            ]);
        }
    }
    vec![t_exact, t_scale]
}
