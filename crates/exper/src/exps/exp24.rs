//! EXP-24 — the structure-aware WAP sweep kernel: per-probe kernel ratio
//! and the end-to-end BAL sweep.
//!
//! Every BAL feasibility probe solves the same Horn-reduction network; PR 9
//! added an interval sweep kernel (`SweepFlow`) that water-fills
//! deadline-ordered jobs through the consecutive-ones structure instead of
//! running a blocking-flow search, falling back to the generic engine only
//! when its residual certificate declines. This runner solves each family
//! twice — kernel `Auto` (sweep + fallback) and kernel `Flow` (generic
//! engine only) — and re-states the dispatch contracts as assertions:
//!
//! 1. **Transcript identity.** The kernels must agree *bitwise* on the
//!    full probe transcript (every `(speed, feasible)` pair, every round
//!    speed, every peel set) and on the final energy: the sweep is a
//!    different route to the same flow values and the same canonical cuts,
//!    so kernel choice must be invisible in the output.
//! 2. **Certified optimality.** The `Auto` solution must pass the KKT
//!    certificate — the sweep's cut sides feed `cut_speed_bound`, so a
//!    wrong certificate would surface here.
//! 3. **Engagement.** On the laminar family (deep nesting, the workload
//!    the kernel was built for) at least half the probes must take the
//!    fast path; a silent always-fallback regression fails the run.
//!
//! The table reports the per-probe ratio (generic-kernel ms per probe over
//! auto-kernel ms per probe) next to the fast-path share and the sweep's
//! operation count, so the fast path's contribution is visible separately
//! from the ladder's probe-count wins (EXP-23 / BENCH_bal.json).

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_migratory::bal::{try_bal_with_wap_strategy, BalSolution, ProbeStrategy};
use ssp_migratory::kkt::certify;
use ssp_migratory::wap::{Wap, WapKernel};
use ssp_model::numeric::Tol;
use ssp_model::resource::Budget;
use ssp_model::Instance;
use ssp_workloads::{families, subseed};
use std::time::Instant;

/// Minimum fast-path share of probes on the laminar family.
const MIN_LAMINAR_FAST_SHARE: f64 = 0.5;

/// Solve with the requested WAP kernel; returns the solution, wall ms, and
/// the `(flow_calls, fast_path, fast_fallback, sweep_ops)` counter deltas.
fn solve_with_kernel(instance: &Instance, kernel: WapKernel) -> (BalSolution, f64, [u64; 4]) {
    const COUNTERS: [&str; 4] = [
        "wap.flow_calls",
        "wap.fast_path",
        "wap.fast_fallback",
        "wap.sweep_ops",
    ];
    let before = COUNTERS.map(ssp_probe::counter_value);
    let t0 = Instant::now();
    let (mut wap, intervals) = Wap::from_instance(instance);
    wap.set_kernel(kernel);
    let sol = try_bal_with_wap_strategy(
        instance,
        wap,
        intervals,
        Budget::unlimited(),
        ProbeStrategy::Ladder,
    )
    .expect("generated instances are feasible");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = COUNTERS.map(ssp_probe::counter_value);
    let mut delta = [0u64; 4];
    for k in 0..4 {
        delta[k] = after[k] - before[k];
    }
    (sol, ms, delta)
}

/// Bitwise transcript equality: probes, round speeds, peel sets, energy.
fn transcripts_identical(a: &BalSolution, b: &BalSolution) -> bool {
    a.energy.to_bits() == b.energy.to_bits()
        && a.flow_computations == b.flow_computations
        && a.rounds.len() == b.rounds.len()
        && a.rounds.iter().zip(&b.rounds).all(|(ra, rb)| {
            ra.speed.to_bits() == rb.speed.to_bits()
                && ra.jobs == rb.jobs
                && ra.probes.len() == rb.probes.len()
                && ra
                    .probes
                    .iter()
                    .zip(&rb.probes)
                    .all(|(pa, pb)| pa.0.to_bits() == pb.0.to_bits() && pa.1 == pb.1)
        })
}

/// Run EXP-24.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    // Counter deltas need an active probe session (EXP-18 precedent);
    // ambient sessions from `all`-style runs are reused as-is.
    let own_session = ssp_probe::Session::begin();

    let machines = 4;
    let alpha = 2.0;
    let sizes: &[usize] = if cfg.quick { &[60] } else { &[100, 300] };

    let mut table = Table::new(
        "EXP-24 — WAP kernel dispatch: sweep fast path vs generic flow (m=4, alpha=2, ladder)",
        &[
            "family",
            "n",
            "rounds",
            "probes",
            "fast path %",
            "fallbacks",
            "sweep ops/probe",
            "auto ms",
            "flow ms",
            "ms/probe ratio",
        ],
    );

    for (k, family) in ["general", "laminar", "crossing"].iter().enumerate() {
        for (s, &n) in sizes.iter().enumerate() {
            let seed = subseed(cfg.seed ^ 0x24, (k * sizes.len() + s) as u64);
            let instance = match *family {
                "laminar" => families::laminar_nested(n, machines, alpha, seed),
                "crossing" => families::crossing(n, machines, alpha, seed),
                _ => families::general(n, machines, alpha).gen(seed),
            };

            let (auto, auto_ms, auto_counters) = solve_with_kernel(&instance, WapKernel::Auto);
            let (flow, flow_ms, _) = solve_with_kernel(&instance, WapKernel::Flow);
            let [calls, fast, fallbacks, sweep_ops] = auto_counters;

            // Contract 1: kernel choice is invisible in the transcript.
            assert!(
                transcripts_identical(&auto, &flow),
                "{family}/n={n}: sweep and flow kernels produced different transcripts"
            );

            // Contract 2: the dispatched solution is certifiably optimal.
            certify(&instance, &auto, Tol::rel(1e-6))
                .unwrap_or_else(|e| panic!("{family}/n={n}: KKT certificate failed: {e}"));

            // Contract 3: the fast path actually engages on laminar nests.
            let fast_share = fast as f64 / calls.max(1) as f64;
            if *family == "laminar" {
                assert!(
                    fast_share >= MIN_LAMINAR_FAST_SHARE,
                    "{family}/n={n}: fast path took only {:.0}% of {calls} probes \
                     (EXP-24 requires >= {:.0}%)",
                    fast_share * 100.0,
                    MIN_LAMINAR_FAST_SHARE * 100.0
                );
            }

            let probes = auto.flow_computations.max(1);
            table.push(vec![
                Cell::Text(family.to_string()),
                Cell::Int(n as i64),
                Cell::Int(auto.rounds.len() as i64),
                Cell::Int(auto.flow_computations as i64),
                Cell::Num(fast_share * 100.0, 1),
                Cell::Int(fallbacks as i64),
                Cell::Num(sweep_ops as f64 / probes as f64, 1),
                Cell::Num(auto_ms, 2),
                Cell::Num(flow_ms, 2),
                Cell::Num(
                    (flow_ms / probes as f64) / (auto_ms / probes as f64).max(1e-12),
                    2,
                ),
            ]);
        }
    }

    if let Some(session) = own_session {
        let _ = session.end();
    }
    vec![table]
}
