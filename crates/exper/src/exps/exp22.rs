//! EXP-22 — the online arrival stack: streaming dispatch at scale and
//! empirical competitive ratios against the certified migratory bound.
//!
//! Two tables:
//!
//! 1. **Scale.** The bursty stream family pushed through the engine at
//!    growing lengths — 10^4, 10^5 and 10^6 jobs in full mode — with
//!    round-robin dispatch and per-machine incremental OA. The point is
//!    the memory story: `peak_live` (live jobs across all machines) and
//!    `peak_chunk` (the lower-bound buffer) must stay flat while the
//!    stream grows by two orders of magnitude, and compactions must fire.
//!    Both are *asserted*, not just reported, which is what CI's
//!    stream-smoke relies on. The table also reports the incremental
//!    win: the fraction of machine-events that needed a full OA replan
//!    (a naive engine replans at every one).
//!
//! 2. **Ratio grid.** Every stream family × every dispatch policy
//!    (round-robin / load-aware / density-aware, per-machine OA) plus an
//!    AVR column, each reported as the empirical competitive ratio
//!    `energy / Σ chunk-certified migratory OPT`. Every ratio is asserted
//!    `>= 1 - 1e-6` — the bound is certified, so a smaller value is a
//!    bug, not noise. Ratios are *loose* upper estimates of the true
//!    competitive ratio: the chunked bound under-counts OPT across chunk
//!    boundaries (docs/ONLINE.md §5 discusses the direction of every
//!    approximation).

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_online::{EngineOptions, Policy, SchedulerKind, StreamEngine, StreamReport};
use ssp_workloads::{stream_family, subseed, STREAM_FAMILIES};

fn run_stream(
    family: &str,
    n: usize,
    machines: usize,
    alpha: f64,
    policy: Policy,
    scheduler: SchedulerKind,
    seed: u64,
) -> StreamReport {
    let spec = stream_family(family, machines, alpha).expect("known family");
    let mut engine = StreamEngine::new(
        EngineOptions::new(machines, alpha)
            .policy(policy)
            .scheduler(scheduler),
    )
    .expect("valid options");
    for job in spec.jobs(seed).take(n) {
        engine.push(job).expect("generated arrivals are valid");
    }
    engine.finish().expect("finish is total on valid streams")
}

/// Run EXP-22.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let machines = 4;
    let alpha = 2.0;
    let seed = subseed(cfg.seed ^ 0x22, 0);

    // -- Table 1: scale sweep, memory bounded by compaction --
    let sizes: &[usize] = if cfg.quick {
        &[2_000, 20_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut scale = Table::new(
        "EXP-22 — streaming at scale: bursty family, round-robin + incremental OA, m=4, alpha=2",
        &[
            "jobs",
            "energy",
            "certified LB",
            "ratio",
            "peak live",
            "peak chunk",
            "compactions",
            "forced",
            "recompute %",
        ],
    );
    for &n in sizes {
        let r = run_stream(
            "bursty",
            n,
            machines,
            alpha,
            Policy::RoundRobin,
            SchedulerKind::Oa,
            seed,
        );
        let ratio = r.ratio().expect("scale sweep runs with the bound on");
        // The memory claims, asserted: the live window and the chunk
        // buffer must not grow with the stream.
        assert!(ratio >= 1.0 - 1e-6, "certified bound violated at n={n}");
        assert!(r.compactions > 0, "n={n}: compaction never fired");
        assert!(
            r.peak_live < 4_096,
            "n={n}: live window grew to {} — memory is not bounded",
            r.peak_live
        );
        assert!(
            r.peak_chunk <= 4_096,
            "n={n}: chunk buffer {} exceeded window_cap",
            r.peak_chunk
        );
        assert!(
            r.recompute_frac() < 0.5,
            "n={n}: incremental OA replanned at {:.0}% of machine-events",
            r.recompute_frac() * 100.0
        );
        scale.push(vec![
            Cell::Int(n as i64),
            Cell::Num(r.energy, 1),
            Cell::Num(r.lower_bound.unwrap_or(0.0), 1),
            Cell::Num(ratio, 4),
            Cell::Int(r.peak_live as i64),
            Cell::Int(r.peak_chunk as i64),
            Cell::Int(r.compactions as i64),
            Cell::Int(r.forced_compactions as i64),
            Cell::Num(r.recompute_frac() * 100.0, 1),
        ]);
    }

    // -- Table 2: empirical competitive ratios, family × policy --
    let n = cfg.pick(1_200, 120);
    let mut grid = Table::new(
        "EXP-22 — empirical competitive ratio vs the chunk-certified migratory bound (m=3, alpha=2)",
        &["family", "jobs", "rr/OA", "load/OA", "density/OA", "rr/AVR"],
    );
    for (k, family) in STREAM_FAMILIES.iter().enumerate() {
        let s = subseed(cfg.seed ^ 0x22, 1 + k as u64);
        let mut row = vec![Cell::Text(family.to_string()), Cell::Int(n as i64)];
        for (policy, scheduler) in [
            (Policy::RoundRobin, SchedulerKind::Oa),
            (Policy::LoadAware, SchedulerKind::Oa),
            (Policy::DensityAware, SchedulerKind::Oa),
            (Policy::RoundRobin, SchedulerKind::Avr),
        ] {
            let r = run_stream(family, n, 3, alpha, policy, scheduler, s);
            let ratio = r.ratio().expect("grid runs with the bound on");
            assert!(
                ratio >= 1.0 - 1e-6,
                "{family}/{policy}/{}: certified bound violated ({ratio})",
                scheduler.name()
            );
            row.push(Cell::Num(ratio, 3));
        }
        grid.push(row);
    }

    vec![scale, grid]
}
