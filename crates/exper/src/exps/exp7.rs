//! EXP-7 — "Figure 4": the energy–makespan Pareto frontier (MBAL).
//!
//! For a fixed workload, sweep the energy budget geometrically and plot the
//! minimal makespan. Expected shape: monotone decreasing, convex in
//! log–log, and in the release-dominated-free regime the slope of
//! `log X` vs `log E` approaches `-1/(α-1)` (the closed-form trade-off);
//! the floor is `max release` + parallel work.

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_migratory::mbal::mbal;
use ssp_workloads::{subseed, ArrivalDist, Spec, WindowDist, WorkDist};

/// Run EXP-7.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let n = cfg.pick(16usize, 8);
    let m = 2usize;
    let alpha = 2.5f64;
    // Deadline-free workload (huge windows): the budget is the only binding
    // constraint besides releases.
    let inst = Spec::new(n, m, alpha)
        .arrivals(ArrivalDist::Poisson { rate: 2.0 })
        .work(WorkDist::Uniform { min: 0.5, max: 2.0 })
        .window(WindowDist::Fixed(1e6))
        .gen(subseed(cfg.seed ^ 0x77, 1));

    let mut t = Table::new(
        "Figure 4 (series) — MBAL energy-budget vs minimal makespan",
        &[
            "budget E",
            "makespan X",
            "energy used",
            "X_LB (no releases)",
            "X / X_LB",
        ],
    );
    let w: f64 = inst.total_work();
    let base = w; // a natural energy scale
    let budgets: Vec<f64> = cfg
        .pick(
            vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
            vec![0.5, 2.0, 8.0],
        )
        .into_iter()
        .map(|f| base * f)
        .collect();
    let mut prev_x = f64::INFINITY;
    let mut points: Vec<(f64, f64)> = Vec::new();
    for &budget in &budgets {
        let sol = mbal(&inst, budget).expect("deadline-free instances always admit a budget");
        assert!(
            sol.makespan <= prev_x * (1.0 + 1e-9),
            "frontier not monotone: X({budget}) = {} after {prev_x}",
            sol.makespan
        );
        assert!(sol.energy <= budget * (1.0 + 1e-6), "budget exceeded");
        let x_lb = (w.powf(alpha) / budget).powf(1.0 / (alpha - 1.0)) / m as f64;
        t.push(vec![
            Cell::Num(budget, 3),
            Cell::Num(sol.makespan, 4),
            Cell::Num(sol.energy, 4),
            Cell::Num(x_lb, 4),
            Cell::Num(sol.makespan / x_lb, 3),
        ]);
        points.push((budget, sol.makespan));
        prev_x = sol.makespan;
    }

    // Empirical trade-off exponent between consecutive low-budget points
    // (where releases don't bind): slope of log X over log E ≈ -1/(α-1).
    let mut t2 = Table::new(
        "Figure 4 (fit) — local trade-off exponent d log X / d log E",
        &["between budgets", "slope", "theory -1/(alpha-1)"],
    );
    let theory = -1.0 / (alpha - 1.0);
    for pair in points.windows(2) {
        let ((e0, x0), (e1, x1)) = (pair[0], pair[1]);
        let slope = (x1.ln() - x0.ln()) / (e1.ln() - e0.ln());
        t2.push(vec![
            format!("{e0:.2} -> {e1:.2}").into(),
            Cell::Num(slope, 4),
            Cell::Num(theory, 4),
        ]);
    }
    vec![t, t2]
}
