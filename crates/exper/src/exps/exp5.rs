//! EXP-5 — "Table 5": the value of migration.
//!
//! Contextualizes the model choice: how much energy does forbidding
//! migration actually cost? On small instances the exact non-migratory
//! optimum is compared with the migratory optimum (BAL) across machine
//! counts and window-tightness tiers. The expected shape: the gap grows
//! with `m` (more fragmentation) and shrinks with laxity (loose windows let
//! any machine absorb any job).

use crate::par::par_map;
use crate::table::{max, mean, Table};
use crate::RunCfg;
use ssp_core::exact::exact_nonmigratory;
use ssp_migratory::bal::bal;
use ssp_workloads::{subseed, Spec, WindowDist, WorkDist};

/// Run EXP-5.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 5 — migration gap: exact non-migratory OPT / migratory OPT",
        &["m", "laxity tier", "n", "seeds", "mean gap", "max gap"],
    );
    let n = cfg.pick(9usize, 6);
    let seeds = cfg.pick(16usize, 3);
    let tiers: &[(&str, f64, f64)] = &[
        ("tight 1.05-1.5x", 1.05, 1.5),
        ("medium 1.5-4x", 1.5, 4.0),
        ("loose 4-10x", 4.0, 10.0),
    ];
    let ms: Vec<usize> = cfg.pick(vec![2, 3, 4], vec![2, 3]);
    for &m in &ms {
        for &(tier, lo, hi) in tiers {
            let items: Vec<u64> = (0..seeds as u64).collect();
            let gaps = par_map(items, |&s| {
                let inst = Spec::new(n, m, 2.0)
                    .work(WorkDist::Uniform { min: 0.5, max: 2.0 })
                    .window(WindowDist::LaxityFactor { min: lo, max: hi })
                    .gen(subseed(cfg.seed ^ 0x55, s * 17 + m as u64));
                let nonmig = exact_nonmigratory(&inst).energy;
                let mig = bal(&inst).energy;
                nonmig / mig
            });
            assert!(
                gaps.iter().all(|&g| g >= 1.0 - 1e-6),
                "migration made things worse — impossible"
            );
            t.push(vec![
                m.into(),
                tier.into(),
                n.into(),
                seeds.into(),
                mean(&gaps).into(),
                max(&gaps).into(),
            ]);
        }
    }
    vec![t]
}
