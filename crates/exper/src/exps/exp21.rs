//! EXP-21 — service soak/chaos: the `ssp serve` stack under sustained
//! mixed-family load with fault injection on.
//!
//! Drives thousands of requests (5000 full, 250 quick) from several
//! submitter threads through an in-process [`ssp_serve::Server`] — the same
//! code path the daemon serves over stdin and its Unix socket. The traffic
//! is hostile on purpose:
//!
//! * instances drawn from a finite pool of mixed workload families, so the
//!   fingerprint cache sees genuine repeated traffic;
//! * ~2% corrupted instances from the harness [`FaultPlan`]
//!   (NaN/inf fields, inverted windows, zero machines, mangled text …);
//! * every request fails its first attempt with an injected transient
//!   error, so the whole stream runs through the retry/backoff machinery;
//! * a slice of requests carries near-zero deadlines, exercising
//!   cooperative cancellation and deadline shedding;
//! * admission control stays bounded — submitters observe rejects and
//!   back off, like a real client.
//!
//! Acceptance (asserted, not just reported): zero panics escape the
//! per-request isolation; every submission gets exactly one well-formed
//! response; every response that carries a certified bound — including
//! degraded and cache-hit responses — satisfies `energy >= (1-1e-9)·LB`;
//! the cache hit-rate is nonzero. The report includes solves/sec and
//! p50/p99 request latency from the `serve.request_us` histogram.

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_harness::fault::FaultPlan;
use ssp_serve::json::{self, Json};
use ssp_serve::{RetryPolicy, ServeOptions, Server};
use ssp_workloads::{families, subseed};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Build one request line with the instance as embedded `.ssp` text.
fn request_line(id: &str, algo: &str, instance_text: &str, timeout_ms: Option<f64>) -> String {
    let mut fields = vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("algo".to_string(), Json::Str(algo.to_string())),
        ("instance".to_string(), Json::Str(instance_text.to_string())),
    ];
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms".to_string(), Json::Num(ms)));
    }
    Json::Obj(fields).to_string_compact()
}

/// Run EXP-21.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let total = cfg.pick(5000, 250);
    let submitters = cfg.pick(4, 2);
    let workers = cfg.pick(8, 4);

    // A finite instance pool: repeated traffic is what gives the
    // fingerprint cache something to do.
    let pool_size = cfg.pick(48, 12);
    let pool: Vec<String> = (0..pool_size)
        .map(|k| {
            let s = subseed(cfg.seed ^ 0x21, k as u64);
            let inst = match k % 4 {
                0 => families::general(8, 2, 2.0).gen(s),
                1 => families::bursty(10, 3, 2.5).gen(s),
                2 => families::unit_arbitrary(6, 2, 2.0).gen(s),
                _ => families::weighted_agreeable(7, 2, 3.0).gen(s),
            };
            ssp_model::io::emit(&inst)
        })
        .collect();
    let plan = FaultPlan::new(cfg.seed ^ 0xFA);
    let algos = ["bal", "rr", "local", "greedy", "least-loaded", "avr", "oa"];

    let session = ssp_probe::Session::begin()
        .expect("exp21 needs the probe idle (the runner owns its session)");
    let span = ssp_probe::span("exp21.soak");
    let mut server = Server::start(ServeOptions {
        workers,
        queue_cap: 256,
        shed_watermark: 192,
        default_timeout: Some(Duration::from_secs(5)),
        cache_cap: 512,
        retry: RetryPolicy {
            // Fault injection on: every request's first attempt fails with
            // a synthetic transient, so success requires the retry path.
            inject_transient: 1,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
            ..Default::default()
        },
        ..Default::default()
    });

    let responses: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::with_capacity(total)));
    let backoffs = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..submitters {
            let handle = server.handle();
            let sink_lines = Arc::clone(&responses);
            let pool = &pool;
            let backoffs = &backoffs;
            scope.spawn(move || {
                let sink: ssp_serve::Sink = Arc::new(move |line: &str| {
                    sink_lines.lock().unwrap().push(line.to_string());
                });
                for i in (worker..total).step_by(submitters) {
                    let line = if i % 50 == 7 {
                        // ~2% corrupted/adversarial instances.
                        let case = plan.case(i / 50);
                        request_line(
                            &format!("q{i}-fault-{}", case.fault),
                            algos[i % algos.len()],
                            &case.text,
                            None,
                        )
                    } else {
                        let text = &pool[(i * 31 + 7) % pool.len()];
                        // A slice of near-zero deadlines keeps the
                        // cancellation/shedding path hot.
                        let timeout = match i % 17 {
                            0 => Some(1.0),
                            1 => Some(4.0),
                            _ => None,
                        };
                        request_line(&format!("q{i}"), algos[i % algos.len()], text, timeout)
                    };
                    if !handle.submit(&line, Arc::clone(&sink)) {
                        // Overload or shutdown: the reject is already
                        // answered; a real client backs off.
                        backoffs.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(500));
                    }
                }
            });
        }
    });
    server.shutdown();
    let elapsed = t0.elapsed();
    drop(span);
    let stats = server.stats();
    let trace = session.end();
    trace.validate().expect("exp21 trace must be well-formed");

    // -- acceptance: no escapes, one well-formed response per submission --
    assert_eq!(stats.panics, 0, "a panic escaped isolation: {stats:?}");
    assert_eq!(stats.submitted, total as u64);
    let responses = responses.lock().unwrap();
    assert_eq!(
        responses.len(),
        total,
        "every submission must be answered exactly once"
    );
    let (mut ok, mut errors, mut hits, mut degraded_ok, mut bounded) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for line in responses.iter() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("malformed response {line}: {e}"));
        assert!(v.get("id").is_some_and(|s| s.as_str().is_some()), "{line}");
        match v.get("status").and_then(|s| s.as_str()) {
            Some("ok") => {
                ok += 1;
                let energy = v.get("energy").and_then(|x| x.as_f64()).expect("energy");
                assert!(energy.is_finite() && energy >= 0.0, "{line}");
                let degraded = v.get("degraded").and_then(|d| d.as_bool()) == Some(true);
                if degraded {
                    degraded_ok += 1;
                }
                if v.get("cache").and_then(|c| c.as_str()) == Some("hit") {
                    hits += 1;
                }
                // Every certified bound met — degraded and cache-hit
                // responses included. (No bound is emitted when the lower
                // bound itself was cancelled by a tight deadline.)
                if let Some(ratio) = v.get("lb_ratio").and_then(|x| x.as_f64()) {
                    bounded += 1;
                    assert!(ratio >= 1.0 - 1e-9, "certified bound violated: {line}");
                }
            }
            Some("error") => {
                errors += 1;
                assert!(
                    v.get("kind").is_some_and(|k| k.as_str().is_some()),
                    "{line}"
                );
            }
            other => panic!("bad status {other:?} in {line}"),
        }
    }
    assert_eq!(ok, stats.ok);
    assert_eq!(errors, stats.errors + stats.rejected);
    assert_eq!(hits, stats.cache_hits, "cache-marked responses match stats");
    assert!(stats.cache_hits > 0, "repeated traffic must hit the cache");
    assert!(bounded > 0, "certified bounds must be exercised");

    let admitted = total as u64 - stats.rejected;
    let solves_per_sec = stats.completed() as f64 / elapsed.as_secs_f64();
    let hit_rate = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64;

    let mut t = Table::new(
        "EXP-21 — service soak: mixed families, ~2% corrupted, transient injection, tight deadlines",
        &["metric", "value"],
    );
    let rows: Vec<(&str, Cell)> = vec![
        ("requests submitted", Cell::Int(total as i64)),
        ("admitted", Cell::Int(admitted as i64)),
        (
            "rejected (admission control)",
            Cell::Int(stats.rejected as i64),
        ),
        (
            "submitter backoffs",
            Cell::Int(backoffs.load(Ordering::Relaxed) as i64),
        ),
        ("ok", Cell::Int(stats.ok as i64)),
        ("typed errors", Cell::Int(stats.errors as i64)),
        ("panics escaping isolation", Cell::Int(stats.panics as i64)),
        (
            "retries (injected transients)",
            Cell::Int(trace.counter("serve.retry") as i64),
        ),
        ("cache hits", Cell::Int(stats.cache_hits as i64)),
        ("cache hit-rate", Cell::Num(hit_rate, 3)),
        ("shed (load/deadline)", Cell::Int(stats.shed as i64)),
        ("degraded ok responses", Cell::Int(degraded_ok as i64)),
        ("responses with certified bound", Cell::Int(bounded as i64)),
        ("wall time s", Cell::Num(elapsed.as_secs_f64(), 2)),
        ("solves/sec", Cell::Num(solves_per_sec, 1)),
    ];
    for (k, v) in rows {
        t.push(vec![Cell::Text(k.to_string()), v]);
    }

    let mut lat = Table::new(
        "EXP-21 — request latency from the serve.request_us histogram",
        &[
            "histogram",
            "count",
            "p50 us",
            "p90 us",
            "p99 us",
            "max us",
            "mean us",
        ],
    );
    for name in ["serve.request_us", "serve.queue_depth"] {
        if let Some(h) = trace.hist(name) {
            lat.push(vec![
                Cell::Text(name.to_string()),
                Cell::Int(h.count as i64),
                Cell::Int(h.p50() as i64),
                Cell::Int(h.p90() as i64),
                Cell::Int(h.p99() as i64),
                Cell::Int(h.max as i64),
                Cell::Num(h.mean(), 1),
            ]);
        }
    }
    assert!(
        trace.hist("serve.request_us").is_some(),
        "latency histogram must have samples"
    );
    vec![t, lat]
}
