//! EXP-3 — "Table 3 / Figure 1": approximation quality in the unit-work
//! arbitrary-deadline regime against the paper's `2(2-1/m)^α` factor (R2).
//!
//! Ratios are measured against the **certified migratory lower bound** (BAL;
//! migration only helps), so every reported ratio *upper-bounds* the true
//! approximation ratio. The reproduction claim is shape-level: all ratios
//! `>= 1`, all far below the analytic bound, RelaxRound competitive with the
//! best baseline, and the bound column growing in both `m` and `α` while the
//! measured ratios stay flat — i.e. the analysis, not the algorithm, carries
//! the `m`/`α` dependence.

use crate::par::par_map;
use crate::table::{max, mean, Table};
use crate::RunCfg;
use ssp_core::list::{least_loaded, marginal_energy_greedy};
use ssp_core::relax::relax_round;
use ssp_core::rr::rr_assignment;
use ssp_migratory::bal::bal;
use ssp_workloads::{families, subseed};

/// Run EXP-3.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let mut t = Table::new(
        "Table 3 — unit works, arbitrary windows: energy ratio to migratory LB",
        &[
            "m",
            "alpha",
            "bound 2(2-1/m)^a",
            "RelaxRound mean",
            "RelaxRound max",
            "RR mean",
            "LeastLoaded mean",
            "Greedy mean",
        ],
    );
    let n = cfg.pick(100usize, 24);
    let seeds = cfg.pick(10usize, 2);
    let ms: Vec<usize> = cfg.pick(vec![2, 4, 8, 16], vec![2, 4]);
    let alphas: Vec<f64> = cfg.pick(vec![1.5, 2.0, 2.5, 3.0], vec![2.0, 3.0]);
    for &m in &ms {
        for &alpha in &alphas {
            let items: Vec<u64> = (0..seeds as u64).collect();
            let rows = par_map(items, |&s| {
                let inst = families::unit_arbitrary(n, m, alpha).gen(subseed(
                    cfg.seed ^ 0x31,
                    s * 31 + m as u64 * 7 + (alpha * 10.0) as u64,
                ));
                let lb = bal(&inst).energy;
                (
                    super::ratio_of(&inst, &relax_round(&inst), lb),
                    super::ratio_of(&inst, &rr_assignment(&inst), lb),
                    super::ratio_of(&inst, &least_loaded(&inst), lb),
                    super::ratio_of(&inst, &marginal_energy_greedy(&inst), lb),
                )
            });
            let relax: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let rr: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let ll: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let greedy: Vec<f64> = rows.iter().map(|r| r.3).collect();
            let bound = super::bound_r2(m, alpha);
            assert!(
                relax.iter().all(|&r| r >= 1.0 - 1e-6),
                "ratio below 1 — the lower bound is not a lower bound?"
            );
            assert!(
                max(&relax) <= bound,
                "RelaxRound exceeded the paper factor: {} > {bound} (m={m}, alpha={alpha})",
                max(&relax)
            );
            t.push(vec![
                m.into(),
                alpha.into(),
                bound.into(),
                mean(&relax).into(),
                max(&relax).into(),
                mean(&rr).into(),
                mean(&ll).into(),
                mean(&greedy).into(),
            ]);
        }
    }
    vec![t]
}
