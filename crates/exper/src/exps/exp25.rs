//! EXP-25 — the perf-trajectory service: history-calibrated noise bands
//! and auto-attached trace diffs, validated on synthetic trajectories.
//!
//! `ssp bench report` replaced the single global regression threshold
//! with a **per-cell calibrated band**: robust dispersion (median/MAD,
//! `ssp_probe::calib`) over the cell's own trailing history window. This
//! runner builds deterministic synthetic trajectories — no timing, no
//! machine noise — and re-states the service's contracts as assertions:
//!
//! 1. **Separation.** On a trajectory with ±2% deterministic run-to-run
//!    noise, the calibrated band passes every in-noise point but flags a
//!    true 20% step; a quiet (flat) trajectory falls back to the 5% floor
//!    band and still passes; a single historical outlier must not widen
//!    the band (MAD robustness); and a sub-floor cell never flags no
//!    matter how large its relative step.
//! 2. **Attachment round-trip.** A flagged cell's auto-attached probe
//!    trace, written under the `<bench>__<sanitized key>.jsonl` naming
//!    convention the harness and `bench report` share, parses back and
//!    its `trace diff` against the baseline trace names the regressed
//!    span (flagged `!`) — the "got slower" → "which span" link the
//!    report renders.
//!
//! Everything is derived from `ssp_workloads::subseed` bit-mixing, so the
//! run is reproducible for any `--seed`.

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_probe::calib;
use ssp_workloads::subseed;

/// Deterministic multiplicative noise in `1 ± amp` derived from the mixed
/// seed (uniform over ~401 steps).
fn noise(seed: u64, i: u64, amp: f64) -> f64 {
    let s = subseed(seed, i);
    1.0 + amp * (((s % 401) as f64 - 200.0) / 200.0)
}

/// The attachment file stem convention shared by `ssp_bench::trajectory`
/// (writer) and `speedscale::benchreport` (reader): every character
/// outside `[A-Za-z0-9._-]` becomes `_`.
fn sanitize_key(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A deterministic two-span probe trace in wire format: a `yds` root of
/// `total_ns` with a `yds.peel` child of `peel_ns`, plus a peel counter.
fn trace_jsonl(total_ns: u64, peel_ns: u64, peels: u64) -> String {
    format!(
        "{{\"type\":\"meta\",\"version\":2,\"spans\":2,\"counters\":1,\"hists\":0}}\n\
         {{\"type\":\"span\",\"id\":1,\"parent\":0,\"thread\":1,\"name\":\"yds\",\"start_ns\":0,\"end_ns\":{total_ns}}}\n\
         {{\"type\":\"span\",\"id\":2,\"parent\":1,\"thread\":1,\"name\":\"yds.peel\",\"start_ns\":10,\"end_ns\":{}}}\n\
         {{\"type\":\"counter\",\"name\":\"yds.peels\",\"value\":{peels}}}\n",
        10 + peel_ns
    )
}

/// One synthetic trajectory scenario: history samples plus the fresh
/// latest point, and whether the calibrated gate must flag it.
struct Scenario {
    name: &'static str,
    history: Vec<f64>,
    latest: f64,
    must_flag: bool,
}

/// Noise floor in milliseconds (the `bench report` default).
const MIN_MS: f64 = 0.05;

/// Run EXP-25.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    let points = cfg.pick(24usize, 8);
    let base_ms = 0.100;
    let series = |amp: f64, salt: u64| -> Vec<f64> {
        (0..points as u64)
            .map(|i| base_ms * noise(cfg.seed ^ 0x25 ^ salt, i, amp))
            .collect()
    };

    let mut outlier_history = series(0.02, 3);
    outlier_history[points / 2] = base_ms * 40.0; // one wild rep

    let scenarios = vec![
        Scenario {
            name: "quiet_flat",
            history: vec![base_ms; points],
            latest: base_ms * 1.02,
            must_flag: false,
        },
        Scenario {
            name: "pm2pct_noise",
            history: series(0.02, 1),
            latest: base_ms * noise(cfg.seed ^ 0x25C, 7, 0.02),
            must_flag: false,
        },
        Scenario {
            name: "pm2pct_step20",
            history: series(0.02, 2),
            latest: base_ms * 1.20,
            must_flag: true,
        },
        Scenario {
            name: "outlier_robust",
            history: outlier_history,
            latest: base_ms * noise(cfg.seed ^ 0x25D, 3, 0.02),
            must_flag: false,
        },
        Scenario {
            name: "sub_floor_step",
            history: vec![0.010; points],
            latest: 0.030, // 3x, but under the 0.05 ms floor
            must_flag: false,
        },
    ];

    let mut table = Table::new(
        "EXP-25 — history-calibrated regression bands on synthetic trajectories",
        &[
            "scenario",
            "points",
            "baseline ms",
            "band %",
            "latest ms",
            "delta %",
            "flagged",
        ],
    );

    for sc in &scenarios {
        let baseline = calib::median(&sc.history).expect("non-empty history");
        let band = calib::noise_band(&sc.history);
        let flagged = calib::crosses(sc.latest, baseline, band, MIN_MS);
        assert_eq!(
            flagged,
            sc.must_flag,
            "{}: calibrated gate disagrees (baseline={baseline:.4}, band={:.1}%, latest={:.4})",
            sc.name,
            band * 100.0,
            sc.latest
        );
        // The calibration itself must stay tight under benign noise: ±2%
        // run-to-run noise may not earn a band wider than 15%, and MAD
        // must shrug off the single wild outlier.
        if matches!(sc.name, "pm2pct_noise" | "pm2pct_step20" | "outlier_robust") {
            assert!(
                band < 0.15,
                "{}: ±2% noise calibrated a {:.1}% band",
                sc.name,
                band * 100.0
            );
        }
        if sc.name == "quiet_flat" {
            assert_eq!(band, calib::MIN_BAND, "flat history gets the floor band");
        }
        table.push(vec![
            Cell::Text(sc.name.to_string()),
            Cell::Int(sc.history.len() as i64),
            Cell::Num(baseline, 4),
            Cell::Num(band * 100.0, 1),
            Cell::Num(sc.latest, 4),
            Cell::Num((sc.latest / baseline - 1.0) * 100.0, 1),
            Cell::Text(if flagged { "yes" } else { "no" }.to_string()),
        ]);
    }

    // -- Contract 2: the attachment round-trip -----------------------------
    let key = "family=agreeable,n=200";
    let stem = format!("yds_kernel__{}.jsonl", sanitize_key(key));
    assert_eq!(
        stem, "yds_kernel__family_agreeable_n_200.jsonl",
        "attachment naming convention drifted"
    );
    let dir = std::env::temp_dir().join(format!("ssp_exp25_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(&stem);
    // Baseline: 4 µs solve, 3 µs of it peeling, 20 peels. Regressed run:
    // 9 µs / 8 µs / 40 peels — double the work, not slower work.
    let baseline_trace =
        ssp_probe::Trace::parse(&trace_jsonl(4_000, 3_000, 20)).expect("baseline trace parses");
    std::fs::write(&path, trace_jsonl(9_000, 8_000, 40)).expect("write attachment");

    let attached_text = std::fs::read_to_string(&path).expect("read attachment back");
    let attached = ssp_probe::Trace::parse(&attached_text).expect("attachment parses");
    attached.validate().expect("attachment is well-formed");
    let diff = ssp_probe::diff(&baseline_trace, &attached, 0.10);
    let peel_flagged = diff
        .lines()
        .any(|l| l.contains("yds.peel") && l.contains('!'));
    assert!(
        peel_flagged,
        "trace diff must name the regressed span with '!':\n{diff}"
    );
    assert!(
        diff.contains("yds.peels"),
        "counter delta (more work) must be visible:\n{diff}"
    );

    let mut attach_table = Table::new(
        "EXP-25 — attached trace diff round-trip (baseline vs regressed cell)",
        &["cell", "span", "base ns", "new ns", "flagged in diff"],
    );
    for span in ["yds", "yds.peel"] {
        attach_table.push(vec![
            Cell::Text(key.to_string()),
            Cell::Text(span.to_string()),
            Cell::Int(baseline_trace.span_total_ns(span) as i64),
            Cell::Int(attached.span_total_ns(span) as i64),
            Cell::Text(
                if diff.lines().any(|l| l.contains(span) && l.contains('!')) {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ),
        ]);
    }
    std::fs::remove_dir_all(&dir).ok();

    vec![table, attach_table]
}
