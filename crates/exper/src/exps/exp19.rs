//! EXP-19 — oracle-backed local search: old vs new kernel transcripts.
//!
//! This PR routed every non-migratory energy query through the fast YDS
//! kernel and the incremental [`YdsEval`] oracle (memoized per-machine
//! energies, certified candidate rejection). The search trajectory is
//! deliberately bit-identical to the retained reference: same RNG
//! stream, same accept/reject decisions, same final assignment. This
//! runner replays identical-seed local-search transcripts through
//! [`improve_reference`] (per-candidate `Vec<Job>` + reference peel) and
//! [`improve`] (oracle path) on the general workload family and compares
//! peel work (probe counter `yds.peels`) and wall time.
//!
//! Asserted acceptance (full mode, n = 800): identical final energies
//! bit-for-bit with at least **5×** fewer peel operations and at least
//! **3×** lower wall time. Quick mode asserts only the transcript
//! identity (tiny instances cannot show the asymptotic gap).
//!
//! The n = 1600 row caps `max_evaluations` (same cap on both sides, so
//! the transcripts stay aligned) to keep the cubic reference run
//! bounded; the ratios it reports are per-transcript, not per-instance.
//!
//! [`YdsEval`]: ssp_core::YdsEval
//! [`improve`]: ssp_core::improve
//! [`improve_reference`]: ssp_core::local_search::improve_reference

use crate::table::{Cell, Table};
use crate::RunCfg;
use ssp_core::local_search::{improve_reference, LocalSearchResult};
use ssp_core::rr::rr_assignment;
use ssp_core::{improve, Assignment, LocalSearchOptions};
use ssp_model::Instance;
use ssp_workloads::{families, subseed};
use std::time::Instant;

/// Acceptance thresholds at the n = 800 anchor (full mode).
const MIN_PEEL_RATIO: f64 = 5.0;
const MIN_WALL_RATIO: f64 = 3.0;
/// The size whose row carries the asserted acceptance.
const ANCHOR_N: usize = 800;
/// Evaluation cap for the n = 1600 row (cost control on the reference
/// side; identical on both sides so the transcripts match).
const CAP_N1600: usize = 25_000;

/// One measured local-search run: wall ms plus `yds.peels` delta.
fn run_side(
    instance: &Instance,
    start: &Assignment,
    opts: LocalSearchOptions,
    reference: bool,
) -> (LocalSearchResult, f64, u64) {
    let p0 = ssp_probe::counter_value("yds.peels");
    let t0 = Instant::now();
    let res = if reference {
        improve_reference(instance, start, opts)
    } else {
        improve(instance, start, opts)
    };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (res, ms, ssp_probe::counter_value("yds.peels") - p0)
}

/// Run EXP-19.
pub fn run(cfg: &RunCfg) -> Vec<Table> {
    // Peel deltas need an active probe session (cf. EXP-17/EXP-18).
    let own_session = ssp_probe::Session::begin();

    let mut t = Table::new(
        "EXP-19 — local search, reference peel vs YdsEval oracle (m=4, alpha=2, general family, identical seeds)",
        &[
            "n",
            "evals",
            "moves",
            "ref peels",
            "oracle peels",
            "peel ratio",
            "ref ms",
            "oracle ms",
            "speedup",
            "final energy",
        ],
    );
    let sizes: Vec<usize> = cfg.pick(vec![200, 400, 800, 1600], vec![30, 60]);
    let mut anchor: Option<(f64, f64)> = None;
    for &n in &sizes {
        let inst = families::general(n, 4, 2.0).gen(subseed(cfg.seed ^ 0x19, n as u64));
        let start = rr_assignment(&inst);
        let opts = LocalSearchOptions {
            max_evaluations: if n >= 1600 {
                CAP_N1600
            } else {
                LocalSearchOptions::default().max_evaluations
            },
            seed: subseed(cfg.seed ^ 0x91, n as u64),
            ..Default::default()
        };
        let (ref_res, ref_ms, ref_peels) = run_side(&inst, &start, opts.clone(), true);
        let (new_res, new_ms, new_peels) = run_side(&inst, &start, opts, false);
        assert_eq!(
            ref_res.energy.to_bits(),
            new_res.energy.to_bits(),
            "n={n}: final energies diverged, reference {} vs oracle {}",
            ref_res.energy,
            new_res.energy
        );
        assert_eq!(
            (ref_res.evaluations, ref_res.improvements),
            (new_res.evaluations, new_res.improvements),
            "n={n}: transcripts diverged"
        );
        let peel_ratio = ref_peels as f64 / new_peels.max(1) as f64;
        let speedup = ref_ms / new_ms.max(1e-9);
        if n == ANCHOR_N {
            anchor = Some((peel_ratio, speedup));
        }
        t.push(vec![
            n.into(),
            ref_res.evaluations.into(),
            ref_res.improvements.into(),
            Cell::Int(ref_peels as i64),
            Cell::Int(new_peels as i64),
            Cell::Num(peel_ratio, 2),
            Cell::Num(ref_ms, 1),
            Cell::Num(new_ms, 1),
            Cell::Num(speedup, 2),
            Cell::Num(new_res.energy, 3),
        ]);
    }
    if !cfg.quick {
        let (peel_ratio, speedup) =
            anchor.expect("full-mode size sweep must include the n=800 anchor");
        assert!(
            peel_ratio >= MIN_PEEL_RATIO,
            "n={ANCHOR_N}: oracle saved only {peel_ratio:.2}x peels; \
             EXP-19 requires >= {MIN_PEEL_RATIO}x"
        );
        assert!(
            speedup >= MIN_WALL_RATIO,
            "n={ANCHOR_N}: oracle is only {speedup:.2}x faster; \
             EXP-19 requires >= {MIN_WALL_RATIO}x"
        );
    }
    if let Some(s) = own_session {
        let _ = s.end();
    }
    vec![t]
}
