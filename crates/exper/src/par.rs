//! Scoped-thread parallel map for parameter sweeps.
//!
//! Experiments are embarrassingly parallel over `(seed, parameter)` grids.
//! Rather than pull in a thread-pool crate, a single `std::thread::scope`
//! with an atomic work index gives the same data-race-free fan-out (the
//! borrow checker enforces that `f` only captures `Sync` state): each worker
//! claims indices from a shared counter, so uneven item costs balance
//! automatically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item on all available cores; results keep input order.
///
/// Telemetry: each worker adopts the calling thread's innermost open probe
/// span ([`ssp_probe::Session::adopt_parent`]), so spans opened inside `f`
/// attach to the caller's span tree instead of becoming disconnected roots.
/// This is sound because the scope joins every worker before `par_map`
/// returns — the adopted parent span cannot close while workers run.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let parent = ssp_probe::Session::parent_handle();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let _adopt = ssp_probe::Session::adopt_parent(parent);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(&items[i]);
                        *slots[i].lock().unwrap() = Some(r);
                    }
                })
            })
            .collect();
        // Join manually: `scope` alone would replace a worker's panic
        // payload with a generic "a scoped thread panicked". Re-raising the
        // first payload makes `f`'s panic observable to the caller exactly
        // as in the sequential path (and no slot is silently left `None`).
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let _ = par_map((0..57).collect::<Vec<i32>>(), |_| {
            CALLS.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(CALLS.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn worker_panic_propagates_with_its_payload() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..64).collect::<Vec<i32>>(), |&x| {
                if x == 13 {
                    panic!("boom at 13");
                }
                x * 2
            })
        });
        let payload = result.expect_err("panic in `f` must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("boom at 13"),
            "original payload must survive, got: {message:?}"
        );
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Just a smoke test that heavy items don't break ordering.
        let out = par_map(vec![30u64, 1, 25, 2, 20], |&ms| {
            let mut acc = 0u64;
            for i in 0..(ms * 100_000) {
                acc = acc.wrapping_add(i);
            }
            (ms, acc != u64::MAX)
        });
        let keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![30, 1, 25, 2, 20]);
    }
}
