//! Scoped-thread parallel map for parameter sweeps.
//!
//! The implementation moved to [`ssp_model::par`] so solver kernels (the
//! BAL probe ladder) can share it; this module re-exports it for the
//! experiment runners. The fan-out width obeys `SSP_THREADS` and the
//! in-process [`ssp_model::par::set_thread_override`] pin — see the model
//! module docs for the bit-identity contract parallel callers must keep.

pub use ssp_model::par::{par_map, par_map_mut, set_thread_override, thread_count};
