//! # ssp-prng
//!
//! Dependency-free, deterministic pseudo-randomness for the workspace.
//!
//! The repository must build and test in fully offline environments, so it
//! cannot rely on the `rand` crate family. This crate provides the small API
//! subset the workspace actually uses — a seedable generator, uniform
//! `f64`/integer draws, range sampling, and Fisher–Yates shuffling — with the
//! same names and shapes as `rand` 0.8 so call sites read identically
//! (`StdRng::seed_from_u64`, `rng.gen::<f64>()`, `slice.shuffle(&mut rng)`).
//!
//! The generator is **xoshiro256++** seeded through the SplitMix64 finalizer:
//! fast, portable, and identical across platforms. Streams are *not*
//! bit-compatible with `rand::StdRng` (ChaCha12); every consumer in this
//! workspace treats generated workloads as opaque seeded families, so only
//! determinism matters, not the particular stream.
//!
//! ```
//! use ssp_prng::seq::SliceRandom as _;
//! use ssp_prng::{Rng as _, SeedableRng as _, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f64 = rng.gen();                  // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&u));
//! assert!((1..7).contains(&rng.gen_range(1..7usize)));
//! let mut deck = [1, 2, 3, 4, 5];
//! deck.shuffle(&mut rng);
//!
//! // Same seed, same stream — the property the whole workspace leans on.
//! let (a, b): (u64, u64) = (
//!     StdRng::seed_from_u64(42).gen(),
//!     StdRng::seed_from_u64(42).gen(),
//! );
//! assert_eq!(a, b);
//! ```
//!
//! The [`check`] module adds the seeded property-test runner built on the
//! same determinism: a failing case reports the seed that reproduces it.

#![warn(missing_docs)]

pub mod check;

/// SplitMix64 finalizer: the canonical way to expand one `u64` seed into a
/// well-mixed state sequence (also used by [`subseed`]).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic sub-seed derivation so one master seed can fan out into many
/// independent seeds (SplitMix64 finalizer of `seed ^ f(index)`).
pub fn subseed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace generator: xoshiro256++ (Blackman & Vigna). 256-bit state,
/// period `2^256 - 1`, passes BigCrush; more than adequate for workload
/// generation and randomized search orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding interface, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro forbids the all-zero state; SplitMix64 cannot produce four
        // consecutive zeros, but guard anyway for auditability.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

/// Types drawable "uniformly at their natural range" via [`Rng::gen`]
/// (the `rand::distributions::Standard` analogue).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); the modulo bias of a
                // plain `% span` would be ~2^-64 here but this is exact.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32);

/// The draw interface, mirroring the `rand::Rng` subset used by the
/// workspace.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a `T` at its natural range (`f64` ⇒ uniform `[0,1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a half-open range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly pick a reference, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand`-style module alias so imports read `use ssp_prng::rngs::StdRng`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let k = rng.gen_range(0usize..7);
            seen[k] = true;
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly likely to differ from identity.
        assert_ne!(v, sorted);
    }

    #[test]
    fn choose_covers_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u8, 2, 3];
        for _ in 0..10 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn subseed_spreads() {
        assert_eq!(subseed(42, 0), subseed(42, 0));
        assert_ne!(subseed(42, 0), subseed(42, 1));
        assert_ne!(subseed(1, 0) & 0xFF, subseed(1, 1) & 0xFF);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
