//! A minimal seeded property-check runner (the workspace's offline stand-in
//! for `proptest`).
//!
//! [`cases`] runs a closure over `n` independently seeded generators derived
//! from one base seed, so a failing case is reproducible from the printed
//! case seed alone. There is no shrinking: generators here are simple enough
//! that the raw failing draw is directly debuggable, and determinism means
//! the failure replays exactly.
//!
//! ```rust
//! use ssp_prng::{check, Rng};
//!
//! check::cases(64, 0xC0FFEE, |rng| {
//!     let x = rng.gen_range(0.0f64..10.0);
//!     assert!(x * 2.0 >= x);
//! });
//! ```

use crate::{subseed, Rng, SeedableRng, StdRng};

/// Run `f` against `n` independently seeded generators. On panic, the failing
/// case index and derived seed are printed before the panic propagates.
pub fn cases(n: usize, base_seed: u64, mut f: impl FnMut(&mut StdRng)) {
    for case in 0..n {
        let seed = subseed(base_seed, case as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property case {case}/{n} failed (base seed {base_seed:#x}, case seed {seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Draw a vector whose length is uniform in `len` and whose elements come
/// from `draw` (the `proptest::collection::vec` analogue).
pub fn vec_of<T>(
    rng: &mut StdRng,
    len: std::ops::Range<usize>,
    mut draw: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let k = rng.gen_range(len);
    (0..k).map(|_| draw(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let mut count = 0;
        cases(17, 9, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = vec_of(&mut rng, 1..8, |r| r.gen_range(0.0f64..1.0));
            assert!((1..8).contains(&v.len()));
        }
    }

    #[test]
    fn failures_propagate() {
        let res = std::panic::catch_unwind(|| {
            cases(4, 2, |rng| {
                let _ = rng.next_u64();
                panic!("boom");
            })
        });
        assert!(res.is_err());
    }
}
