//! The solve service: a fixed worker pool behind a bounded admission queue.
//!
//! Transport-agnostic by design — [`Server::submit`] takes a raw request
//! line and a sink closure, so stdin, a Unix socket, and in-process tests
//! (EXP-21, the chaos suite) all drive the same code path. The contract:
//!
//! * **Every admitted request gets exactly one response line**, success or
//!   typed error, even across worker panics and shutdown. Rejected
//!   requests get their typed response synchronously at submit time.
//! * **Admission control**: the queue is bounded; beyond
//!   [`ServeOptions::queue_cap`] a request is rejected immediately with
//!   `kind:"overload"` rather than queued into a latency cliff.
//! * **Deadlines**: a per-request timeout becomes an absolute deadline
//!   measured from *admission* (queue wait counts — that is the latency
//!   the client sees), threaded into the solver [`Budget`] so BAL
//!   bisection and local-search loops observe it cooperatively.
//! * **Load shedding**: when the queue is deep or deadline headroom is
//!   thin at dequeue, the service steps the request down its degradation
//!   chain to round-robin — cheap, total, still validated against the
//!   certified lower bound when one is computed. Such responses carry
//!   `degraded:true` and the reason.
//! * **Isolation**: each request runs behind its own `catch_unwind` (on
//!   top of the harness' own boundary), so one poisoned request can never
//!   take down the daemon or starve the pool.
//! * **Shutdown drains**: after [`Server::shutdown`] no new work is
//!   admitted, but everything already queued is solved and answered
//!   before the workers exit.
//!
//! One probe session (owned by whoever starts the daemon) aggregates the
//! whole run; workers attach their spans under the caller's open span via
//! [`ssp_probe::Session::parent_handle`] and feed the `serve.*` counters
//! and histograms listed in `docs/OBSERVABILITY.md`.

use crate::fingerprint::{CachedResult, Fingerprint, ResultCache};
use crate::protocol::{self, CacheDisposition, OkResponse, Request};
use crate::retry::{self, RetryPolicy};
use ssp_harness::{boundary, solve_traced, Algo, SolveOptions};
use ssp_model::resource::Budget;
use ssp_model::SolveError;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads solving requests.
    pub workers: usize,
    /// Maximum queued (admitted, not yet started) requests; submissions
    /// beyond this are rejected with `kind:"overload"`.
    pub queue_cap: usize,
    /// Deadline applied to requests that do not carry their own
    /// `timeout_ms`; `None` = no default deadline.
    pub default_timeout: Option<Duration>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Fingerprint-cache capacity (entries); 0 disables the cache.
    pub cache_cap: usize,
    /// Queue depth at dequeue at/above which the request is shed to the
    /// cheap end of its degradation chain.
    pub shed_watermark: usize,
    /// Minimum deadline headroom at dequeue; below it the request is shed
    /// rather than started on an algorithm it can no longer afford.
    pub min_headroom: Duration,
    /// Per-request solver budget template (iteration/time caps); the
    /// per-request deadline is layered on top.
    pub budget: Budget,
    /// Precondition cap forwarded to the exact solver.
    pub max_exact_jobs: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_cap: 64,
            default_timeout: None,
            retry: RetryPolicy::default(),
            cache_cap: 256,
            shed_watermark: 48,
            min_headroom: Duration::from_millis(5),
            budget: Budget::unlimited(),
            max_exact_jobs: 16,
        }
    }
}

/// Where responses go. Called exactly once per admitted request, and once
/// per rejected request (synchronously, from the submitting thread). Must
/// be cheap-ish and must not panic; a panicking sink is caught and counted
/// but its response line is lost.
pub type Sink = Arc<dyn Fn(&str) + Send + Sync>;

/// Monotonic service counters, exposed for tests and EXP-21 so invariants
/// can be asserted without a probe session.
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the counter names
pub struct StatsSnapshot {
    pub submitted: u64,
    pub rejected: u64,
    pub ok: u64,
    pub errors: u64,
    pub panics: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub shed: u64,
    pub degraded: u64,
}

impl StatsSnapshot {
    /// Responses emitted for admitted requests (success + typed error).
    pub fn completed(&self) -> u64 {
        self.ok + self.errors
    }
}

struct Work {
    line: String,
    sink: Sink,
    admitted: Instant,
}

struct Shared {
    opts: ServeOptions,
    queue: Mutex<VecDeque<Work>>,
    cond: Condvar,
    cache: Mutex<ResultCache>,
    draining: AtomicBool,
    stats: Stats,
}

impl Shared {
    // Panics while holding these locks are already caught per-request; a
    // poisoned mutex here would only turn one caught panic into a daemon
    // death, so recover the data instead.
    fn queue_lock(&self) -> MutexGuard<'_, VecDeque<Work>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
    fn cache_lock(&self) -> MutexGuard<'_, ResultCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The running service. Dropping it without [`Server::shutdown`] drains
/// and joins the workers too (shutdown is idempotent).
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn the worker pool. Call with a probe span open to group worker
    /// spans under it (see module docs); works fine without one.
    pub fn start(opts: ServeOptions) -> Server {
        let shared = Arc::new(Shared {
            cache: Mutex::new(ResultCache::new(opts.cache_cap)),
            opts,
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            draining: AtomicBool::new(false),
            stats: Stats::default(),
        });
        let parent = ssp_probe::Session::parent_handle();
        let workers = (0..shared.opts.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ssp-serve-{i}"))
                    .spawn(move || worker_loop(&shared, parent))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Submit one raw request line. Admission control runs synchronously:
    /// the return value says whether the request was queued (`true`) or
    /// rejected with a typed response already sent to `sink` (`false`).
    pub fn submit(&self, line: &str, sink: Sink) -> bool {
        submit_line(&self.shared, line, sink)
    }

    /// A clonable, submit-only handle for transport threads (a stdin loop,
    /// socket connections). Admission control and rejection behavior are
    /// identical to [`Server::submit`]; the handle cannot shut the service
    /// down, so ownership of drain/join stays with the thread holding the
    /// `Server`.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop admitting, solve everything already queued, join the workers.
    /// Idempotent. Every request admitted before this call still gets its
    /// response before `shutdown` returns.
    pub fn shutdown(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.cond.notify_all();
        for w in self.workers.drain(..) {
            // A worker that somehow panicked outside all catch boundaries
            // still must not abort shutdown of the rest.
            let _ = w.join();
        }
    }

    /// Current queue depth (admitted, not yet dequeued).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_lock().len()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        StatsSnapshot {
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            ok: s.ok.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Submit-only handle; see [`Server::handle`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Same contract as [`Server::submit`].
    pub fn submit(&self, line: &str, sink: Sink) -> bool {
        submit_line(&self.shared, line, sink)
    }
}

fn submit_line(shared: &Shared, line: &str, sink: Sink) -> bool {
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    if shared.draining.load(Ordering::Acquire) {
        return reject(shared, line, &sink, "shutdown", "service is shutting down");
    }
    let mut queue = shared.queue_lock();
    let depth = queue.len();
    if depth >= shared.opts.queue_cap {
        drop(queue);
        return reject(
            shared,
            line,
            &sink,
            "overload",
            &format!("queue full ({} requests)", shared.opts.queue_cap),
        );
    }
    queue.push_back(Work {
        line: line.to_string(),
        sink,
        admitted: Instant::now(),
    });
    ssp_probe::histogram!("serve.queue_depth", (depth + 1) as u64);
    drop(queue);
    shared.cond.notify_one();
    true
}

fn reject(shared: &Shared, line: &str, sink: &Sink, kind: &str, message: &str) -> bool {
    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
    ssp_probe::counter!("serve.reject");
    let id = protocol::salvage_id(line);
    deliver(shared, sink, &protocol::error_line(&id, kind, message));
    false
}

/// Hand one response line to a sink, surviving a panicking sink.
fn deliver(shared: &Shared, sink: &Sink, line: &str) {
    if catch_unwind(AssertUnwindSafe(|| sink(line))).is_err() {
        shared.stats.panics.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_loop(shared: &Shared, parent: ssp_probe::ParentHandle) {
    let _adopt = ssp_probe::Session::adopt_parent(parent);
    loop {
        let (work, depth_behind) = {
            let mut queue = shared.queue_lock();
            loop {
                if let Some(work) = queue.pop_front() {
                    break (work, queue.len());
                }
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.cond.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Per-request isolation: nothing a request does may escape this
        // frame. The harness catches solver panics; this catches panics in
        // the service layer itself (parsing, cache, serialization).
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            process(shared, &work, depth_behind);
        }));
        if outcome.is_err() {
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            ssp_probe::counter!("serve.panic");
            let id = protocol::salvage_id(&work.line);
            deliver(
                shared,
                &work.sink,
                &protocol::error_line(&id, "internal-panic", "request processing panicked"),
            );
        }
    }
}

/// Map a terminal solve error to the response `kind`. Deadline and
/// cancellation exhaustion get first-class kinds; everything else keeps
/// its [`SolveError::kind`] tag.
fn error_kind(error: &SolveError) -> &'static str {
    match error {
        SolveError::BudgetExhausted {
            resource: "deadline",
            ..
        } => "deadline",
        SolveError::BudgetExhausted {
            resource: "cancelled",
            ..
        } => "cancelled",
        other => other.kind(),
    }
}

/// What one solve attempt settles on (the retry loop's `T`).
struct Accepted {
    algorithm: Algo,
    energy: f64,
    lower_bound: Option<f64>,
    lb_ratio: Option<f64>,
    fell_back: bool,
    budget_exhausted: Option<&'static str>,
}

fn process(shared: &Shared, work: &Work, depth_behind: usize) {
    let _span = ssp_probe::span("serve.request");
    let opts = &shared.opts;
    let finish = |ok: bool| {
        ssp_probe::histogram!(
            "serve.request_us",
            work.admitted.elapsed().as_micros() as u64
        );
        if ok {
            shared.stats.ok.fetch_add(1, Ordering::Relaxed);
            ssp_probe::counter!("serve.ok");
        } else {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            ssp_probe::counter!("serve.error");
        }
    };

    let req = match protocol::parse_request(&work.line) {
        Ok(req) => req,
        Err(rej) => {
            deliver(
                shared,
                &work.sink,
                &protocol::error_line(&rej.id, rej.kind, &rej.message),
            );
            finish(false);
            return;
        }
    };

    let timeout = req.timeout.or(opts.default_timeout);
    let (budget, deadline) = retry::deadline_budget(opts.budget.clone(), work.admitted, timeout);

    // Load shedding: a deep queue or thin headroom means the requested
    // algorithm can no longer be afforded; step straight to the cheap,
    // total end of its degradation chain instead of timing out.
    let shed_reason = if depth_behind >= opts.shed_watermark {
        Some("load")
    } else if deadline
        .is_some_and(|at| at.saturating_duration_since(Instant::now()) < opts.min_headroom)
    {
        Some("deadline-pressure")
    } else {
        None
    };
    let effective_algo = match shed_reason {
        Some(_) if req.algo != Algo::Rr => {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            ssp_probe::counter!("serve.shed");
            Algo::Rr
        }
        _ => req.algo,
    };
    let shed = effective_algo != req.algo;

    let fp = Fingerprint::of(&req.instance);
    if opts.cache_cap > 0 {
        if let Some(hit) = shared.cache_lock().get(&fp, effective_algo) {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            if shed {
                shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
            }
            ssp_probe::counter!("serve.cache_hit");
            let response = OkResponse {
                id: req.id.clone(),
                algorithm: effective_algo,
                requested: req.algo,
                energy: hit.energy,
                lower_bound: hit.lower_bound,
                lb_ratio: hit.lb_ratio,
                degraded: shed,
                degrade_reason: shed_reason.filter(|_| shed),
                budget_exhausted: None,
                cache: CacheDisposition::Hit,
                retries: 0,
                wall_us: work.admitted.elapsed().as_micros() as u64,
            };
            deliver(shared, &work.sink, &response.to_line());
            finish(true);
            return;
        }
        shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        ssp_probe::counter!("serve.cache_miss");
    }

    let solve_opts = SolveOptions {
        budget,
        max_exact_jobs: opts.max_exact_jobs,
        degrade: !req.no_fallback,
        lower_bound: true,
    };
    let max_retries = req.retries.unwrap_or(opts.retry.max_retries);
    let outcome = retry::run_with_retry(&opts.retry, max_retries, deadline, |_attempt| {
        solve_once(&req, effective_algo, &solve_opts)
    });

    match outcome.result {
        // A schedule can be valid yet have an energy past f64 range
        // (overflow-scale adversarial instances). JSON cannot carry ±inf
        // and a certified bound is meaningless there, so answer with a
        // typed error instead of an `ok` whose energy reads as null.
        Ok(accepted) if !accepted.energy.is_finite() => {
            deliver(
                shared,
                &work.sink,
                &protocol::error_line(
                    &req.id,
                    "numeric",
                    "schedule energy is not finite (instance outside representable range)",
                ),
            );
            finish(false);
        }
        Ok(accepted) => {
            let degraded = shed || accepted.fell_back;
            if degraded {
                shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
            }
            // Cache only full-fidelity results: the algorithm asked of the
            // solver actually answered, with its budget intact, so a later
            // hit is indistinguishable from a fresh solve.
            if opts.cache_cap > 0 && !accepted.fell_back && accepted.budget_exhausted.is_none() {
                shared.cache_lock().insert(
                    fp,
                    effective_algo,
                    CachedResult {
                        energy: accepted.energy,
                        lower_bound: accepted.lower_bound,
                        lb_ratio: accepted.lb_ratio,
                    },
                );
            }
            let response = OkResponse {
                id: req.id.clone(),
                algorithm: accepted.algorithm,
                requested: req.algo,
                energy: accepted.energy,
                lower_bound: accepted.lower_bound,
                lb_ratio: accepted.lb_ratio,
                degraded,
                degrade_reason: if shed {
                    shed_reason
                } else if accepted.fell_back {
                    Some("fallback")
                } else {
                    None
                },
                budget_exhausted: accepted.budget_exhausted,
                cache: if opts.cache_cap > 0 {
                    CacheDisposition::Miss
                } else {
                    CacheDisposition::Bypass
                },
                retries: outcome.retries,
                wall_us: work.admitted.elapsed().as_micros() as u64,
            };
            deliver(shared, &work.sink, &response.to_line());
            finish(true);
        }
        Err(error) => {
            deliver(
                shared,
                &work.sink,
                &protocol::error_line(&req.id, error_kind(&error), &error.to_string()),
            );
            finish(false);
        }
    }
}

/// One solve attempt through the harness, folded to `Result` for the retry
/// loop. `solve_traced` self-degrades to an untraced solve while the
/// daemon's own session holds the probes, so counters/histograms fired by
/// the solvers land in the daemon trace. The extra `boundary::catch` seals
/// the service against panics in report handling itself.
fn solve_once(
    req: &Request,
    algo: Algo,
    solve_opts: &SolveOptions,
) -> Result<Accepted, SolveError> {
    boundary::catch(|| {
        let report = solve_traced(&req.instance, algo, solve_opts);
        match report.outcome {
            Some(outcome) => Ok(Accepted {
                algorithm: outcome.algorithm,
                energy: outcome.stats.energy,
                lower_bound: report.lower_bound,
                lb_ratio: outcome.lb_ratio,
                fell_back: outcome.algorithm != algo,
                budget_exhausted: outcome.budget_exhausted,
            }),
            None => Err(report
                .attempts
                .iter()
                .rev()
                .find_map(|a| a.error.clone())
                .unwrap_or(SolveError::Numeric {
                    message: "solve returned neither outcome nor error".into(),
                })),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::sync::Mutex as StdMutex;

    fn collecting_sink() -> (Sink, Arc<StdMutex<Vec<String>>>) {
        let lines = Arc::new(StdMutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let sink: Sink = Arc::new(move |line: &str| {
            sink_lines.lock().unwrap().push(line.to_string());
        });
        (sink, lines)
    }

    fn request_line(id: &str, algo: &str, njobs: usize) -> String {
        let jobs: Vec<String> = (0..njobs)
            .map(|i| format!("[{i},{}.5,{}.0,{}.0]", 1 + i % 3, i, i + 3))
            .collect();
        format!(
            r#"{{"id":"{id}","algo":"{algo}","instance":{{"machines":2,"alpha":2.0,"jobs":[{}]}}}}"#,
            jobs.join(",")
        )
    }

    fn drain(server: &mut Server) {
        server.shutdown();
    }

    #[test]
    fn solves_and_answers_every_admitted_request() {
        let mut server = Server::start(ServeOptions {
            workers: 2,
            ..Default::default()
        });
        let (sink, lines) = collecting_sink();
        for i in 0..8 {
            let algo = ["rr", "bal", "greedy", "least-loaded"][i % 4];
            assert!(server.submit(&request_line(&format!("r{i}"), algo, 4), Arc::clone(&sink)));
        }
        drain(&mut server);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 8);
        for line in lines.iter() {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("status").unwrap().as_str(), Some("ok"), "{line}");
            let ratio = v.get("lb_ratio").unwrap().as_f64().unwrap();
            assert!(ratio >= 1.0 - 1e-9, "{line}");
        }
        assert_eq!(server.stats().ok, 8);
        assert_eq!(server.stats().panics, 0);
    }

    #[test]
    fn overload_rejects_with_a_typed_response() {
        // No workers draining fast enough: 1 worker, tiny queue, slow-ish
        // jobs; overflow must reject synchronously.
        let mut server = Server::start(ServeOptions {
            workers: 1,
            queue_cap: 2,
            shed_watermark: usize::MAX,
            ..Default::default()
        });
        let (sink, lines) = collecting_sink();
        let mut rejected = 0;
        for i in 0..40 {
            if !server.submit(&request_line(&format!("r{i}"), "bal", 6), Arc::clone(&sink)) {
                rejected += 1;
            }
        }
        drain(&mut server);
        assert!(
            rejected > 0,
            "40 submissions into a 2-deep queue must overflow"
        );
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 40, "every request answered, accepted or not");
        let overloads = lines
            .iter()
            .filter(|l| l.contains(r#""kind":"overload""#))
            .count();
        assert_eq!(overloads, rejected);
        assert_eq!(server.stats().rejected, rejected as u64);
    }

    #[test]
    fn submissions_after_shutdown_get_typed_rejections() {
        let mut server = Server::start(ServeOptions::default());
        let (sink, lines) = collecting_sink();
        server.shutdown();
        assert!(!server.submit(&request_line("late", "rr", 2), sink));
        let lines = lines.lock().unwrap();
        assert!(lines[0].contains(r#""kind":"shutdown""#));
    }

    #[test]
    fn malformed_requests_get_typed_errors_not_dead_workers() {
        let mut server = Server::start(ServeOptions {
            workers: 1,
            ..Default::default()
        });
        let (sink, lines) = collecting_sink();
        server.submit("{definitely not json", Arc::clone(&sink));
        server.submit(
            r#"{"id":"bad-algo","algo":"nope","instance":"machines 1\nalpha 2\n"}"#,
            Arc::clone(&sink),
        );
        server.submit(&request_line("good", "rr", 3), Arc::clone(&sink));
        drain(&mut server);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().any(|l| l.contains(r#""kind":"parse""#)));
        assert!(lines
            .iter()
            .any(|l| l.contains(r#""kind":"unknown-algorithm""#)));
        assert!(lines.iter().any(|l| l.contains(r#""status":"ok""#)));
    }

    #[test]
    fn repeated_instances_hit_the_cache_with_identical_certified_numbers() {
        let mut server = Server::start(ServeOptions {
            workers: 1,
            ..Default::default()
        });
        let (sink, lines) = collecting_sink();
        for i in 0..3 {
            server.submit(&request_line(&format!("c{i}"), "bal", 5), Arc::clone(&sink));
        }
        drain(&mut server);
        let lines = lines.lock().unwrap();
        let parsed: Vec<_> = lines.iter().map(|l| json::parse(l).unwrap()).collect();
        let hits = parsed
            .iter()
            .filter(|v| v.get("cache").unwrap().as_str() == Some("hit"))
            .count();
        assert_eq!(hits, 2, "2nd and 3rd identical requests must hit");
        let energies: Vec<u64> = parsed
            .iter()
            .map(|v| v.get("energy").unwrap().as_f64().unwrap().to_bits())
            .collect();
        assert!(energies.windows(2).all(|w| w[0] == w[1]), "bit-identical");
        assert_eq!(server.stats().cache_hits, 2);
    }

    #[test]
    fn zero_timeout_is_a_deadline_failure_or_degraded_success_never_a_hang() {
        let mut server = Server::start(ServeOptions {
            workers: 1,
            min_headroom: Duration::ZERO, // disable shedding: exercise the deadline path
            ..Default::default()
        });
        let (sink, lines) = collecting_sink();
        let line = r#"{"id":"t0","algo":"bal","timeout_ms":0,"no_fallback":true,"instance":{"machines":2,"alpha":2.0,"jobs":[[0,1.5,0.0,2.0],[1,1.0,0.5,3.0]]}}"#;
        server.submit(line, Arc::clone(&sink));
        drain(&mut server);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1);
        let v = json::parse(&lines[0]).unwrap();
        // BAL's meter trips on "deadline"; it salvages a valid best-so-far
        // schedule (reported exhausted) or fails typed — both acceptable,
        // hanging or panicking is not.
        match v.get("status").unwrap().as_str().unwrap() {
            "ok" => assert_eq!(
                v.get("budget_exhausted").unwrap().as_str(),
                Some("deadline")
            ),
            "error" => assert_eq!(v.get("kind").unwrap().as_str(), Some("deadline")),
            other => panic!("unexpected status {other}"),
        }
    }

    #[test]
    fn deep_queue_sheds_to_rr_with_degraded_marker() {
        let mut server = Server::start(ServeOptions {
            workers: 1,
            queue_cap: 64,
            shed_watermark: 1, // anything with a queue behind it sheds
            ..Default::default()
        });
        let (sink, lines) = collecting_sink();
        for i in 0..6 {
            server.submit(&request_line(&format!("s{i}"), "bal", 4), Arc::clone(&sink));
        }
        drain(&mut server);
        let lines = lines.lock().unwrap();
        let shed: Vec<_> = lines
            .iter()
            .map(|l| json::parse(l).unwrap())
            .filter(|v| v.get("degrade_reason").unwrap().as_str() == Some("load"))
            .collect();
        assert!(
            !shed.is_empty(),
            "with a 1-deep watermark some requests must shed"
        );
        for v in &shed {
            assert_eq!(v.get("algorithm").unwrap().as_str(), Some("rr"));
            assert_eq!(v.get("requested").unwrap().as_str(), Some("bal"));
            assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
            // Degraded responses still answer with a certified bound met.
            let ratio = v.get("lb_ratio").unwrap().as_f64().unwrap();
            assert!(ratio >= 1.0 - 1e-9);
        }
        assert!(server.stats().shed > 0);
    }

    #[test]
    fn injected_transients_are_retried_and_reported() {
        let mut server = Server::start(ServeOptions {
            workers: 1,
            retry: RetryPolicy {
                inject_transient: 2,
                base_backoff: Duration::from_micros(200),
                ..Default::default()
            },
            ..Default::default()
        });
        let (sink, lines) = collecting_sink();
        server.submit(&request_line("rt", "rr", 3), Arc::clone(&sink));
        drain(&mut server);
        let lines = lines.lock().unwrap();
        let v = json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn a_panicking_sink_cannot_kill_the_pool() {
        let mut server = Server::start(ServeOptions {
            workers: 1,
            ..Default::default()
        });
        let bomb: Sink = Arc::new(|_line: &str| panic!("sink bomb"));
        server.submit(&request_line("boom", "rr", 2), bomb);
        let (sink, lines) = collecting_sink();
        server.submit(&request_line("after", "rr", 2), Arc::clone(&sink));
        drain(&mut server);
        assert_eq!(
            lines.lock().unwrap().len(),
            1,
            "pool survived the sink bomb"
        );
        assert!(server.stats().panics > 0);
    }
}
