//! The `ssp serve` wire protocol: one JSON object per line, in and out.
//!
//! A request names an algorithm and carries an instance, either structured
//! (`{"machines":2,"alpha":2.0,"jobs":[[id,work,release,deadline],…]}`) or
//! as an embedded `.ssp` text document (the same format `ssp solve` reads
//! from disk). Every response — success or failure — echoes the request
//! `id` so clients can pipeline: responses come back in completion order,
//! not submission order.
//!
//! Failures are *typed*: `status:"error"` plus a stable `kind` drawn from
//! the [`ssp_model::SolveError`] kinds extended with the service-level
//! `"parse"`, `"overload"`, and `"shutdown"`. A malformed request can never
//! produce a malformed response — the error path re-serializes through the
//! same writer as the success path. See `docs/SERVE.md` for the full field
//! tables.

use crate::json::{self, Json};
use ssp_harness::Algo;
use ssp_model::{io, Instance};
use std::time::Duration;

/// A parsed, validated solve request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: String,
    /// The requested algorithm.
    pub algo: Algo,
    /// The instance to solve.
    pub instance: Instance,
    /// Per-request deadline, measured from admission; `None` = server
    /// default.
    pub timeout: Option<Duration>,
    /// Retry budget for transient failures; `None` = server default.
    pub retries: Option<u32>,
    /// Disable the harness degradation chain for this request (the
    /// requested algorithm either succeeds or the request fails typed).
    pub no_fallback: bool,
}

/// A typed request-rejection: stable kind + human-readable message.
#[derive(Debug, Clone)]
pub struct Reject {
    /// Best-effort request id salvaged from the raw line ("" when even the
    /// id could not be recovered).
    pub id: String,
    /// Stable machine-readable failure class (`"parse"`, `"model"`,
    /// `"unknown-algorithm"`, …).
    pub kind: &'static str,
    /// What went wrong.
    pub message: String,
}

/// Where the result came from, reported on every success response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served from the fingerprint cache without solving.
    Hit,
    /// Solved; the result was considered for caching.
    Miss,
    /// Solved; caching was disabled or the result was ineligible.
    Bypass,
}

impl CacheDisposition {
    fn name(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Bypass => "bypass",
        }
    }
}

/// Everything a success response carries.
#[derive(Debug, Clone)]
pub struct OkResponse {
    /// Echoed request id.
    pub id: String,
    /// Algorithm whose schedule was accepted.
    pub algorithm: Algo,
    /// Algorithm the client asked for.
    pub requested: Algo,
    /// Validated schedule energy.
    pub energy: f64,
    /// Certified BAL/KKT lower bound, when computed.
    pub lower_bound: Option<f64>,
    /// `energy / lower_bound`, when a bound exists.
    pub lb_ratio: Option<f64>,
    /// True when the service did not deliver the requested algorithm at
    /// full fidelity: load shedding picked a cheaper algorithm up front,
    /// or the harness fell back along its chain.
    pub degraded: bool,
    /// Why the response is degraded (`"load"`, `"deadline-pressure"`,
    /// `"fallback"`), when it is.
    pub degrade_reason: Option<&'static str>,
    /// Budget-exhaustion marker from the winning solver (`"iterations"`,
    /// `"time"`, `"deadline"`, `"cancelled"`), if it stopped early with a
    /// valid best-so-far schedule.
    pub budget_exhausted: Option<&'static str>,
    /// Cache disposition for this response.
    pub cache: CacheDisposition,
    /// How many transient-failure retries were spent.
    pub retries: u32,
    /// Wall-clock admission→response latency in microseconds.
    pub wall_us: u64,
}

impl OkResponse {
    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("status".to_string(), Json::Str("ok".into())),
            (
                "algorithm".to_string(),
                Json::Str(self.algorithm.name().into()),
            ),
            (
                "requested".to_string(),
                Json::Str(self.requested.name().into()),
            ),
            ("energy".to_string(), Json::Num(self.energy)),
            (
                "lower_bound".to_string(),
                self.lower_bound.map_or(Json::Null, Json::Num),
            ),
            (
                "lb_ratio".to_string(),
                self.lb_ratio.map_or(Json::Null, Json::Num),
            ),
            ("degraded".to_string(), Json::Bool(self.degraded)),
            (
                "degrade_reason".to_string(),
                self.degrade_reason
                    .map_or(Json::Null, |r| Json::Str(r.into())),
            ),
            (
                "budget_exhausted".to_string(),
                self.budget_exhausted
                    .map_or(Json::Null, |r| Json::Str(r.into())),
            ),
            ("cache".to_string(), Json::Str(self.cache.name().into())),
            ("retries".to_string(), Json::Num(self.retries as f64)),
            ("wall_us".to_string(), Json::Num(self.wall_us as f64)),
        ];
        fields.shrink_to_fit();
        Json::Obj(fields).to_string_compact()
    }
}

/// Serialize a typed error response to one JSONL line (no newline).
pub fn error_line(id: &str, kind: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("status".to_string(), Json::Str("error".into())),
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("message".to_string(), Json::Str(message.to_string())),
    ])
    .to_string_compact()
}

/// Best-effort id extraction from a raw request line, so even unparseable
/// requests get a correlatable error response.
pub fn salvage_id(line: &str) -> String {
    json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(|s| s.as_str().map(String::from)))
        .unwrap_or_default()
}

/// Parse and validate one request line.
pub fn parse_request(line: &str) -> Result<Request, Reject> {
    let reject = |id: &str, kind: &'static str, message: String| Reject {
        id: id.to_string(),
        kind,
        message,
    };
    let root = json::parse(line).map_err(|e| reject("", "parse", format!("bad JSON: {e}")))?;
    if !matches!(root, Json::Obj(_)) {
        return Err(reject("", "parse", "request must be a JSON object".into()));
    }
    let id = root
        .get("id")
        .and_then(|v| v.as_str())
        .unwrap_or_default()
        .to_string();
    let algo_name = match root.get("algo") {
        None => "bal",
        Some(v) => v
            .as_str()
            .ok_or_else(|| reject(&id, "parse", "'algo' must be a string".into()))?,
    };
    let algo =
        Algo::from_name(algo_name).map_err(|e| reject(&id, "unknown-algorithm", e.to_string()))?;
    let timeout = match root.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
            reject(
                &id,
                "parse",
                "'timeout_ms' must be a non-negative integer".into(),
            )
        })?)),
    };
    let retries = match root.get("retries") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            reject(
                &id,
                "parse",
                "'retries' must be a non-negative integer".into(),
            )
        })? as u32),
    };
    let no_fallback = match root.get("no_fallback") {
        None | Some(Json::Null) => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| reject(&id, "parse", "'no_fallback' must be a boolean".into()))?,
    };
    let instance = match root.get("instance") {
        None => return Err(reject(&id, "parse", "missing 'instance'".into())),
        Some(Json::Str(text)) => {
            io::parse(text).map_err(|e| reject(&id, "model", e.to_string()))?
        }
        Some(obj @ Json::Obj(_)) => {
            parse_structured_instance(obj).map_err(|(kind, msg)| reject(&id, kind, msg))?
        }
        Some(_) => {
            return Err(reject(
                &id,
                "parse",
                "'instance' must be an object or an .ssp text string".into(),
            ))
        }
    };
    Ok(Request {
        id,
        algo,
        instance,
        timeout,
        retries,
        no_fallback,
    })
}

/// Cap on jobs per request: admission control against memory bombs. One
/// request is one instance, and nothing in the workspace solves 10^6-job
/// instances interactively.
pub const MAX_REQUEST_JOBS: usize = 100_000;

fn parse_structured_instance(obj: &Json) -> Result<Instance, (&'static str, String)> {
    let machines = obj.get("machines").and_then(|v| v.as_u64()).ok_or((
        "parse",
        "'instance.machines' must be a positive integer".to_string(),
    ))?;
    let alpha = obj
        .get("alpha")
        .and_then(|v| v.as_f64())
        .ok_or(("parse", "'instance.alpha' must be a number".to_string()))?;
    let jobs_json = obj
        .get("jobs")
        .and_then(|v| v.as_arr())
        .ok_or(("parse", "'instance.jobs' must be an array".to_string()))?;
    if jobs_json.len() > MAX_REQUEST_JOBS {
        return Err((
            "parse",
            format!(
                "{} jobs exceeds the per-request cap {MAX_REQUEST_JOBS}",
                jobs_json.len()
            ),
        ));
    }
    let mut jobs = Vec::with_capacity(jobs_json.len());
    for (i, j) in jobs_json.iter().enumerate() {
        let tuple = j.as_arr().filter(|t| t.len() == 4).ok_or((
            "parse",
            format!("job {i} must be [id, work, release, deadline]"),
        ))?;
        let id = tuple[0]
            .as_u64()
            .filter(|&v| v <= u32::MAX as u64)
            .ok_or(("parse", format!("job {i}: id must be a u32")))?;
        let nums: Vec<f64> = tuple[1..]
            .iter()
            .map(|v| v.as_f64())
            .collect::<Option<_>>()
            .ok_or((
                "parse",
                format!("job {i}: work/release/deadline must be numbers"),
            ))?;
        jobs.push(ssp_model::Job::new(id as u32, nums[0], nums[1], nums[2]));
    }
    Instance::new(jobs, machines as usize, alpha).map_err(|e| ("model", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_structured_request() {
        let line = r#"{"id":"r1","algo":"bal","timeout_ms":250,"retries":2,
            "instance":{"machines":2,"alpha":2.0,"jobs":[[0,1.5,0.0,2.0],[1,1.0,0.5,3.0]]}}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.id, "r1");
        assert_eq!(req.algo, Algo::Bal);
        assert_eq!(req.timeout, Some(Duration::from_millis(250)));
        assert_eq!(req.retries, Some(2));
        assert!(!req.no_fallback);
        assert_eq!(req.instance.len(), 2);
        assert_eq!(req.instance.machines(), 2);
    }

    #[test]
    fn parses_an_ssp_text_instance() {
        let text = "machines 2\nalpha 2.0\njob 0 1.5 0.0 2.0\njob 1 1.0 0.5 3.0\n";
        let line = Json::Obj(vec![
            ("id".into(), Json::Str("t".into())),
            ("algo".into(), Json::Str("rr".into())),
            ("instance".into(), Json::Str(text.into())),
        ])
        .to_string_compact();
        let req = parse_request(&line).unwrap();
        assert_eq!(req.algo, Algo::Rr);
        assert_eq!(req.instance.len(), 2);
    }

    #[test]
    fn defaults_algo_to_bal() {
        let line = r#"{"id":"d","instance":{"machines":1,"alpha":2,"jobs":[[0,1,0,1]]}}"#;
        assert_eq!(parse_request(line).unwrap().algo, Algo::Bal);
    }

    #[test]
    fn rejections_are_typed_and_keep_the_id() {
        let cases: &[(&str, &str)] = &[
            ("not json at all", "parse"),
            ("[1,2,3]", "parse"),
            (
                r#"{"id":"x","algo":7,"instance":{"machines":1,"alpha":2,"jobs":[]}}"#,
                "parse",
            ),
            (
                r#"{"id":"x","algo":"nope","instance":{"machines":1,"alpha":2,"jobs":[]}}"#,
                "unknown-algorithm",
            ),
            (r#"{"id":"x"}"#, "parse"),
            (
                r#"{"id":"x","instance":{"machines":0,"alpha":2,"jobs":[]}}"#,
                "model",
            ),
            (
                r#"{"id":"x","instance":{"machines":1,"alpha":2,"jobs":[[0,-1,0,1]]}}"#,
                "model",
            ),
            (
                r#"{"id":"x","instance":{"machines":1,"alpha":2,"jobs":[[0,1,2,1]]}}"#,
                "model",
            ),
            (r#"{"id":"x","instance":"machines zero"}"#, "model"),
            (r#"{"id":"x","instance":7}"#, "parse"),
            (
                r#"{"id":"x","timeout_ms":-5,"instance":{"machines":1,"alpha":2,"jobs":[]}}"#,
                "parse",
            ),
        ];
        for (line, kind) in cases {
            let rej = parse_request(line).unwrap_err();
            assert_eq!(rej.kind, *kind, "{line}");
            if line.contains("\"id\":\"x\"") {
                assert_eq!(rej.id, "x", "{line}");
            }
        }
    }

    #[test]
    fn salvages_ids_from_broken_requests() {
        assert_eq!(salvage_id(r#"{"id":"q9","instance":7}"#), "q9");
        assert_eq!(salvage_id("garbage"), "");
    }

    #[test]
    fn responses_are_parseable_json_with_stable_fields() {
        let ok = OkResponse {
            id: "a\"b".into(),
            algorithm: Algo::Rr,
            requested: Algo::Bal,
            energy: 12.5,
            lower_bound: Some(12.0),
            lb_ratio: Some(12.5 / 12.0),
            degraded: true,
            degrade_reason: Some("load"),
            budget_exhausted: None,
            cache: CacheDisposition::Miss,
            retries: 1,
            wall_us: 420,
        };
        let v = json::parse(&ok.to_line()).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("rr"));
        assert_eq!(v.get("requested").unwrap().as_str(), Some("bal"));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("degrade_reason").unwrap().as_str(), Some("load"));
        assert_eq!(v.get("budget_exhausted"), Some(&Json::Null));
        assert_eq!(v.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("wall_us").unwrap().as_u64(), Some(420));

        let err = error_line("x", "overload", "queue full (64)");
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("overload"));
    }
}
