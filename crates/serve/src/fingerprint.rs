//! Permutation-invariant instance fingerprints and the certified-result
//! cache.
//!
//! Two requests that describe the same mathematical instance — same
//! multiset of (work, release, deadline) triples, same machine count, same
//! α — must hit the same cache line regardless of job order or job ids
//! (neither affects the optimum). The canonical form is therefore the
//! *sorted* list of bit-exact triples; job ids are deliberately dropped.
//!
//! Correctness over cuteness: the cache key is the **full canonical form**,
//! not a digest. A 64-bit hash collision between two distinct instances
//! would silently return a wrong certified energy, which is exactly the
//! class of bug a robustness layer must not introduce; with the exact key,
//! a collision degrades to an ordinary equality check. The FNV-1a digest
//! exists only for display (logs, the `serve.cache` counters, EXP-21
//! tables).
//!
//! Only full-fidelity results are cached: the accepted algorithm must be
//! the requested one and its budget unexhausted, so a cache hit is
//! indistinguishable from a fresh solve (same energy, same certified
//! bound). Entries are evicted least-recently-used beyond a fixed
//! capacity.

use ssp_harness::Algo;
use ssp_model::Instance;
use std::collections::HashMap;

/// The exact canonical form of an instance, used as the cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Sorted `(work, release, deadline)` triples, as raw f64 bits.
    jobs: Vec<(u64, u64, u64)>,
    machines: usize,
    alpha: u64,
}

impl Fingerprint {
    /// Canonicalize an instance: job order and job ids do not matter.
    pub fn of(instance: &Instance) -> Self {
        let mut jobs: Vec<(u64, u64, u64)> = instance
            .jobs()
            .iter()
            .map(|j| (j.work.to_bits(), j.release.to_bits(), j.deadline.to_bits()))
            .collect();
        jobs.sort_unstable();
        Fingerprint {
            jobs,
            machines: instance.machines(),
            alpha: instance.alpha().to_bits(),
        }
    }

    /// 64-bit FNV-1a digest of the canonical form — for display only,
    /// never for equality.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for &(w, r, d) in &self.jobs {
            eat(w);
            eat(r);
            eat(d);
        }
        eat(self.machines as u64);
        eat(self.alpha);
        h
    }
}

/// A cached full-fidelity solve result.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Validated schedule energy.
    pub energy: f64,
    /// Certified BAL/KKT lower bound, when the solve computed one.
    pub lower_bound: Option<f64>,
    /// `energy / lower_bound`, when a bound exists.
    pub lb_ratio: Option<f64>,
}

/// LRU-bounded map from `(fingerprint, algorithm)` to certified results.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<(Fingerprint, Algo), (CachedResult, u64)>,
    clock: u64,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely: every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            clock: 0,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a result, refreshing its recency on hit.
    pub fn get(&mut self, fp: &Fingerprint, algo: Algo) -> Option<CachedResult> {
        self.clock += 1;
        let clock = self.clock;
        // A lookup key borrowing `fp` would need a custom Borrow impl;
        // cloning the fingerprint on lookup is fine at request granularity.
        let entry = self.map.get_mut(&(fp.clone(), algo))?;
        entry.1 = clock;
        Some(entry.0.clone())
    }

    /// Insert a result, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, fp: Fingerprint, algo: Algo, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&(fp.clone(), algo)) {
            // Linear LRU scan: capacity is a few hundred, eviction is rare
            // relative to solves, and this keeps the structure obvious.
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert((fp, algo), (result, self.clock));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::Job;

    fn inst(jobs: Vec<Job>, m: usize, alpha: f64) -> Instance {
        Instance::new(jobs, m, alpha).unwrap()
    }

    #[test]
    fn ignores_job_order_and_ids() {
        let a = inst(
            vec![Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 2.0, 1.0, 3.0)],
            2,
            2.0,
        );
        let b = inst(
            vec![Job::new(9, 2.0, 1.0, 3.0), Job::new(4, 1.0, 0.0, 2.0)],
            2,
            2.0,
        );
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
        assert_eq!(Fingerprint::of(&a).digest(), Fingerprint::of(&b).digest());
    }

    #[test]
    fn distinguishes_machines_alpha_and_any_field() {
        let base = inst(vec![Job::new(0, 1.0, 0.0, 2.0)], 2, 2.0);
        let fp = Fingerprint::of(&base);
        for other in [
            inst(vec![Job::new(0, 1.0, 0.0, 2.0)], 3, 2.0),
            inst(vec![Job::new(0, 1.0, 0.0, 2.0)], 2, 2.5),
            inst(vec![Job::new(0, 1.5, 0.0, 2.0)], 2, 2.0),
            inst(vec![Job::new(0, 1.0, 0.5, 2.0)], 2, 2.0),
            inst(vec![Job::new(0, 1.0, 0.0, 2.5)], 2, 2.0),
            inst(
                vec![Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 1.0, 0.0, 2.0)],
                2,
                2.0,
            ),
        ] {
            assert_ne!(fp, Fingerprint::of(&other), "{other:?}");
        }
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = ResultCache::new(2);
        let f = |seed: u32| {
            Fingerprint::of(&inst(
                vec![Job::new(0, 1.0 + seed as f64, 0.0, 2.0)],
                1,
                2.0,
            ))
        };
        let r = CachedResult {
            energy: 1.0,
            lower_bound: None,
            lb_ratio: None,
        };
        cache.insert(f(1), Algo::Rr, r.clone());
        cache.insert(f(2), Algo::Rr, r.clone());
        assert!(cache.get(&f(1), Algo::Rr).is_some()); // refresh 1 → 2 is LRU
        cache.insert(f(3), Algo::Rr, r.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&f(2), Algo::Rr).is_none(), "2 was evicted");
        assert!(cache.get(&f(1), Algo::Rr).is_some());
        assert!(cache.get(&f(3), Algo::Rr).is_some());
    }

    #[test]
    fn keyed_by_algorithm_too() {
        let mut cache = ResultCache::new(8);
        let fp = Fingerprint::of(&inst(vec![Job::new(0, 1.0, 0.0, 2.0)], 1, 2.0));
        cache.insert(
            fp.clone(),
            Algo::Rr,
            CachedResult {
                energy: 5.0,
                lower_bound: None,
                lb_ratio: None,
            },
        );
        assert!(cache.get(&fp, Algo::Bal).is_none());
        assert_eq!(cache.get(&fp, Algo::Rr).unwrap().energy, 5.0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        let fp = Fingerprint::of(&inst(vec![Job::new(0, 1.0, 0.0, 2.0)], 1, 2.0));
        cache.insert(
            fp.clone(),
            Algo::Rr,
            CachedResult {
                energy: 5.0,
                lower_bound: None,
                lb_ratio: None,
            },
        );
        assert!(cache.is_empty());
        assert!(cache.get(&fp, Algo::Rr).is_none());
    }
}
