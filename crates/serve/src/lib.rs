//! # ssp-serve
//!
//! The fault-tolerant batched solve service behind `ssp serve`: a bounded
//! admission queue feeding a fixed worker pool, where every request runs
//! through the [`ssp_harness`] robustness stack with per-request
//! `catch_unwind` isolation, per-request deadlines (cooperatively observed
//! inside BAL bisection and local-search loops via
//! [`ssp_model::CancelToken`]/deadline-aware [`ssp_model::Budget`]s),
//! bounded retry with exponential backoff + jitter, load shedding down the
//! degradation chain, and a permutation-invariant instance-fingerprint
//! cache that reuses certified energies and lower bounds for repeated
//! traffic.
//!
//! The crate is transport-agnostic: [`server::Server::submit`] takes raw
//! JSONL request lines and a response sink, so the CLI's stdin loop, its
//! Unix-socket listener, the chaos tests, and the EXP-21 soak all exercise
//! the identical code path. Protocol and semantics are documented in
//! `docs/SERVE.md`; the `serve.*` observability surface in
//! `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod fingerprint;
pub mod json;
pub mod protocol;
pub mod retry;
pub mod server;

pub use fingerprint::{CachedResult, Fingerprint, ResultCache};
pub use protocol::{parse_request, OkResponse, Reject, Request};
pub use retry::RetryPolicy;
pub use server::{ServeOptions, Server, ServerHandle, Sink, StatsSnapshot};
