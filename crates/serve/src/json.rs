//! A minimal JSON value type with a hardened parser and a writer.
//!
//! The workspace is deliberately dependency-free, so the serve protocol
//! carries its own JSON layer rather than pulling in serde. The parser is
//! written for a *hostile* wire: it is recursive-descent with an explicit
//! nesting-depth cap (a 10 kB `[[[[…` bomb must return a parse error, not
//! blow the worker's stack), rejects trailing garbage, and never panics on
//! any byte sequence. The writer escapes control characters and maps
//! non-finite numbers to `null` (JSON has no `NaN`), and `f64` values are
//! emitted with Rust's shortest-round-trip formatting so energies survive
//! a response→parse cycle bit for bit.

use std::fmt::Write as _;

/// Maximum nesting depth the parser will follow before bailing out with a
/// typed error. Deep enough for any legitimate request (the protocol nests
/// 3 levels), shallow enough that adversarial input cannot overflow the
/// stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, later duplicates win on lookup is NOT
    /// guaranteed — [`Json::get`] returns the first match.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a single-line JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected a value at byte {start}"));
    }
    let slice = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    let n: f64 = slice
        .parse()
        .map_err(|_| format!("bad number '{slice}' at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number '{slice}' at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pair: a high surrogate must be followed
                        // by `\uDC00..DFFF`; anything else is replaced.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    *pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8 string")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    if at + 4 > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let s = std::str::from_utf8(&bytes[at..at + 4]).map_err(|_| "non-utf8 \\u escape")?;
    u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape '{s}'"))
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_basic_shapes() {
        for text in [
            r#"{"a":1,"b":[true,false,null],"c":"x\ny","d":{"e":-2.5e3}}"#,
            "[]",
            "{}",
            r#""just a string""#,
            "3.141592653589793",
        ] {
            let v = parse(text).unwrap();
            let re = parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, re, "{text}");
        }
    }

    #[test]
    fn f64_survives_a_write_parse_cycle_exactly() {
        for x in [1.0 / 3.0, 6.02e23, -0.1, f64::MIN_POSITIVE, 1e308] {
            let v = Json::Num(x);
            let back = parse(&v.to_string_compact()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn depth_bomb_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(10_000);
        assert!(parse(&bomb).is_err());
        let bomb2 = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&bomb2).unwrap_err().contains("nesting"));
    }

    #[test]
    fn hostile_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "nulll x",
            "1 2",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"ctrl \u{0}\"",
            "NaN",
            "1e999",
            "--3",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_incl_surrogates() {
        assert_eq!(parse(r#""A😀""#).unwrap().as_str().unwrap(), "A😀");
        // Lone high surrogate → replacement character, not a panic.
        assert_eq!(parse(r#""\ud83d""#).unwrap().as_str().unwrap(), "\u{FFFD}");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"s":"x","b":true,"a":[1],"f":2.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }
}
