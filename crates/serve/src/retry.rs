//! Bounded retry with exponential backoff and seeded jitter.
//!
//! The harness already turns every failure into typed data; this module
//! decides which of those failures are worth a second attempt. Only
//! *transient* kinds are retried — a caught panic or a numeric blow-up can
//! be an artifact of one particular trajectory, while a model error or a
//! precondition violation is deterministic and will fail identically every
//! time. Deadline/cancellation exhaustion is never retried: the time is
//! already gone.
//!
//! Backoff doubles from [`RetryPolicy::base_backoff`] up to
//! [`RetryPolicy::max_backoff`] with multiplicative jitter in `[0.5, 1.0)`
//! drawn from the workspace PRNG, so a burst of poisoned requests
//! desynchronizes instead of hammering in lockstep. The jitter stream is
//! seeded per call site, which keeps service runs reproducible — the same
//! seed and request order replay the same sleeps.
//!
//! For deterministic tests (and the `--inject-transient` CLI flag) the
//! policy can synthesize failures: the first
//! [`RetryPolicy::inject_transient`] attempts fail with a typed
//! [`SolveError::Numeric`] before the solver even runs.

use ssp_model::resource::Budget;
use ssp_model::SolveError;
use ssp_prng::rngs::StdRng;
use ssp_prng::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Retry configuration; one per service (per-request override on the count).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 = at most one attempt).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
    /// Fail this many leading attempts with a synthetic transient error
    /// (testing hook; 0 in production).
    pub inject_transient: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0x5E12E,
            inject_transient: 0,
        }
    }
}

/// Is this failure worth retrying? Panics and numeric blow-ups may be
/// trajectory-dependent; everything else is deterministic or already
/// accounts for elapsed time.
pub fn is_transient(error: &SolveError) -> bool {
    matches!(
        error,
        SolveError::InternalPanic { .. } | SolveError::Numeric { .. }
    )
}

/// Outcome of [`run_with_retry`].
pub struct RetryOutcome<T> {
    /// The last attempt's result.
    pub result: Result<T, SolveError>,
    /// How many retries were spent (0 = first attempt settled it).
    pub retries: u32,
}

/// Drive `attempt` through the policy. `deadline` bounds the whole loop:
/// no retry is launched (nor slept for) once it would start past the
/// deadline — the last failure is returned instead. Each successful result
/// is final; each transient failure costs one retry plus a jittered
/// backoff sleep.
pub fn run_with_retry<T>(
    policy: &RetryPolicy,
    max_retries: u32,
    deadline: Option<Instant>,
    mut attempt: impl FnMut(u32) -> Result<T, SolveError>,
) -> RetryOutcome<T> {
    let mut rng = StdRng::seed_from_u64(policy.jitter_seed);
    let mut retries = 0u32;
    loop {
        let attempt_no = retries;
        let result = if attempt_no < policy.inject_transient {
            Err(SolveError::Numeric {
                message: format!("injected transient failure (attempt {attempt_no})"),
            })
        } else {
            attempt(attempt_no)
        };
        let err = match result {
            Ok(value) => {
                return RetryOutcome {
                    result: Ok(value),
                    retries,
                }
            }
            Err(e) => e,
        };
        let give_up = retries >= max_retries || !is_transient(&err);
        if give_up {
            return RetryOutcome {
                result: Err(err),
                retries,
            };
        }
        let pause = backoff(policy, retries, &mut rng);
        if let Some(at) = deadline {
            // Sleeping through the deadline would turn a salvageable typed
            // failure into a guaranteed deadline failure; stop here.
            if Instant::now() + pause >= at {
                return RetryOutcome {
                    result: Err(err),
                    retries,
                };
            }
        }
        ssp_probe::counter!("serve.retry");
        std::thread::sleep(pause);
        retries += 1;
    }
}

/// The `attempt`-th backoff: `base · 2^attempt`, capped, jittered by a
/// factor in `[0.5, 1.0)`.
fn backoff(policy: &RetryPolicy, attempt: u32, rng: &mut StdRng) -> Duration {
    let exp = policy
        .base_backoff
        .saturating_mul(1u32 << attempt.min(16))
        .min(policy.max_backoff);
    exp.mul_f64(rng.gen_range(0.5..1.0))
}

/// Convenience: the absolute deadline implied by a timeout from `start`,
/// already threaded into `budget`. Returns the budget with deadline set
/// (when a timeout applies) and the deadline itself.
pub fn deadline_budget(
    budget: Budget,
    start: Instant,
    timeout: Option<Duration>,
) -> (Budget, Option<Instant>) {
    match timeout {
        Some(t) => {
            let at = start + t;
            (budget.with_deadline(at), Some(at))
        }
        None => (budget, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy(inject: u32) -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(400),
            inject_transient: inject,
            ..Default::default()
        }
    }

    #[test]
    fn first_success_spends_no_retries() {
        let out = run_with_retry(&quick_policy(0), 3, None, |_| Ok(42));
        assert_eq!(out.result.unwrap(), 42);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn injected_transients_are_retried_through() {
        let out = run_with_retry(&quick_policy(2), 3, None, |a| {
            assert!(a >= 2, "attempts 0,1 must be injected failures");
            Ok(a)
        });
        assert_eq!(out.result.unwrap(), 2);
        assert_eq!(out.retries, 2);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut calls = 0u32;
        let out = run_with_retry(&quick_policy(0), 2, None, |_| {
            calls += 1;
            Err::<(), _>(SolveError::Numeric {
                message: "always".into(),
            })
        });
        assert_eq!(calls, 3, "1 attempt + 2 retries");
        assert_eq!(out.retries, 2);
        assert!(matches!(out.result, Err(SolveError::Numeric { .. })));
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let mut calls = 0u32;
        let out = run_with_retry(&quick_policy(0), 5, None, |_| {
            calls += 1;
            Err::<(), _>(SolveError::UnknownAlgorithm { name: "x".into() })
        });
        assert_eq!(calls, 1);
        assert_eq!(out.retries, 0);
        assert!(out.result.is_err());
    }

    #[test]
    fn deadline_stops_the_retry_loop() {
        let deadline = Instant::now(); // already expired
        let mut calls = 0u32;
        let out = run_with_retry(&quick_policy(0), 5, Some(deadline), |_| {
            calls += 1;
            Err::<(), _>(SolveError::Numeric {
                message: "transient".into(),
            })
        });
        assert_eq!(calls, 1, "no retry may start past the deadline");
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn transience_classification() {
        assert!(is_transient(&SolveError::InternalPanic {
            message: "p".into()
        }));
        assert!(is_transient(&SolveError::Numeric {
            message: "n".into()
        }));
        assert!(!is_transient(&SolveError::Infeasible {
            message: "i".into()
        }));
        assert!(!is_transient(&SolveError::BudgetExhausted {
            resource: "deadline",
            message: "d".into()
        }));
        assert!(!is_transient(&SolveError::Precondition {
            algorithm: "exact",
            message: "n too big".into()
        }));
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(10),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        for attempt in 0..8 {
            let b = backoff(&p, attempt, &mut rng);
            let cap = Duration::from_millis(4)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(10));
            assert!(b >= cap.mul_f64(0.5) && b < cap, "attempt {attempt}: {b:?}");
        }
        // Same seed → same sleep schedule (reproducible service runs).
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for attempt in 0..4 {
            assert_eq!(backoff(&p, attempt, &mut a), backoff(&p, attempt, &mut b));
        }
    }
}
