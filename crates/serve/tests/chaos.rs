//! Chaos suite: the daemon must survive a sustained stream of hostile
//! traffic — corrupted instances from the harness [`FaultPlan`], raw
//! garbage, unknown algorithms, zero deadlines — with **zero daemon
//! deaths** and **exactly one well-formed response per submission**.
//!
//! This is the in-process half of the robustness acceptance; EXP-21 runs
//! the same service at soak scale with latency reporting, and CI's
//! serve-smoke drives the real binary over a Unix socket.

use ssp_harness::fault::{FaultPlan, FAULT_KINDS};
use ssp_serve::json::{self, Json};
use ssp_serve::{ServeOptions, Server, Sink};
use ssp_workloads::families;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn collecting_sink() -> (Sink, Arc<Mutex<Vec<String>>>) {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink_lines = Arc::clone(&lines);
    let sink: Sink = Arc::new(move |line: &str| {
        sink_lines.lock().unwrap().push(line.to_string());
    });
    (sink, lines)
}

/// Build a request line with the instance embedded as `.ssp` text (the
/// same shape `serve-drive` and the CI smoke send).
fn request(id: &str, algo: &str, instance_text: &str, extra: &[(&str, Json)]) -> String {
    let mut fields = vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("algo".to_string(), Json::Str(algo.to_string())),
        ("instance".to_string(), Json::Str(instance_text.to_string())),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v.clone()));
    }
    Json::Obj(fields).to_string_compact()
}

#[test]
fn two_hundred_hostile_requests_cannot_kill_the_daemon() {
    const TOTAL: usize = 240;
    let mut server = Server::start(ServeOptions {
        workers: 4,
        queue_cap: TOTAL, // chaos here targets the solve path, not admission
        shed_watermark: usize::MAX,
        default_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    });
    let (sink, lines) = collecting_sink();

    let plan = FaultPlan::new(0xC4A05);
    let algos = ["bal", "rr", "local", "greedy", "least-loaded", "avr", "oa"];
    let mut submitted = 0usize;
    let mut fault_cases = 0usize;
    let mut expected_ids = Vec::new();
    for i in 0..TOTAL {
        let line = match i % 6 {
            // Corrupted / adversarial instances, cycling all fault kinds.
            0 | 1 => {
                let case = plan.case(fault_cases);
                fault_cases += 1;
                let id = format!("fault-{i}-{}", case.fault);
                expected_ids.push(id.clone());
                request(&id, algos[i % algos.len()], &case.text, &[])
            }
            // Raw garbage: not JSON at all, or JSON of the wrong shape.
            2 if i % 12 == 2 => "}{ not json at all".to_string(),
            2 => r#"[1,2,3]"#.to_string(),
            // Unknown algorithm on a valid instance.
            3 => {
                let inst = families::general(5, 2, 2.0).gen(i as u64);
                let id = format!("badalgo-{i}");
                expected_ids.push(id.clone());
                request(&id, "frobnicate", &ssp_model::io::emit(&inst), &[])
            }
            // Valid requests, some with hostile deadlines/no_fallback.
            _ => {
                let inst = families::bursty(7, 2, 2.5).gen(i as u64);
                let id = format!("ok-{i}");
                expected_ids.push(id.clone());
                let extra: Vec<(&str, Json)> = match i % 5 {
                    0 => vec![
                        ("timeout_ms", Json::Num(0.0)),
                        ("no_fallback", Json::Bool(true)),
                    ],
                    1 => vec![("timeout_ms", Json::Num(1.0))],
                    _ => vec![],
                };
                request(
                    &id,
                    algos[i % algos.len()],
                    &ssp_model::io::emit(&inst),
                    &extra,
                )
            }
        };
        server.submit(&line, Arc::clone(&sink));
        submitted += 1;
    }
    assert!(submitted >= 200, "chaos volume floor");
    // The fault menu is cycled by case index, so this covers every kind.
    assert!(fault_cases >= FAULT_KINDS, "fault menu fully cycled");

    server.shutdown();
    let stats = server.stats();

    // Zero daemon deaths: shutdown returned, workers joined, and no panic
    // ever escaped per-request isolation.
    assert_eq!(stats.panics, 0, "no panics even under chaos: {stats:?}");
    assert_eq!(stats.submitted, TOTAL as u64);
    assert_eq!(stats.rejected, 0, "queue was sized for the whole stream");
    assert_eq!(
        stats.completed(),
        TOTAL as u64,
        "every admitted request completed: {stats:?}"
    );

    // Every response is well-formed: parseable JSON, a status, an id; typed
    // errors carry a kind, successes carry finite energy.
    let lines = lines.lock().unwrap();
    assert_eq!(lines.len(), TOTAL, "exactly one response per submission");
    let mut seen_ids = Vec::new();
    for line in lines.iter() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("malformed response {line}: {e}"));
        let id = v.get("id").and_then(|s| s.as_str()).expect("id present");
        match v.get("status").and_then(|s| s.as_str()) {
            Some("ok") => {
                let energy = v
                    .get("energy")
                    .and_then(|x| x.as_f64())
                    .unwrap_or_else(|| panic!("no finite energy in {line}"));
                assert!(energy.is_finite() && energy >= 0.0, "{line}");
                if let Some(ratio) = v.get("lb_ratio").and_then(|x| x.as_f64()) {
                    assert!(ratio >= 1.0 - 1e-9, "bound violated: {line}");
                }
            }
            Some("error") => {
                let kind = v.get("kind").and_then(|s| s.as_str()).expect("kind");
                assert!(!kind.is_empty(), "{line}");
                assert!(v.get("message").is_some(), "{line}");
            }
            other => panic!("bad status {other:?} in {line}"),
        }
        if !id.is_empty() {
            seen_ids.push(id.to_string());
        }
    }
    // Ids round-trip: every well-formed request's id appears exactly once.
    seen_ids.sort();
    expected_ids.sort();
    for id in &expected_ids {
        assert!(
            seen_ids.binary_search(id).is_ok(),
            "request {id} never answered"
        );
    }
}

/// Construction faults must come back as typed `model` errors carrying the
/// salvaged request id — the parse boundary, not the solver, rejects them.
#[test]
fn construction_faults_are_typed_model_errors() {
    let mut server = Server::start(ServeOptions {
        workers: 2,
        ..Default::default()
    });
    let (sink, lines) = collecting_sink();
    let plan = FaultPlan::new(7);
    let mut bad = 0usize;
    for case in plan.cases(FAULT_KINDS) {
        if case.instance.is_err() {
            bad += 1;
            server.submit(
                &request(&format!("c{}", case.index), "rr", &case.text, &[]),
                Arc::clone(&sink),
            );
        }
    }
    assert!(bad > 0, "the menu contains construction faults");
    server.shutdown();
    let lines = lines.lock().unwrap();
    assert_eq!(lines.len(), bad);
    for line in lines.iter() {
        let v = json::parse(line).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"), "{line}");
        assert_eq!(v.get("kind").unwrap().as_str(), Some("model"), "{line}");
        assert!(
            v.get("id").unwrap().as_str().unwrap().starts_with('c'),
            "{line}"
        );
    }
    assert_eq!(server.stats().panics, 0);
}
