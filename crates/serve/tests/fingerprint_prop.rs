//! Property tests for the instance fingerprint: over seeded random
//! instances, the canonical form must be invariant under job permutation
//! and id relabeling, and must separate any perturbed instance — the two
//! properties that make it safe as a cache key.

use ssp_model::{Instance, Job};
use ssp_prng::rngs::StdRng;
use ssp_prng::seq::SliceRandom;
use ssp_prng::{subseed, Rng, SeedableRng};
use ssp_serve::Fingerprint;
use ssp_workloads::families;

const CASES: u64 = 60;

fn random_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..14);
    let m = rng.gen_range(1usize..5);
    let alpha = rng.gen_range(1.2f64..3.5);
    match seed % 3 {
        0 => families::general(n, m, alpha).gen(seed),
        1 => families::bursty(n, m, alpha).gen(seed),
        _ => families::unit_arbitrary(n, m, alpha).gen(seed),
    }
}

/// Rebuild the instance with jobs shuffled and ids relabeled; neither
/// affects the optimum, so neither may affect the fingerprint.
fn permuted(instance: &Instance, rng: &mut StdRng) -> Instance {
    let mut jobs: Vec<Job> = instance.jobs().to_vec();
    jobs.shuffle(rng);
    let relabel: u32 = rng.gen_range(100u32..1000);
    for (i, job) in jobs.iter_mut().enumerate() {
        job.id = (relabel + i as u32).into();
    }
    Instance::new(jobs, instance.machines(), instance.alpha()).unwrap()
}

#[test]
fn fingerprint_is_invariant_under_permutation_and_relabeling() {
    for case in 0..CASES {
        let seed = subseed(0xF1F0, case);
        let inst = random_instance(seed);
        let fp = Fingerprint::of(&inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..4 {
            let shuffled = permuted(&inst, &mut rng);
            assert_eq!(
                fp,
                Fingerprint::of(&shuffled),
                "seed {seed}: permutation changed the fingerprint"
            );
            assert_eq!(fp.digest(), Fingerprint::of(&shuffled).digest());
        }
    }
}

#[test]
fn fingerprint_separates_perturbed_instances() {
    for case in 0..CASES {
        let seed = subseed(0x5E9A, case);
        let inst = random_instance(seed);
        let fp = Fingerprint::of(&inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let jobs = inst.jobs().to_vec();
        let victim = rng.gen_range(0usize..jobs.len());

        // Perturb one field of one job — the tiniest representable change
        // (next float up) must already separate the fingerprints: the key
        // is bit-exact, never tolerance-based.
        let mut bump_work = jobs.clone();
        bump_work[victim].work = next_up(bump_work[victim].work);
        // Widen the window instead of shrinking: always constructible.
        let mut bump_deadline = jobs.clone();
        bump_deadline[victim].deadline = next_up(bump_deadline[victim].deadline);
        let mut dropped = jobs.clone();
        dropped.remove(victim);

        let m = inst.machines();
        let a = inst.alpha();
        let variants: Vec<Instance> = [
            Instance::new(bump_work, m, a).ok(),
            Instance::new(bump_deadline, m, a).ok(),
            (!dropped.is_empty())
                .then(|| Instance::new(dropped, m, a).ok())
                .flatten(),
            Instance::new(jobs.clone(), m + 1, a).ok(),
            Instance::new(jobs.clone(), m, a + 0.125).ok(),
        ]
        .into_iter()
        .flatten()
        .collect();
        assert!(
            variants.len() >= 4,
            "seed {seed}: perturbations constructible"
        );
        for (k, variant) in variants.iter().enumerate() {
            assert_ne!(
                fp,
                Fingerprint::of(variant),
                "seed {seed}: perturbation {k} collided"
            );
        }
    }
}

/// Smallest float strictly greater than `x` (positive finite inputs).
fn next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}
