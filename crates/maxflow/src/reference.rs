//! Exact integer max-flow reference (Edmonds–Karp).
//!
//! Deliberately simple and slow; exists purely so property tests can check
//! the production `f64` Dinic engine against exact arithmetic on integer
//! capacities.

/// Integer-capacity flow network solved by BFS augmenting paths.
#[derive(Debug, Clone)]
pub struct IntFlowNetwork {
    n: usize,
    /// Dense capacity matrix `cap[u][v]` (parallel edges merged by summing).
    cap: Vec<Vec<u64>>,
}

impl IntFlowNetwork {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        IntFlowNetwork {
            n,
            cap: vec![vec![0; n]; n],
        }
    }

    /// Add (or widen) the edge `u → v`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64) {
        assert!(u < self.n && v < self.n);
        self.cap[u][v] += cap;
    }

    /// Maximum `s → t` flow by Edmonds–Karp. Consumes the capacities
    /// (call once), returns the value.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t);
        let mut residual = self.cap.clone();
        let mut total = 0u64;
        loop {
            // BFS for shortest augmenting path.
            let mut parent = vec![usize::MAX; self.n];
            parent[s] = s;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for v in 0..self.n {
                    if parent[v] == usize::MAX && residual[u][v] > 0 {
                        parent[v] = u;
                        queue.push_back(v);
                    }
                }
            }
            if parent[t] == usize::MAX {
                return total;
            }
            // Bottleneck.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let u = parent[v];
                bottleneck = bottleneck.min(residual[u][v]);
                v = u;
            }
            // Augment.
            let mut v = t;
            while v != s {
                let u = parent[v];
                residual[u][v] -= bottleneck;
                residual[v][u] += bottleneck;
                v = u;
            }
            total += bottleneck;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clrs_reference_value() {
        let mut g = IntFlowNetwork::new(6);
        for (u, v, c) in [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ] {
            g.add_edge(u, v, c);
        }
        assert_eq!(g.max_flow(0, 5), 23);
    }

    #[test]
    fn unit_bipartite_matching() {
        // 3 left, 3 right, perfect matching exists.
        let mut g = IntFlowNetwork::new(8); // 0 s, 1-3 left, 4-6 right, 7 t
        for l in 1..=3 {
            g.add_edge(0, l, 1);
        }
        for r in 4..=6 {
            g.add_edge(r, 7, 1);
        }
        g.add_edge(1, 4, 1);
        g.add_edge(1, 5, 1);
        g.add_edge(2, 5, 1);
        g.add_edge(3, 6, 1);
        assert_eq!(g.max_flow(0, 7), 3);
    }

    #[test]
    fn no_path_gives_zero() {
        let mut g = IntFlowNetwork::new(3);
        g.add_edge(1, 2, 10);
        assert_eq!(g.max_flow(0, 2), 0);
    }
}
