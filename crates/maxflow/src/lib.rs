//! # ssp-maxflow
//!
//! A max-flow / min-cut engine tailored to the flow formulations used in
//! speed-scaled scheduling:
//!
//! * feasibility of `P|r_j, d_j, pmtn|−` (the *Work Assignment Problem*): a
//!   three-layer network `source → jobs → intervals → sink`;
//! * criticality detection in the migratory optimum, which needs
//!   *residual-reachability* queries (BFS from the source after a max flow
//!   identifies the "upstream" side of every minimum cut);
//! * the final schedule construction, which reads per-edge flows back as
//!   per-interval time allotments.
//!
//! The engine is Dinic's algorithm over `f64` capacities with an explicit
//! epsilon (capacities in this workspace are times/works, inherently real).
//! It is **parametric**: [`FlowNetwork::set_capacity`] re-parameterizes an
//! edge in place and [`FlowNetwork::max_flow_incremental`] repairs the
//! previous flow (draining overflow after decreases, resuming augmentation
//! after increases) instead of solving from scratch — the BAL bisection
//! sweeps hundreds of probes over the same network this way. A slow exact
//! integer Ford–Fulkerson reference lives in [`mod@reference`] and property
//! tests cross-check the engines on random graphs (see also the root-level
//! `tests/flow_differential.rs` suite).
//!
//! The scheduling networks are *layered* (longest path ≤ 4 edges), where
//! Dinic's blocking-flow phases terminate very quickly in practice; `f(n)` in
//! the paper's complexity statements is exactly this primitive. For the
//! WAP shape specifically, [`mod@sweep`] decides feasibility without any
//! flow search at all: the consecutive-ones structure of the alive sets
//! admits an `O(n log n)` deadline-ordered water-filling sweep whose value
//! and canonical min-cut side match the generic engines bit for bit in the
//! quantities downstream consumers read (verdicts, cut sides, cut sums).

#![warn(missing_docs)]

pub mod graph;
pub mod push_relabel;
pub mod reference;
pub mod sweep;

pub use graph::{EdgeId, FlowNetwork};
pub use push_relabel::PushRelabel;
pub use sweep::SweepFlow;

#[cfg(test)]
mod cross_tests {
    use crate::graph::FlowNetwork;
    use crate::reference::IntFlowNetwork;
    use ssp_prng::{check, Rng, StdRng};

    /// Build the same random graph in both engines and compare values.
    fn roundtrip(n: usize, edges: &[(usize, usize, u32)]) -> (f64, u64) {
        let mut real = FlowNetwork::new(n);
        let mut exact = IntFlowNetwork::new(n);
        for &(u, v, c) in edges {
            real.add_edge(u, v, c as f64);
            exact.add_edge(u, v, c as u64);
        }
        let f_real = real.max_flow(0, n - 1);
        let f_exact = exact.max_flow(0, n - 1);
        (f_real, f_exact)
    }

    /// Draw a random graph shape shared by the two properties below.
    fn random_graph(rng: &mut StdRng) -> (usize, Vec<(usize, usize, u32)>) {
        let n = rng.gen_range(2usize..9);
        let edges = check::vec_of(rng, 0..40, |r| {
            (
                r.gen_range(0usize..8),
                r.gen_range(0usize..8),
                r.gen_range(0u32..64),
            )
        })
        .into_iter()
        .filter(|&(u, v, _)| u < n && v < n && u != v)
        .collect();
        (n, edges)
    }

    /// Dinic over f64 must agree exactly with integer Ford–Fulkerson on
    /// integer capacities (values below 2^32 are exact in f64).
    #[test]
    fn dinic_matches_integer_reference() {
        check::cases(64, 0xD1_41C, |rng| {
            let (n, edges) = random_graph(rng);
            let (f_real, f_exact) = roundtrip(n, &edges);
            assert!(
                (f_real - f_exact as f64).abs() < 1e-6,
                "dinic {f_real} vs exact {f_exact}"
            );
        });
    }

    /// Min-cut capacity equals max-flow value (strong duality), and the
    /// source side returned by `residual_reachable_from_source` is a
    /// valid cut certificate. Also checks flow conservation at inner
    /// nodes.
    #[test]
    fn min_cut_certifies_max_flow() {
        check::cases(64, 0xC07, |rng| {
            let (n, edges) = random_graph(rng);
            let mut net = FlowNetwork::new(n);
            let ids: Vec<_> = edges
                .iter()
                .map(|&(u, v, c)| net.add_edge(u, v, c as f64))
                .collect();
            let value = net.max_flow(0, n - 1);
            let source_side = net.residual_reachable_from_source();
            assert!(source_side[0]);
            if value > 0.0 || edges.iter().any(|&(u, _, c)| u == 0 && c > 0) {
                // The sink is separated whenever a max flow exists (it always
                // does; value may be 0 when no s-t path has capacity).
                assert!(!source_side[n - 1]);
            }
            // Capacity of the cut = sum of caps of edges from X to Y.
            let cut_cap: f64 = edges
                .iter()
                .filter(|&&(u, v, _)| source_side[u] && !source_side[v])
                .map(|&(_, _, c)| c as f64)
                .sum();
            assert!(
                (cut_cap - value).abs() < 1e-6,
                "cut {cut_cap} vs flow {value}"
            );
            // Flow conservation at inner nodes.
            for node in 1..n - 1 {
                let mut balance = 0.0;
                for (&(u, v, _), &id) in edges.iter().zip(&ids) {
                    let f = net.flow(id);
                    if v == node {
                        balance += f;
                    }
                    if u == node {
                        balance -= f;
                    }
                }
                assert!(balance.abs() < 1e-6, "node {node} imbalance {balance}");
            }
        });
    }
}
