//! Structure-aware feasibility kernel for interval-bipartite flow networks
//! (the `P|r_j, d_j, pmtn|−` / WAP shape of Horn's reduction).
//!
//! The general solvers in this crate ([`crate::FlowNetwork`],
//! [`crate::PushRelabel`]) decide feasibility of the 3-layer network
//!
//! ```text
//!   source --(p_i)--> job_i --(min(|I_j|, c_j))--> cell_j --(c_j)--> sink
//! ```
//!
//! by blocking-flow search. When every job's alive set is a *contiguous run*
//! of cells (the consecutive-ones property — always true for elementary
//! intervals ordered by time, since a job is alive exactly on
//! `[release, deadline)`), the max flow is computable directly by a
//! deadline-ordered sweep: process cells left to right, water-filling each
//! cell's capacity into the active jobs in Earliest-Deadline-First order,
//! respecting the per-job self-execution cap `min(|I_j|, c_j)` inside each
//! cell.
//!
//! **Exactness.** EDF water-filling alone does *not* always reach the max
//! flow: a job can soak up cell capacity early and then hit its per-cell cap
//! later, starving a longer-windowed job (swap arguments fail because the
//! reassigned time may not be reabsorbable under the `min(|I_j|, c_j)`
//! caps). The kernel therefore *certifies* every solve: a residual BFS from
//! the unmet jobs — forward along unsaturated job→cell edges, backward
//! along positive allocations — either reaches a cell with sink slack
//! (an augmenting path exists, the greedy undershot, and the caller must
//! fall back to a generic flow engine) or proves the flow maximum, in which
//! case the reached side *is* the canonical minimum cut: feasibility
//! verdict, cut sides, and cut sums all match a blocking-flow solver's
//! exactly, so downstream cut consumers (Newton probes, criticality
//! classification) work unchanged. A feasible sweep (every demand routed)
//! is trivially certified. The crate's differential tests pin all of this
//! against Dinic, push–relabel, and the integer reference on every
//! workload family.
//!
//! Complexity: each cell pops at most `⌈c_j / min(|I_j|, c_j)⌉ + 1` jobs
//! beyond the ones it finishes (a popped-but-unfinished job either consumed
//! its full per-cell cap or exhausted the cell), so a solve is
//! `O((n + Σ_j m_j) log n)` heap operations — with `m_j` machines per cell,
//! effectively `O(n log n)` per probe instead of a blocking-flow search.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Relative epsilon for "this capacity is exhausted", matching
/// [`crate::FlowNetwork`]'s per-edge saturation threshold.
const EPS_REL: f64 = 1e-12;

/// A reusable sweep solver for one interval-bipartite network structure.
///
/// The structure (windows, per-cell caps) is fixed at construction; each
/// [`solve`](SweepFlow::solve) routes a fresh demand vector from scratch —
/// a solve is cheap enough that warm-starting would add bookkeeping without
/// winning anything.
#[derive(Debug, Clone)]
pub struct SweepFlow {
    num_jobs: usize,
    num_cells: usize,
    /// Per-job window `[lo, hi]`, inclusive, over cell indices; `lo > hi`
    /// encodes an empty window (such a job can only be routed if `p_i = 0`).
    lo: Vec<u32>,
    hi: Vec<u32>,
    /// Per-cell cap on any *single* job's allocation (`min(|I_j|, c_j)`;
    /// zero for closed cells, which have no edges at all in the generic
    /// network).
    edge_cap: Vec<f64>,
    /// Per-cell total capacity `c_j` (the sink edge).
    cell_cap: Vec<f64>,
    cell_eps: Vec<f64>,
    edge_eps: Vec<f64>,
    /// Jobs grouped by window start: `jobs_by_lo[lo_start[j]..lo_start[j+1]]`
    /// are the jobs released at cell `j`, ascending.
    lo_start: Vec<u32>,
    jobs_by_lo: Vec<u32>,

    // ---- per-solve state ----
    need: Vec<f64>,
    need_eps: Vec<f64>,
    rem: Vec<f64>,
    /// Flat allocation triples in emission order (grouped by cell, since
    /// cells are processed in order; within a job, ascending cell).
    alloc_job: Vec<u32>,
    alloc_cell: Vec<u32>,
    alloc_amt: Vec<f64>,
    /// Cell `j`'s allocations are `alloc_*[cell_start[j]..cell_start[j+1]]`.
    cell_start: Vec<u32>,
    /// Job `i`'s allocation indices are
    /// `job_alloc[job_start[i]..job_start[i+1]]` (ascending cell).
    job_start: Vec<u32>,
    job_alloc: Vec<u32>,
    /// Jobs left with unmet demand (ascending deadline order).
    deficit: Vec<u32>,
    value: f64,
    demand: f64,
    ops: u64,
    solved: bool,
    /// Did the residual BFS prove the greedy flow maximum?
    certified: bool,
    /// Canonical min-cut source side (valid only when `certified`).
    job_side: Vec<bool>,
    cell_side: Vec<bool>,
    // Scratch reused across solves.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    deferred: Vec<(u32, u32)>,
}

impl SweepFlow {
    /// Build the solver for a fixed structure.
    ///
    /// * `windows[i] = (lo, hi)` — job `i` may run in cells `lo..=hi`
    ///   (`lo > hi` for a job alive nowhere);
    /// * `edge_cap[j]` — cap on a single job's time inside cell `j`
    ///   (`min(|I_j|, c_j)`; 0 when the cell is closed);
    /// * `cell_cap[j]` — total time cell `j` can hand out (`c_j`).
    pub fn new(windows: Vec<(u32, u32)>, edge_cap: Vec<f64>, cell_cap: Vec<f64>) -> Self {
        assert_eq!(edge_cap.len(), cell_cap.len());
        let n = windows.len();
        let l = edge_cap.len();
        for &(lo, hi) in &windows {
            assert!(lo > hi || (hi as usize) < l, "window out of range");
        }
        let mut lo_start = vec![0u32; l + 2];
        for &(lo, hi) in &windows {
            if lo <= hi {
                lo_start[lo as usize + 1] += 1;
            }
        }
        for j in 0..=l {
            lo_start[j + 1] += lo_start[j];
        }
        let mut cursor: Vec<u32> = lo_start.clone();
        let mut jobs_by_lo = vec![0u32; lo_start[l + 1] as usize];
        for (i, &(lo, hi)) in windows.iter().enumerate() {
            if lo <= hi {
                jobs_by_lo[cursor[lo as usize] as usize] = i as u32;
                cursor[lo as usize] += 1;
            }
        }
        let cell_eps: Vec<f64> = cell_cap.iter().map(|c| c * EPS_REL).collect();
        let edge_eps: Vec<f64> = edge_cap.iter().map(|c| c * EPS_REL).collect();
        SweepFlow {
            num_jobs: n,
            num_cells: l,
            lo: windows.iter().map(|&(lo, _)| lo).collect(),
            hi: windows.iter().map(|&(_, hi)| hi).collect(),
            edge_cap,
            cell_cap,
            cell_eps,
            edge_eps,
            lo_start,
            jobs_by_lo,
            need: vec![0.0; n],
            need_eps: vec![0.0; n],
            rem: vec![0.0; l],
            alloc_job: Vec::new(),
            alloc_cell: Vec::new(),
            alloc_amt: Vec::new(),
            cell_start: vec![0; l + 1],
            job_start: vec![0; n + 1],
            job_alloc: Vec::new(),
            deficit: Vec::new(),
            value: 0.0,
            demand: 0.0,
            ops: 0,
            solved: false,
            certified: false,
            job_side: vec![false; n],
            cell_side: vec![false; l],
            heap: BinaryHeap::new(),
            deferred: Vec::new(),
        }
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.num_jobs
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Job `i`'s window `[lo, hi]` (inclusive), `None` when alive nowhere.
    pub fn window(&self, i: usize) -> Option<(usize, usize)> {
        (self.lo[i] <= self.hi[i]).then(|| (self.lo[i] as usize, self.hi[i] as usize))
    }

    /// Per-job cap inside cell `j` (0 for closed cells).
    pub fn edge_cap(&self, j: usize) -> f64 {
        self.edge_cap[j]
    }

    /// Total capacity of cell `j`.
    pub fn cell_cap(&self, j: usize) -> f64 {
        self.cell_cap[j]
    }

    /// Route the demand vector `p`, returning the (maximum) routed total.
    pub fn solve(&mut self, p: &[f64]) -> f64 {
        assert_eq!(p.len(), self.num_jobs, "demand vector length mismatch");
        self.alloc_job.clear();
        self.alloc_cell.clear();
        self.alloc_amt.clear();
        self.deficit.clear();
        self.heap.clear();
        self.rem.copy_from_slice(&self.cell_cap);
        let mut ops = 0u64;
        let mut value = 0.0f64;
        for (i, &pi) in p.iter().enumerate() {
            assert!(
                pi >= 0.0 && pi.is_finite(),
                "demand must be finite/nonnegative"
            );
            self.need[i] = pi;
            self.need_eps[i] = pi * EPS_REL;
            if pi > 0.0 && self.lo[i] > self.hi[i] {
                // Alive nowhere: immediate deficit.
                self.deficit.push(i as u32);
            }
        }
        for j in 0..self.num_cells {
            // Release jobs whose window starts here.
            for k in self.lo_start[j]..self.lo_start[j + 1] {
                let i = self.jobs_by_lo[k as usize];
                if self.need[i as usize] > 0.0 {
                    ops += 1;
                    self.heap.push(Reverse((self.hi[i as usize], i)));
                }
            }
            self.cell_start[j] = self.alloc_job.len() as u32;
            // Water-fill this cell's capacity in EDF order.
            let ec = self.edge_cap[j];
            let ceps = self.cell_eps[j];
            let mut rc = self.rem[j];
            if ec > 0.0 {
                while rc > ceps {
                    let Some(&Reverse((hi, iu))) = self.heap.peek() else {
                        break;
                    };
                    self.heap.pop();
                    let i = iu as usize;
                    let take = self.need[i].min(ec).min(rc);
                    self.alloc_job.push(iu);
                    self.alloc_cell.push(j as u32);
                    self.alloc_amt.push(take);
                    self.need[i] -= take;
                    rc -= take;
                    value += take;
                    ops += 1;
                    if self.need[i] <= self.need_eps[i] {
                        // Routed in full (up to a relative sliver): done.
                    } else if rc > ceps {
                        // Hit the per-cell cap: may continue at the next
                        // cell, but not in this one.
                        self.deferred.push((hi, iu));
                    } else {
                        // Cell exhausted under it: stays active.
                        self.heap.push(Reverse((hi, iu)));
                    }
                }
            }
            self.rem[j] = rc;
            for d in self.deferred.drain(..) {
                ops += 1;
                self.heap.push(Reverse(d));
            }
            // Expire jobs whose window ends here: whatever they still need
            // can no longer be routed.
            while let Some(&Reverse((hi, iu))) = self.heap.peek() {
                if hi as usize != j {
                    break;
                }
                self.heap.pop();
                ops += 1;
                self.deficit.push(iu);
            }
        }
        self.cell_start[self.num_cells] = self.alloc_job.len() as u32;
        debug_assert!(self.heap.is_empty(), "every job expires at its deadline");
        // Per-job allocation index (stable counting sort by job keeps the
        // ascending-cell emission order within each job).
        self.job_start.clear();
        self.job_start.resize(self.num_jobs + 1, 0);
        for &i in &self.alloc_job {
            self.job_start[i as usize + 1] += 1;
        }
        for i in 0..self.num_jobs {
            self.job_start[i + 1] += self.job_start[i];
        }
        let mut cursor: Vec<u32> = self.job_start[..self.num_jobs].to_vec();
        self.job_alloc.resize(self.alloc_job.len(), 0);
        for (a, &i) in self.alloc_job.iter().enumerate() {
            self.job_alloc[cursor[i as usize] as usize] = a as u32;
            cursor[i as usize] += 1;
        }
        self.value = value;
        self.demand = p.iter().sum();
        self.ops = ops;
        self.solved = true;
        self.certify();
        value
    }

    /// Residual BFS from the deficit jobs: simultaneously the maximality
    /// certificate (no reached cell may have sink slack) and, when it
    /// holds, the canonical min-cut side extraction.
    fn certify(&mut self) {
        self.job_side.iter_mut().for_each(|b| *b = false);
        self.cell_side.iter_mut().for_each(|b| *b = false);
        self.certified = true;
        if self.deficit.is_empty() {
            // Every demand routed: the flow is trivially maximum and the
            // source side of the canonical cut is just the source.
            return;
        }
        // Frontier of job nodes still to expand (cells expand inline).
        let mut stack: Vec<u32> = Vec::new();
        for k in 0..self.deficit.len() {
            let i = self.deficit[k];
            self.job_side[i as usize] = true;
            stack.push(i);
        }
        while let Some(iu) = stack.pop() {
            let i = iu as usize;
            let (lo, hi) = (self.lo[i], self.hi[i]);
            if lo > hi {
                continue;
            }
            // Walk the window and the job's (ascending-cell) allocations in
            // lockstep to know x_ij for every cell.
            let mut a = self.job_start[i] as usize;
            let a_end = self.job_start[i + 1] as usize;
            for j in lo as usize..=hi as usize {
                let mut x = 0.0;
                while a < a_end {
                    let idx = self.job_alloc[a] as usize;
                    let c = self.alloc_cell[idx] as usize;
                    if c < j {
                        a += 1;
                    } else {
                        if c == j {
                            x = self.alloc_amt[idx];
                        }
                        break;
                    }
                }
                if self.cell_side[j] || self.edge_cap[j] <= 0.0 {
                    continue;
                }
                if self.edge_cap[j] - x <= self.edge_eps[j] {
                    continue; // job's edge into this cell is saturated
                }
                self.cell_side[j] = true;
                if self.rem[j] > self.cell_eps[j] {
                    // Sink slack on a reachable cell: an augmenting path
                    // exists, so the greedy undershot the max flow. The
                    // caller must re-solve with a generic engine; the side
                    // sets are not a cut. Finishing the BFS would be wasted
                    // work.
                    self.certified = false;
                    return;
                }
                // Backward residuals: jobs that put time into this cell.
                for idx in self.cell_start[j] as usize..self.cell_start[j + 1] as usize {
                    let k = self.alloc_job[idx] as usize;
                    if !self.job_side[k] && self.alloc_amt[idx] > self.edge_eps[j] {
                        self.job_side[k] = true;
                        stack.push(k as u32);
                    }
                }
            }
        }
    }

    /// Routed total of the last [`solve`](SweepFlow::solve).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Total demand `Σ p_i` of the last [`solve`](SweepFlow::solve).
    pub fn demand(&self) -> f64 {
        self.demand
    }

    /// Heap/allocation operation count of the last solve (the kernel's
    /// work measure, exported as `wap.sweep_ops` by the WAP dispatcher).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Time allotted to job `i` per cell, `(cell, t)` ascending, zeros
    /// skipped.
    pub fn allotment(&self, i: usize) -> Vec<(usize, f64)> {
        self.job_alloc[self.job_start[i] as usize..self.job_start[i + 1] as usize]
            .iter()
            .map(|&a| {
                (
                    self.alloc_cell[a as usize] as usize,
                    self.alloc_amt[a as usize],
                )
            })
            .filter(|&(_, t)| t > 0.0)
            .collect()
    }

    /// Job `i`'s allocations `(cell, t)` in ascending cell order, zeros
    /// included — the allocation-free readback used to seed a generic flow
    /// engine with this solve's flow.
    pub fn allocs_of(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.job_alloc[self.job_start[i] as usize..self.job_start[i + 1] as usize]
            .iter()
            .map(|&a| {
                (
                    self.alloc_cell[a as usize] as usize,
                    self.alloc_amt[a as usize],
                )
            })
    }

    /// Demand actually routed for job `i`.
    pub fn routed(&self, i: usize) -> f64 {
        self.job_alloc[self.job_start[i] as usize..self.job_start[i + 1] as usize]
            .iter()
            .map(|&a| self.alloc_amt[a as usize])
            .sum()
    }

    /// Total time cell `j` handed out.
    pub fn cell_usage(&self, j: usize) -> f64 {
        self.alloc_amt[self.cell_start[j] as usize..self.cell_start[j + 1] as usize]
            .iter()
            .sum()
    }

    /// Did the last solve certify its flow as maximum? `false` means an
    /// augmenting path exists past the greedy allocation and the caller
    /// must re-solve with a generic flow engine; the value undershoots the
    /// max flow and the side sets carry no cut information.
    pub fn certified(&self) -> bool {
        assert!(self.solved, "call solve first");
        self.certified
    }

    /// Canonical min-cut source side, job nodes (valid when
    /// [`certified`](SweepFlow::certified)). Identical to the side a
    /// residual BFS on the generic flow network returns — the canonical
    /// side is invariant across maximum flows, so it does not matter that
    /// the sweep's allocation differs edge-by-edge from a blocking-flow
    /// solver's.
    pub fn job_side(&self) -> &[bool] {
        assert!(self.solved, "call solve first");
        &self.job_side
    }

    /// Canonical min-cut source side, cell nodes (valid when
    /// [`certified`](SweepFlow::certified)).
    pub fn cell_side(&self) -> &[bool] {
        assert!(self.solved, "call solve first");
        &self.cell_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;
    use ssp_prng::{check, Rng};

    /// A random WAP-shaped structure plus demands; returns (sweep, network,
    /// node layout) with the network in the canonical 3-layer shape.
    fn build_pair(
        windows: &[(u32, u32)],
        edge_cap: &[f64],
        cell_cap: &[f64],
        p: &[f64],
    ) -> (SweepFlow, FlowNetwork, usize) {
        let n = windows.len();
        let l = edge_cap.len();
        let sink = n + l + 1;
        let mut net = FlowNetwork::new(n + l + 2);
        for (i, &pi) in p.iter().enumerate() {
            net.add_edge(0, 1 + i, pi);
        }
        for (i, &(lo, hi)) in windows.iter().enumerate() {
            if lo <= hi {
                let cells = edge_cap.iter().enumerate();
                for (j, &ec) in cells.take(hi as usize + 1).skip(lo as usize) {
                    if ec > 0.0 {
                        net.add_edge(1 + i, 1 + n + j, ec);
                    }
                }
            }
        }
        for (j, &cc) in cell_cap.iter().enumerate() {
            net.add_edge(1 + n + j, sink, cc);
        }
        let sweep = SweepFlow::new(windows.to_vec(), edge_cap.to_vec(), cell_cap.to_vec());
        (sweep, net, sink)
    }

    #[test]
    fn single_job_fills_its_window() {
        let mut s = SweepFlow::new(vec![(0, 1)], vec![1.0, 2.0], vec![2.0, 4.0]);
        let v = s.solve(&[2.5]);
        assert!((v - 2.5).abs() < 1e-12);
        assert_eq!(s.allotment(0), vec![(0, 1.0), (1, 1.5)]);
        assert!((s.routed(0) - 2.5).abs() < 1e-12);
        // Self-execution cap binds: demand 4 can route at most 1 + 2 = 3.
        let v = s.solve(&[4.0]);
        assert!((v - 3.0).abs() < 1e-12);
        assert!(s.certified());
        assert_eq!(s.job_side(), &[true]);
        assert_eq!(
            s.cell_side(),
            &[false, false],
            "edge-saturated, not reached"
        );
    }

    #[test]
    fn edf_prefers_tighter_deadline() {
        // Cell capacities 1 each; job 0 spans both cells, job 1 only cell 0.
        let mut s = SweepFlow::new(vec![(0, 1), (0, 0)], vec![1.0, 1.0], vec![1.0, 1.0]);
        let v = s.solve(&[1.0, 1.0]);
        assert!((v - 2.0).abs() < 1e-12, "needs EDF: job 1 first in cell 0");
        assert_eq!(s.allotment(1), vec![(0, 1.0)]);
        assert_eq!(s.allotment(0), vec![(1, 1.0)]);
        assert!((s.cell_usage(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deficit_and_cut_on_overload() {
        // Two jobs crammed into one unit cell.
        let mut s = SweepFlow::new(vec![(0, 0), (0, 0)], vec![1.0], vec![1.0]);
        let v = s.solve(&[1.0, 0.8]);
        assert!((v - 1.0).abs() < 1e-12);
        assert!(s.certified());
        // Both jobs reach (the unsatisfied one directly, the other through
        // the shared saturated cell's allocations).
        assert_eq!(s.job_side(), &[true, true]);
        assert_eq!(s.cell_side(), &[true]);
    }

    #[test]
    fn closed_cells_route_nothing() {
        let mut s = SweepFlow::new(vec![(0, 2)], vec![1.0, 0.0, 1.0], vec![2.0, 0.0, 2.0]);
        let v = s.solve(&[3.0]);
        assert!((v - 2.0).abs() < 1e-12);
        assert_eq!(s.allotment(0), vec![(0, 1.0), (2, 1.0)]);
    }

    #[test]
    fn empty_window_is_immediate_deficit() {
        let mut s = SweepFlow::new(vec![(1, 0), (0, 0)], vec![1.0], vec![1.0]);
        let v = s.solve(&[0.5, 0.5]);
        assert!((v - 0.5).abs() < 1e-12);
        assert!(s.certified());
        assert!(s.job_side()[0] && !s.job_side()[1]);
        // Zero demand on an empty window is fine.
        let v = s.solve(&[0.0, 0.5]);
        assert!((v - 0.5).abs() < 1e-12);
        assert!(!s.job_side()[0]);
    }

    /// The canonical EDF failure mode: job 1 (deadline 1) soaks up cell 0,
    /// then hits its per-cell cap in cell 1, starving job 3 (deadline 2,
    /// whose last cell is closed) — an augmenting path 3→cell0→1→cell1
    /// exists, so the solve must refuse to certify.
    #[test]
    fn per_cell_cap_starvation_is_caught_by_the_certificate() {
        let windows = vec![(0u32, 1u32), (0, 1), (0, 1), (0, 2)];
        let edge_cap = vec![4.0, 3.0, 0.0];
        let cell_cap = vec![8.0, 6.0, 0.0];
        let p = [4.0, 6.0, 0.0, 6.0];
        let mut s = SweepFlow::new(windows, edge_cap, cell_cap);
        let v = s.solve(&p);
        assert!((v - 13.0).abs() < 1e-12, "greedy routes 13, max flow is 14");
        assert!(!s.certified());
    }

    #[test]
    fn matches_dinic_on_random_structures() {
        check::cases(192, 0x5EEF_1A01, |rng| {
            let n = rng.gen_range(1usize..24);
            let l = rng.gen_range(1usize..16);
            let m = rng.gen_range(1usize..5);
            let lengths: Vec<f64> = (0..l).map(|_| rng.gen_range(0.1..4.0)).collect();
            let cell_cap: Vec<f64> = lengths
                .iter()
                .map(|&len| {
                    if rng.gen_range(0u32..8) == 0 {
                        0.0 // a closed cell
                    } else {
                        len * m as f64
                    }
                })
                .collect();
            let edge_cap: Vec<f64> = lengths
                .iter()
                .zip(&cell_cap)
                .map(|(&len, &c)| if c > 0.0 { len.min(c) } else { 0.0 })
                .collect();
            let windows: Vec<(u32, u32)> = (0..n)
                .map(|_| {
                    let lo = rng.gen_range(0usize..l) as u32;
                    let hi = rng.gen_range(lo as usize..l) as u32;
                    (lo, hi)
                })
                .collect();
            let p: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..6.0)).collect();
            let (mut sweep, mut net, sink) = build_pair(&windows, &edge_cap, &cell_cap, &p);
            let vs = sweep.solve(&p);
            let vd = net.max_flow(0, sink);
            let scale = vd.abs().max(1.0);
            // The greedy never overshoots, and when it certifies its flow
            // as maximum the value and the canonical cut sides must match
            // the blocking-flow engine exactly.
            assert!(
                vs <= vd + 1e-9 * scale,
                "sweep {vs} overshoots dinic {vd} (n={n}, l={l}, m={m})"
            );
            if sweep.certified() {
                assert!(
                    (vs - vd).abs() <= 1e-9 * scale,
                    "certified sweep {vs} vs dinic {vd} (n={n}, l={l}, m={m})"
                );
                let side = net.residual_reachable_from_source();
                for i in 0..n {
                    assert_eq!(
                        sweep.job_side()[i],
                        side[1 + i],
                        "job {i} side (n={n}, l={l})"
                    );
                }
                for j in 0..l {
                    assert_eq!(
                        sweep.cell_side()[j],
                        side[1 + n + j],
                        "cell {j} side (n={n}, l={l})"
                    );
                }
            } else {
                assert!(
                    vs < vd,
                    "uncertified sweep must genuinely undershoot: {vs} vs {vd}"
                );
            }
            // Allocation is a valid flow: demands, edge caps, cell caps.
            for i in 0..n {
                let r = sweep.routed(i);
                assert!(r <= p[i] + 1e-9 * scale);
                for (j, t) in sweep.allotment(i) {
                    assert!(t <= edge_cap[j] + 1e-12 * scale);
                    assert!(windows[i].0 as usize <= j && j <= windows[i].1 as usize);
                }
            }
            for (j, &cc) in cell_cap.iter().enumerate() {
                assert!(sweep.cell_usage(j) <= cc + 1e-9 * scale);
            }
        });
    }

    #[test]
    fn repeated_solves_are_independent_and_deterministic() {
        let windows = vec![(0u32, 2u32), (1, 3), (0, 1), (2, 3)];
        let edge_cap = vec![1.0, 0.5, 1.5, 1.0];
        let cell_cap = vec![2.0, 1.0, 3.0, 2.0];
        let mut a = SweepFlow::new(windows.clone(), edge_cap.clone(), cell_cap.clone());
        let mut b = SweepFlow::new(windows, edge_cap, cell_cap);
        let p1 = [2.0, 1.5, 0.7, 1.0];
        let p2 = [3.0, 0.2, 2.0, 0.0];
        // Interleave solves on `a`, run each once on `b`: bit-identical.
        let a1 = a.solve(&p1);
        let a2 = a.solve(&p2);
        let a1_again = a.solve(&p1);
        assert_eq!(a1.to_bits(), a1_again.to_bits());
        assert_eq!(b.solve(&p1).to_bits(), a1.to_bits());
        let b2 = {
            let mut fresh = SweepFlow::new(
                vec![(0, 2), (1, 3), (0, 1), (2, 3)],
                vec![1.0, 0.5, 1.5, 1.0],
                vec![2.0, 1.0, 3.0, 2.0],
            );
            fresh.solve(&p2)
        };
        assert_eq!(a2.to_bits(), b2.to_bits());
        let _ = b;
    }
}
