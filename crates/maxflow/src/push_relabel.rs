//! Push–relabel max-flow (highest-label selection with the gap heuristic).
//!
//! An independent second engine: same flat SoA edge layout as
//! [`crate::FlowNetwork`] but a completely different algorithm family
//! (preflows instead of augmenting paths). It exists for two reasons:
//!
//! * **cross-checking** — property tests run both engines on random graphs
//!   and on WAP-shaped scheduling networks and require identical values;
//!   an agreement bug would have to be present in two unrelated algorithms;
//! * **benchmarking** — `micro_engines` compares the engines on the layered
//!   networks this workspace actually builds (Dinic wins there, which is why
//!   it is the default; the result is recorded rather than assumed).
//!
//! Only the flow *value* and per-edge flows are exposed; residual
//! reachability queries stay with the default engine.

/// Handle to a forward edge added with [`PushRelabel::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrEdgeId(usize);

/// A push–relabel max-flow solver over `f64` capacities. Edges live in flat
/// structure-of-arrays storage (pairs at `2k`/`2k+1`); the CSR adjacency is
/// built once per [`PushRelabel::max_flow`] call by a stable counting sort,
/// so the discharge loop walks contiguous memory.
#[derive(Debug, Clone)]
pub struct PushRelabel {
    num_nodes: usize,
    to: Vec<u32>,
    cap: Vec<f64>,
    orig: Vec<f64>,
    eps: Vec<f64>,
    csr_start: Vec<u32>,
    csr_edges: Vec<u32>,
    csr_stale: bool,
}

impl PushRelabel {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        PushRelabel {
            num_nodes: n,
            to: Vec::new(),
            cap: Vec::new(),
            orig: Vec::new(),
            eps: Vec::new(),
            csr_start: vec![0; n + 1],
            csr_edges: Vec::new(),
            csr_stale: false,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Add a directed edge `u → v` with capacity `cap >= 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> PrEdgeId {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "edge endpoint out of range"
        );
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "capacity must be finite and >= 0"
        );
        let id = self.to.len();
        let eps = cap * 1e-12;
        self.to.push(v as u32);
        self.cap.push(cap);
        self.orig.push(cap);
        self.eps.push(eps);
        self.to.push(u as u32);
        self.cap.push(0.0);
        self.orig.push(0.0);
        self.eps.push(eps);
        self.csr_stale = true;
        PrEdgeId(id)
    }

    /// Flow routed through a forward edge after [`PushRelabel::max_flow`].
    pub fn flow(&self, e: PrEdgeId) -> f64 {
        (self.orig[e.0] - self.cap[e.0]).max(0.0)
    }

    /// Stable counting sort of the edge list by tail node (the partner's
    /// head), preserving insertion order within each node.
    fn ensure_csr(&mut self) {
        if !self.csr_stale {
            return;
        }
        let n = self.num_nodes;
        self.csr_start.clear();
        self.csr_start.resize(n + 1, 0);
        for id in 0..self.to.len() {
            self.csr_start[self.to[id ^ 1] as usize + 1] += 1;
        }
        for u in 0..n {
            self.csr_start[u + 1] += self.csr_start[u];
        }
        self.csr_edges.resize(self.to.len(), 0);
        let mut cursor: Vec<u32> = self.csr_start[..n].to_vec();
        for id in 0..self.to.len() {
            let u = self.to[id ^ 1] as usize;
            self.csr_edges[cursor[u] as usize] = id as u32;
            cursor[u] += 1;
        }
        self.csr_stale = false;
    }

    /// Compute the maximum `s → t` flow value. Resets previous state.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let n = self.num_nodes;
        assert!(s < n && t < n && s != t);
        self.ensure_csr();
        // Probe counts accumulate locally and flush once on return, so the
        // hot loop only pays plain register increments.
        let (mut pushes, mut relabels, mut gap_firings) = (0u64, 0u64, 0u64);
        self.cap.copy_from_slice(&self.orig);
        let mut height = vec![0usize; n];
        let mut excess = vec![0.0f64; n];
        height[s] = n;

        // Buckets of active nodes by height (highest-label selection).
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); 2 * n + 1];
        let mut in_bucket = vec![false; n];
        // Count of nodes at each height < n (gap heuristic).
        let mut height_count = vec![0usize; 2 * n + 1];
        for &h in height.iter() {
            height_count[h] += 1;
        }

        // Saturate all source edges.
        for idx in self.csr_start[s]..self.csr_start[s + 1] {
            let ei = self.csr_edges[idx as usize] as usize;
            if ei.is_multiple_of(2) {
                let cap = self.cap[ei];
                if cap > self.eps[ei] {
                    let v = self.to[ei] as usize;
                    self.cap[ei] = 0.0;
                    self.cap[ei ^ 1] += cap;
                    excess[v] += cap;
                    if v != t && v != s && !in_bucket[v] {
                        buckets[height[v]].push(v);
                        in_bucket[v] = true;
                    }
                }
            }
        }

        let mut highest = 0usize;
        loop {
            // Find the highest bucket with an active node.
            while highest > 0 && buckets[highest].is_empty() {
                highest -= 1;
            }
            if highest == 0 && buckets[0].is_empty() {
                break;
            }
            let u = match buckets[highest].pop() {
                Some(u) => u,
                None => break,
            };
            in_bucket[u] = false;
            if excess[u] <= 0.0 {
                continue;
            }
            // Discharge u.
            'discharge: loop {
                let mut lowest_neighbor = usize::MAX;
                for idx in self.csr_start[u]..self.csr_start[u + 1] {
                    let ei = self.csr_edges[idx as usize] as usize;
                    let (to, cap, eps) = (self.to[ei] as usize, self.cap[ei], self.eps[ei]);
                    if cap <= eps.max(0.0) {
                        continue;
                    }
                    if height[u] == height[to] + 1 {
                        // Push.
                        pushes += 1;
                        let delta = excess[u].min(cap);
                        self.cap[ei] -= delta;
                        self.cap[ei ^ 1] += delta;
                        excess[u] -= delta;
                        excess[to] += delta;
                        if to != s && to != t && !in_bucket[to] {
                            buckets[height[to]].push(to);
                            in_bucket[to] = true;
                            // `to` is below u; `highest` stays valid.
                        }
                        if excess[u] <= 0.0 {
                            break 'discharge;
                        }
                    } else if height[to] + 1 < lowest_neighbor {
                        lowest_neighbor = height[to] + 1;
                    }
                }
                if excess[u] <= 0.0 {
                    break;
                }
                // Relabel (with gap heuristic).
                if lowest_neighbor == usize::MAX {
                    break; // no admissible or relabelable edge: stuck excess stays
                }
                relabels += 1;
                let old = height[u];
                if old < n {
                    height_count[old] -= 1;
                    if height_count[old] == 0 {
                        gap_firings += 1;
                        // Gap: lift every node above `old` (below n) past n.
                        for v in 0..n {
                            if v != s && height[v] > old && height[v] < n {
                                if height[v] < n {
                                    height_count[height[v]] -= 1;
                                }
                                height[v] = n + 1;
                            }
                        }
                    }
                }
                height[u] = lowest_neighbor.min(2 * n);
                if height[u] < n {
                    height_count[height[u]] += 1;
                }
                if height[u] > highest {
                    highest = height[u];
                }
            }
            if excess[u] > 0.0 && height[u] <= 2 * n {
                // Still active after relabel: requeue at its (new) height.
                if !in_bucket[u] {
                    buckets[height[u].min(2 * n)].push(u);
                    in_bucket[u] = true;
                }
                highest = highest.max(height[u].min(2 * n));
                continue;
            }
        }
        ssp_probe::counter!("maxflow.pr.runs");
        ssp_probe::counter!("maxflow.pr.pushes", pushes);
        ssp_probe::counter!("maxflow.pr.relabels", relabels);
        ssp_probe::counter!("maxflow.pr.gap_firings", gap_firings);
        excess[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;
    use ssp_prng::{check, Rng};

    #[test]
    fn clrs_value() {
        let mut g = PushRelabel::new(6);
        for (u, v, c) in [
            (0, 1, 16.0),
            (0, 2, 13.0),
            (1, 2, 10.0),
            (2, 1, 4.0),
            (1, 3, 12.0),
            (3, 2, 9.0),
            (2, 4, 14.0),
            (4, 3, 7.0),
            (3, 5, 20.0),
            (4, 5, 4.0),
        ] {
            g.add_edge(u, v, c);
        }
        assert!((g.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn trivial_cases() {
        let mut g = PushRelabel::new(2);
        g.add_edge(0, 1, 3.5);
        assert!((g.max_flow(0, 1) - 3.5).abs() < 1e-12);

        let mut g = PushRelabel::new(3);
        g.add_edge(1, 2, 10.0);
        assert_eq!(g.max_flow(0, 2), 0.0);
    }

    #[test]
    fn wap_shaped_network_matches_dinic() {
        let (jobs, ivals) = (60usize, 20usize);
        let t = 1 + jobs + ivals;
        let mut a = PushRelabel::new(t + 1);
        let mut b = FlowNetwork::new(t + 1);
        for i in 0..jobs {
            a.add_edge(0, 1 + i, 1.0 + (i % 5) as f64 * 0.3);
            b.add_edge(0, 1 + i, 1.0 + (i % 5) as f64 * 0.3);
            for j in 0..ivals {
                if (i + 2 * j) % 4 == 0 {
                    a.add_edge(1 + i, 1 + jobs + j, 0.7);
                    b.add_edge(1 + i, 1 + jobs + j, 0.7);
                }
            }
        }
        for j in 0..ivals {
            a.add_edge(1 + jobs + j, t, 3.0);
            b.add_edge(1 + jobs + j, t, 3.0);
        }
        let (fa, fb) = (a.max_flow(0, t), b.max_flow(0, t));
        assert!((fa - fb).abs() < 1e-7, "push-relabel {fa} vs dinic {fb}");
    }

    /// The two engines agree on arbitrary random graphs with integer
    /// capacities (exact in f64).
    #[test]
    fn agrees_with_dinic_on_random_graphs() {
        check::cases(96, 0x9B5AE1, |rng| {
            let n = rng.gen_range(2usize..10);
            let edges: Vec<(usize, usize, u32)> = check::vec_of(rng, 0..50, |r| {
                (
                    r.gen_range(0usize..9),
                    r.gen_range(0usize..9),
                    r.gen_range(0u32..50),
                )
            })
            .into_iter()
            .filter(|&(u, v, _)| u < n && v < n && u != v)
            .collect();
            let mut a = PushRelabel::new(n);
            let mut b = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                a.add_edge(u, v, c as f64);
                b.add_edge(u, v, c as f64);
            }
            let (fa, fb) = (a.max_flow(0, n - 1), b.max_flow(0, n - 1));
            assert!((fa - fb).abs() < 1e-6, "push-relabel {fa} vs dinic {fb}");
        });
    }
}
