//! Dinic's max-flow over `f64` capacities, with residual-reachability
//! queries, per-edge flow readback, and **parametric warm restarts**:
//! [`FlowNetwork::set_capacity`] re-parameterizes an edge while keeping the
//! stored flow valid, and [`FlowNetwork::max_flow_incremental`] repairs the
//! previous maximum flow instead of recomputing it from scratch — the
//! primitive behind the warm-started BAL bisection (see
//! `DESIGN.md` §"Parametric max-flow").

/// Handle to a *forward* edge added with [`FlowNetwork::add_edge`]. Used to
/// read back the flow it carries after [`FlowNetwork::max_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    /// Remaining residual capacity.
    cap: f64,
    /// Original capacity (forward edges) or 0 (reverse edges).
    orig: f64,
    /// Saturation threshold: residual below this counts as zero. Scales with
    /// the *pair's* original capacity so that networks mixing very large and
    /// very small capacities (common in scheduling: long and short intervals)
    /// classify each edge at its own magnitude.
    eps: f64,
}

/// Relative per-edge saturation threshold.
const EDGE_EPS_REL: f64 = 1e-12;

/// A directed flow network. Nodes are `0..n`; parallel edges are allowed.
///
/// Numerics: capacities are `f64`; an edge counts as residual when its
/// remaining capacity exceeds its *own* epsilon (`orig_cap · 1e-12`).
/// Termination does not depend on the epsilon: every augmenting path zeroes
/// its bottleneck edge exactly (`cap - cap == 0.0`), so each blocking-flow
/// phase finds at most `E` paths and Dinic's phase bound applies unchanged;
/// the epsilon only keeps rounding slivers from being chased or reported as
/// residual connectivity.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// `adj[v]` = indices into `edges` (edge pairs are at `2k`, `2k+1`).
    adj: Vec<Vec<usize>>,
    edges: Vec<Edge>,
    /// Source of the last `max_flow` call (for reachability queries).
    last_source: Option<usize>,
    /// Sink of the last `max_flow` call.
    last_sink: Option<usize>,
    /// Value of the flow currently stored on the edges.
    flow_value: f64,
    /// Set when a drain could not fully repair the stored flow (see
    /// [`FlowNetwork::set_capacity`]); forces the next incremental solve to
    /// fall back to a cold rebuild.
    needs_rebuild: bool,
    // Scratch buffers reused across blocking-flow phases.
    level: Vec<i32>,
    iter: Vec<usize>,
    /// Per-node conservation imbalance (inflow − outflow) accumulated by
    /// draining [`FlowNetwork::set_capacity`] calls, repaired lazily by the
    /// next [`FlowNetwork::max_flow_incremental`]. Positive = surplus.
    imbalance: Vec<f64>,
    /// Nodes with a recorded imbalance (sparse index into `imbalance`).
    dirty: Vec<usize>,
}

impl FlowNetwork {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            last_source: None,
            last_sink: None,
            flow_value: 0.0,
            needs_rebuild: false,
            level: vec![-1; n],
            iter: vec![0; n],
            imbalance: vec![0.0; n],
            dirty: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Append a new node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.level.push(-1);
        self.iter.push(0);
        self.imbalance.push(0.0);
        self.adj.len() - 1
    }

    /// Add a directed edge `u → v` with capacity `cap >= 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> EdgeId {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge endpoint out of range"
        );
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "capacity must be finite and >= 0, got {cap}"
        );
        let id = self.edges.len();
        let eps = cap * EDGE_EPS_REL;
        self.adj[u].push(id);
        self.edges.push(Edge {
            to: v,
            cap,
            orig: cap,
            eps,
        });
        self.adj[v].push(id + 1);
        self.edges.push(Edge {
            to: u,
            cap: 0.0,
            orig: 0.0,
            eps,
        });
        EdgeId(id)
    }

    /// Flow currently routed through a forward edge (its reverse residual).
    pub fn flow(&self, e: EdgeId) -> f64 {
        let fwd = &self.edges[e.0];
        (fwd.orig - fwd.cap).max(0.0)
    }

    /// Remaining residual capacity of a forward edge.
    pub fn residual(&self, e: EdgeId) -> f64 {
        self.edges[e.0].cap
    }

    /// Current capacity parameter of a forward edge (as set at
    /// [`add_edge`](FlowNetwork::add_edge) or by the last
    /// [`set_capacity`](FlowNetwork::set_capacity)). Cut readback uses this:
    /// the capacity of a saturated cut edge, unlike [`flow`](FlowNetwork::flow),
    /// is exact — no max-flow arithmetic noise.
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.edges[e.0].orig
    }

    /// Is a forward edge saturated (residual below its epsilon)?
    pub fn is_saturated(&self, e: EdgeId) -> bool {
        self.edges[e.0].cap <= self.edges[e.0].eps
    }

    /// Compute a maximum `s → t` flow (Dinic) and return its value. Resets
    /// any previous flow first, so the call is idempotent.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert!(
            s < self.adj.len() && t < self.adj.len(),
            "terminal out of range"
        );
        assert_ne!(s, t, "source and sink must differ");
        for e in &mut self.edges {
            e.cap = e.orig;
        }
        for &u in &self.dirty {
            self.imbalance[u] = 0.0;
        }
        self.dirty.clear();
        self.last_source = Some(s);
        self.last_sink = Some(t);
        self.needs_rebuild = false;
        let (added, phases, augmentations) = self.dinic_augment(s, t);
        self.flow_value = added;
        ssp_probe::counter!("maxflow.dinic.runs");
        ssp_probe::counter!("maxflow.dinic.phases", phases);
        ssp_probe::counter!("maxflow.dinic.augmentations", augmentations);
        ssp_probe::counter!("maxflow.rebuild");
        self.flow_value
    }

    /// Augment the *current* residual graph to a blocking state repeatedly
    /// (the Dinic phase loop). Returns `(value added, phases, augmenting
    /// paths)` on top of whatever flow the edges already carry; callers flush
    /// the counts to the probe counters that fit their context. Shared by
    /// cold solves, warm solves, and the drain-repair passes.
    fn dinic_augment(&mut self, s: usize, t: usize) -> (f64, u64, u64) {
        let mut added = 0.0;
        let (mut phases, mut augmentations) = (0u64, 0u64);
        while self.build_levels(s, t) {
            phases += 1;
            // Every augmenting path found in this phase has the same length:
            // the sink's BFS level. One batched histogram record per phase.
            let path_len = self.level[t].max(0) as u64;
            let before = augmentations;
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.blocking_dfs(s, t, f64::INFINITY);
                if pushed <= 0.0 {
                    break;
                }
                augmentations += 1;
                added += pushed;
            }
            ssp_probe::histogram!("maxflow.dinic.path_len", path_len, augmentations - before);
        }
        (added, phases, augmentations)
    }

    /// Value of the flow currently stored on the edges, as of the last solve
    /// (cold or incremental). Draining [`set_capacity`] calls made since are
    /// reflected at the *next* [`max_flow_incremental`], which repairs the
    /// flow and recomputes the value exactly from the source's edges.
    ///
    /// [`set_capacity`]: FlowNetwork::set_capacity
    /// [`max_flow_incremental`]: FlowNetwork::max_flow_incremental
    pub fn flow_value(&self) -> f64 {
        self.flow_value
    }

    /// Re-parameterize a forward edge to capacity `cap`.
    ///
    /// * **Increase / slack decrease** — only the residual widens or
    ///   narrows; the stored flow is untouched.
    /// * **Decrease below the carried flow** — the edge's flow is clamped to
    ///   `cap` and the overflow is recorded as a per-node conservation
    ///   imbalance (a surplus at the tail, a shortfall at the head). The
    ///   next [`max_flow_incremental`] *drains* all recorded overflow in one
    ///   batched repair before resuming augmentation — deferring the drain
    ///   is what makes a bisection probe that shrinks hundreds of source
    ///   edges cost a constant number of level-graph passes rather than a
    ///   residual search per edge.
    ///
    /// Flows produced by augmenting-path solvers decompose into source→sink
    /// paths, for which the drain always succeeds; if numerical slivers ever
    /// leave it short, the network is flagged and the next incremental solve
    /// silently falls back to a cold rebuild.
    ///
    /// [`max_flow_incremental`]: FlowNetwork::max_flow_incremental
    pub fn set_capacity(&mut self, e: EdgeId, cap: f64) {
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "capacity must be finite and >= 0, got {cap}"
        );
        let id = e.0;
        let flow = (self.edges[id].orig - self.edges[id].cap).max(0.0);
        let eps = cap * EDGE_EPS_REL;
        self.edges[id].orig = cap;
        self.edges[id].eps = eps;
        self.edges[id ^ 1].eps = eps;
        if flow <= cap {
            self.edges[id].cap = cap - flow;
            return;
        }
        // Clamp the flow to the new capacity; the edge becomes saturated.
        self.edges[id].cap = 0.0;
        self.edges[id ^ 1].cap = cap;
        let u = self.edges[id ^ 1].to;
        let v = self.edges[id].to;
        if u != v {
            // Self-loop flow never affected conservation or the value.
            let excess = flow - cap;
            self.record_imbalance(u, excess);
            self.record_imbalance(v, -excess);
        }
    }

    /// Record that `node`'s conservation balance changed by `delta`.
    fn record_imbalance(&mut self, node: usize, delta: f64) {
        if self.imbalance[node] == 0.0 {
            self.dirty.push(node);
        }
        self.imbalance[node] += delta;
    }

    /// Drain all recorded overflow in one batched repair, restoring
    /// conservation at every non-terminal node.
    ///
    /// Two temporary super-nodes are appended: a super-source feeding each
    /// surplus node its excess and a super-sink absorbing each shortfall
    /// node's deficit. Three Dinic passes then fix the pseudo-flow:
    ///
    /// 1. super-source → super-sink: reroute excess into shortfalls through
    ///    the residual graph (value-preserving; covers cycle flow and
    ///    alternate routes);
    /// 2. super-source → `s`: cancel un-reroutable surplus back along the
    ///    flow that fed it;
    /// 3. `t` → super-sink: cancel each remaining shortfall's downstream
    ///    flow from the sink side.
    ///
    /// Between passes the helper edges' reverse residuals are frozen so a
    /// later pass cannot undo an earlier repair. Any leftover helper
    /// residual beyond tolerance flags the network for a cold rebuild. The
    /// helper nodes and edges are removed before returning, and the caller
    /// recomputes the flow value from the source's edges (conservation
    /// everywhere else makes the s- and t-side values agree automatically).
    fn repair(&mut self, s: usize, t: usize) {
        let n_real = self.adj.len();
        let e_real = self.edges.len();
        let dirty = std::mem::take(&mut self.dirty);
        let ss = self.add_node();
        let tt = self.add_node();
        let mut total = 0.0;
        let mut excess_edges: Vec<usize> = Vec::new();
        let mut deficit_edges: Vec<usize> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        for &u in &dirty {
            let b = self.imbalance[u];
            self.imbalance[u] = 0.0;
            // Terminals are exempt: their imbalance *is* the value change,
            // recomputed from the edges afterwards.
            if u == s || u == t || b == 0.0 {
                continue;
            }
            total += b.abs();
            if b > 0.0 {
                excess_edges.push(self.add_edge(ss, u, b).0);
            } else {
                deficit_edges.push(self.add_edge(u, tt, -b).0);
            }
            touched.push(u);
        }
        let mut drain_paths = 0u64;
        if !excess_edges.is_empty() && !deficit_edges.is_empty() {
            let (_, _, a) = self.dinic_augment(ss, tt);
            drain_paths += a;
        }
        for &id in excess_edges.iter().chain(&deficit_edges) {
            self.edges[id ^ 1].cap = 0.0;
        }
        if !excess_edges.is_empty() {
            let (_, _, a) = self.dinic_augment(ss, s);
            drain_paths += a;
        }
        for &id in &excess_edges {
            self.edges[id ^ 1].cap = 0.0;
        }
        if !deficit_edges.is_empty() {
            let (_, _, a) = self.dinic_augment(t, tt);
            drain_paths += a;
        }
        let shortfall: f64 = excess_edges
            .iter()
            .chain(&deficit_edges)
            .map(|&id| self.edges[id].cap)
            .sum();
        if shortfall > total * 1e-9 + 1e-12 {
            self.needs_rebuild = true;
        }
        // Remove the helper nodes and edges; their stubs in real adjacency
        // lists are the most recently pushed entries.
        self.edges.truncate(e_real);
        self.adj.truncate(n_real);
        self.level.truncate(n_real);
        self.iter.truncate(n_real);
        self.imbalance.truncate(n_real);
        for &u in &touched {
            while self.adj[u].last().is_some_and(|&ei| ei >= e_real) {
                self.adj[u].pop();
            }
        }
        ssp_probe::counter!("maxflow.dinic.drain_paths", drain_paths);
    }

    /// Net flow out of `s` read directly off its incident edges.
    fn net_source_flow(&self, s: usize) -> f64 {
        let mut val = 0.0;
        for &ei in &self.adj[s] {
            let fwd = ei & !1;
            let f = (self.edges[fwd].orig - self.edges[fwd].cap).max(0.0);
            if ei & 1 == 0 {
                val += f;
            } else {
                val -= f;
            }
        }
        val
    }

    /// Recompute a maximum `s → t` flow *warm*: repair the stored flow if
    /// draining [`set_capacity`] calls left recorded overflow, then augment
    /// from the residual graph. Any valid flow extends to a maximum one by
    /// augmenting its residual, so this returns the same value as a cold
    /// [`max_flow`] while doing work proportional to the *change*.
    ///
    /// Falls back to a cold solve when the terminals differ from the last
    /// solve, no solve has run yet, or a drain repair fell short.
    ///
    /// [`set_capacity`]: FlowNetwork::set_capacity
    /// [`max_flow`]: FlowNetwork::max_flow
    pub fn max_flow_incremental(&mut self, s: usize, t: usize) -> f64 {
        assert!(
            s < self.adj.len() && t < self.adj.len(),
            "terminal out of range"
        );
        assert_ne!(s, t, "source and sink must differ");
        if self.needs_rebuild || self.last_source != Some(s) || self.last_sink != Some(t) {
            return self.max_flow(s, t);
        }
        if !self.dirty.is_empty() {
            self.repair(s, t);
            if self.needs_rebuild {
                return self.max_flow(s, t);
            }
        }
        let (_, phases, augmentations) = self.dinic_augment(s, t);
        ssp_probe::counter!("maxflow.dinic.phases", phases);
        ssp_probe::counter!("maxflow.dinic.augmentations", augmentations);
        ssp_probe::counter!("maxflow.warm_reuse");
        self.flow_value = self.net_source_flow(s);
        self.flow_value
    }

    /// BFS on the residual graph building the level structure; `true` iff the
    /// sink is reachable.
    fn build_levels(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &ei in &self.adj[u] {
                let e = &self.edges[ei];
                if e.cap > e.eps && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[u] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    /// DFS with per-node edge iterators; pushes a blocking path and returns
    /// the pushed amount (0 when none).
    fn blocking_dfs(&mut self, u: usize, t: usize, limit: f64) -> f64 {
        if u == t {
            return limit;
        }
        while self.iter[u] < self.adj[u].len() {
            let ei = self.adj[u][self.iter[u]];
            let (to, cap, eps) = {
                let e = &self.edges[ei];
                (e.to, e.cap, e.eps)
            };
            if cap > eps && self.level[to] == self.level[u] + 1 {
                let pushed = self.blocking_dfs(to, t, limit.min(cap));
                if pushed > 0.0 {
                    self.edges[ei].cap -= pushed;
                    self.edges[ei ^ 1].cap += pushed;
                    return pushed;
                }
            }
            self.iter[u] += 1;
        }
        0.0
    }

    /// Nodes reachable from `node` in the residual graph of the current flow.
    pub fn residual_reachable(&self, node: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[node] = true;
        queue.push_back(node);
        while let Some(u) = queue.pop_front() {
            for &ei in &self.adj[u] {
                let e = &self.edges[ei];
                if e.cap > e.eps && !seen[e.to] {
                    seen[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// Nodes reachable from the source of the last `max_flow` call in the
    /// residual graph. After a max flow, this is the source side `X` of the
    /// canonical minimum cut, and precisely the set of *upstream* nodes
    /// (nodes on the source side of **every** minimum cut).
    pub fn residual_reachable_from_source(&self) -> Vec<bool> {
        let s = self.last_source.expect("call max_flow first");
        self.residual_reachable(s)
    }

    /// Nodes from which the sink of the last `max_flow` call is reachable in
    /// the residual graph (reverse BFS). A node *outside* this set has all of
    /// its paths to the sink saturated — the criticality test of the
    /// migratory solver.
    pub fn residual_coreachable_to_sink(&self) -> Vec<bool> {
        let t = self.last_sink.expect("call max_flow first");
        let mut seen = vec![false; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[t] = true;
        queue.push_back(t);
        while let Some(u) = queue.pop_front() {
            // Traverse edges *into* u with residual capacity: edge e = (v, u)
            // has residual cap iff edges[ei].cap > eps where ei is stored in
            // adj[v]; equivalently, for each edge pair index at u, the
            // partner edge (u → v reversed) tells us about (v → u).
            for &ei in &self.adj[u] {
                // `ei` is an edge u → w; its partner `ei ^ 1` is w → u.
                let partner = ei ^ 1;
                let w = self.edges[ei].to;
                if self.edges[partner].cap > self.edges[partner].eps && !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        seen
    }

    /// The minimum-cut edges of the last `max_flow` call: forward edges from
    /// the residual-reachable side to the rest. Their capacities sum to the
    /// flow value (max-flow/min-cut theorem).
    pub fn min_cut_edges(&self) -> Vec<EdgeId> {
        let side = self.residual_reachable_from_source();
        let mut cut = Vec::new();
        for id in (0..self.edges.len()).step_by(2) {
            let e = &self.edges[id];
            // Forward edge u→v: u is edges[id^1].to.
            let u = self.edges[id ^ 1].to;
            if side[u] && !side[e.to] && e.orig > 0.0 {
                cut.push(EdgeId(id));
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic CLRS example network (max flow 23).
    fn clrs() -> (FlowNetwork, Vec<EdgeId>) {
        let mut g = FlowNetwork::new(6);
        let ids = vec![
            g.add_edge(0, 1, 16.0),
            g.add_edge(0, 2, 13.0),
            g.add_edge(1, 2, 10.0),
            g.add_edge(2, 1, 4.0),
            g.add_edge(1, 3, 12.0),
            g.add_edge(3, 2, 9.0),
            g.add_edge(2, 4, 14.0),
            g.add_edge(4, 3, 7.0),
            g.add_edge(3, 5, 20.0),
            g.add_edge(4, 5, 4.0),
        ];
        (g, ids)
    }

    #[test]
    fn clrs_max_flow_is_23() {
        let (mut g, _) = clrs();
        assert!((g.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn max_flow_is_idempotent() {
        let (mut g, _) = clrs();
        let a = g.max_flow(0, 5);
        let b = g.max_flow(0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn per_edge_flows_conserve() {
        let (mut g, ids) = clrs();
        let total = g.max_flow(0, 5);
        // Out of source = total.
        let out: f64 = g.flow(ids[0]) + g.flow(ids[1]);
        assert!((out - total).abs() < 1e-9);
        // Into sink = total.
        let inflow: f64 = g.flow(ids[8]) + g.flow(ids[9]);
        assert!((inflow - total).abs() < 1e-9);
        // Each flow within capacity.
        for &id in &ids {
            assert!(g.flow(id) >= -1e-12);
            assert!(g.flow(id) <= g.edges[id.0].orig + 1e-12);
        }
    }

    #[test]
    fn min_cut_matches_flow_value() {
        let (mut g, _) = clrs();
        let v = g.max_flow(0, 5);
        let cut = g.min_cut_edges();
        let cap: f64 = cut.iter().map(|&e| g.edges[e.0].orig).sum();
        assert!((cap - v).abs() < 1e-9);
        // Every cut edge is saturated.
        for e in cut {
            assert!(g.is_saturated(e));
        }
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 5.0);
        g.add_edge(2, 3, 5.0);
        assert_eq!(g.max_flow(0, 3), 0.0);
        let side = g.residual_reachable_from_source();
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 1.5);
        g.add_edge(0, 1, 2.5);
        assert!((g.max_flow(0, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_capacities() {
        // Layered network with fractional caps typical of WAP graphs.
        let mut g = FlowNetwork::new(5);
        g.add_edge(0, 1, 1.0 / 3.0);
        g.add_edge(0, 2, 0.2);
        g.add_edge(1, 3, 0.25);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 0.5);
        let v = g.max_flow(0, 4);
        // min(1/3, 0.25) + 0.2 = 0.45 limited by 0.5 sink edge => 0.45.
        assert!((v - 0.45).abs() < 1e-12);
    }

    #[test]
    fn sink_never_residual_reachable_after_max_flow() {
        let (mut g, _) = clrs();
        g.max_flow(0, 5);
        assert!(!g.residual_reachable_from_source()[5]);
    }

    #[test]
    fn coreachable_to_sink_identifies_saturated_nodes() {
        // s → a → t with bottleneck at (a, t); plus s → b → t wide open
        // ... but b's path saturated too at max flow; then neither a nor b
        // can reach t. Add an extra non-saturated lane c to check positives.
        let mut g = FlowNetwork::new(5);
        g.add_edge(0, 1, 10.0); // s→a
        g.add_edge(1, 4, 1.0); // a→t (bottleneck, saturated)
        g.add_edge(0, 2, 1.0); // s→b (bottleneck, saturated)
        g.add_edge(2, 4, 10.0); // b→t (slack remains)
        let v = g.max_flow(0, 4);
        assert!((v - 2.0).abs() < 1e-12);
        let co = g.residual_coreachable_to_sink();
        assert!(co[4]);
        assert!(!co[1], "a's only path to t is saturated");
        assert!(co[2], "b still has residual capacity to t");
        // And s can reach t through nobody (max flow), though s→a has slack:
        assert!(!g.residual_reachable_from_source()[4]);
    }

    #[test]
    fn add_node_grows_network() {
        let mut g = FlowNetwork::new(2);
        let v = g.add_node();
        assert_eq!(v, 2);
        g.add_edge(0, 2, 3.0);
        g.add_edge(2, 1, 2.0);
        assert!((g.max_flow(0, 1) - 2.0).abs() < 1e-12);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_terminals_panic() {
        let mut g = FlowNetwork::new(2);
        g.max_flow(1, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be finite")]
    fn negative_capacity_panics() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn zero_capacity_edges_are_legal_and_carry_nothing() {
        let mut g = FlowNetwork::new(3);
        let e = g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 5.0);
        assert_eq!(g.max_flow(0, 2), 0.0);
        assert_eq!(g.flow(e), 0.0);
    }

    /// Cold-solve a structural copy of `g` (same nodes/edges/orig caps).
    fn cold_value(g: &FlowNetwork, s: usize, t: usize) -> f64 {
        let mut fresh = g.clone();
        fresh.max_flow(s, t)
    }

    #[test]
    fn warm_increase_resumes_augmentation() {
        let (mut g, ids) = clrs();
        assert!((g.max_flow(0, 5) - 23.0).abs() < 1e-9);
        // Widen the (4,5) sink edge: 4.0 → 10.0 opens more throughput.
        g.set_capacity(ids[9], 10.0);
        let warm = g.max_flow_incremental(0, 5);
        assert!((warm - cold_value(&g, 0, 5)).abs() < 1e-9);
        assert!(warm > 23.0);
        assert!((g.flow_value() - warm).abs() < 1e-12);
    }

    #[test]
    fn warm_decrease_drains_overflow() {
        let (mut g, ids) = clrs();
        g.max_flow(0, 5);
        // Choke the (3,5) edge far below the ~19 units it carries.
        g.set_capacity(ids[8], 2.0);
        let warm = g.max_flow_incremental(0, 5);
        assert!((warm - cold_value(&g, 0, 5)).abs() < 1e-9);
        assert!((warm - 6.0).abs() < 1e-9, "cut is 2.0 + 4.0, got {warm}");
        assert!(g.flow(ids[8]) <= 2.0 + 1e-12);
    }

    #[test]
    fn warm_matches_cold_through_update_sequence() {
        let (mut g, ids) = clrs();
        g.max_flow(0, 5);
        let updates = [
            (0usize, 4.0), // shrink s→1 below its flow
            (9, 9.0),      // widen 4→5
            (6, 3.0),      // shrink 2→4
            (0, 16.0),     // restore s→1
            (8, 11.0),     // shrink 3→5
            (1, 20.0),     // widen s→2
        ];
        for &(k, cap) in &updates {
            g.set_capacity(ids[k], cap);
            let warm = g.max_flow_incremental(0, 5);
            let cold = cold_value(&g, 0, 5);
            assert!(
                (warm - cold).abs() < 1e-9,
                "after set_capacity(#{k}, {cap}): warm {warm} != cold {cold}"
            );
            assert!((g.flow_value() - warm).abs() < 1e-12);
        }
    }

    #[test]
    fn drain_to_zero_empties_the_flow() {
        let (mut g, ids) = clrs();
        g.max_flow(0, 5);
        g.set_capacity(ids[0], 0.0);
        g.set_capacity(ids[1], 0.0);
        let warm = g.max_flow_incremental(0, 5);
        assert!(warm.abs() < 1e-9);
        assert!(g.flow_value().abs() < 1e-9);
        // The clamped edges must be empty; elsewhere a zero-value
        // circulation may legitimately remain (it is still a valid flow),
        // but every edge must respect its capacity.
        assert!(g.flow(ids[0]) < 1e-12);
        assert!(g.flow(ids[1]) < 1e-12);
        for &id in &ids {
            assert!(g.flow(id) <= g.edges[id.0].orig + 1e-12);
        }
    }

    #[test]
    fn min_cut_valid_after_incremental_updates() {
        let (mut g, ids) = clrs();
        g.max_flow(0, 5);
        g.set_capacity(ids[8], 5.0);
        g.set_capacity(ids[9], 2.0);
        let warm = g.max_flow_incremental(0, 5);
        // The canonical min cut must certify the warm flow exactly as it
        // would a cold one: capacities sum to the value, every cut edge is
        // saturated, and the sink stays unreachable.
        let cut = g.min_cut_edges();
        let cap: f64 = cut.iter().map(|&e| g.edges[e.0].orig).sum();
        assert!((cap - warm).abs() < 1e-9, "cut {cap} != warm value {warm}");
        for e in cut {
            assert!(g.is_saturated(e));
        }
        let side = g.residual_reachable_from_source();
        assert!(side[0] && !side[5]);
    }

    #[test]
    fn residual_reachability_flips_with_capacity() {
        // s → a → t: saturating and unsaturating the middle edge must flip
        // a's membership in the source side of the cut.
        let mut g = FlowNetwork::new(3);
        let sa = g.add_edge(0, 1, 5.0);
        let at = g.add_edge(1, 2, 5.0);
        g.max_flow(0, 2);
        assert!(!g.residual_reachable_from_source()[1], "s→a saturated");
        g.set_capacity(sa, 8.0);
        g.max_flow_incremental(0, 2);
        assert!(g.residual_reachable_from_source()[1], "slack on s→a now");
        assert!(g.is_saturated(at));
        g.set_capacity(at, 1.0);
        let v = g.max_flow_incremental(0, 2);
        assert!((v - 1.0).abs() < 1e-12);
        assert_eq!(g.min_cut_edges(), vec![at]);
    }

    #[test]
    fn incremental_with_new_terminals_falls_back_cold() {
        let (mut g, _) = clrs();
        g.max_flow(0, 5);
        // Different terminals: must not try to reuse the stored flow.
        let v = g.max_flow_incremental(0, 3);
        assert!((v - cold_value(&g, 0, 3)).abs() < 1e-9);
    }

    #[test]
    fn incremental_without_prior_solve_is_cold() {
        let (mut g, _) = clrs();
        let v = g.max_flow_incremental(0, 5);
        assert!((v - 23.0).abs() < 1e-9);
    }

    #[test]
    fn set_capacity_before_any_solve_just_reparameterizes() {
        let (mut g, ids) = clrs();
        g.set_capacity(ids[0], 2.0);
        assert!((g.max_flow(0, 5) - cold_value(&g, 0, 5)).abs() < 1e-12);
    }

    #[test]
    fn large_layered_network_is_fast_and_exact() {
        // 200 jobs × 50 intervals bipartite-ish WAP-shaped graph.
        let (jobs, ivals) = (200usize, 50usize);
        let s = 0usize;
        let t = 1 + jobs + ivals;
        let mut g = FlowNetwork::new(t + 1);
        for i in 0..jobs {
            g.add_edge(s, 1 + i, 1.0);
        }
        for i in 0..jobs {
            for j in 0..ivals {
                if (i + j) % 3 == 0 {
                    g.add_edge(1 + i, 1 + jobs + j, 0.5);
                }
            }
        }
        for j in 0..ivals {
            g.add_edge(1 + jobs + j, t, 4.0);
        }
        let v = g.max_flow(s, t);
        assert!(v > 0.0 && v <= jobs as f64);
        // Value equals min-cut capacity.
        let cut_cap: f64 = g.min_cut_edges().iter().map(|&e| g.edges[e.0].orig).sum();
        assert!((cut_cap - v).abs() < 1e-6);
    }

    /// Cloning a solved network forks the parametric state: the clone warm
    /// repairs independently, and solving the clone leaves the original's
    /// flow, value, and residual structure bit-identical. This is the
    /// contract the parallel probe ladder relies on (one probe per clone).
    #[test]
    fn clone_split_solves_are_independent_and_bit_identical() {
        let mut g = FlowNetwork::new(6);
        let s_edges: Vec<EdgeId> = (1..=3).map(|i| g.add_edge(0, i, 1.0)).collect();
        let mid: Vec<EdgeId> = (1..=3).map(|i| g.add_edge(i, 4, 0.8)).collect();
        let out = g.add_edge(4, 5, 2.0);
        g.max_flow(0, 5);
        let value0 = g.flow_value();
        let flows0: Vec<u64> = mid.iter().map(|&e| g.flow(e).to_bits()).collect();

        // Fork two clones and re-parameterize them differently.
        let mut a = g.clone();
        let mut b = g.clone();
        for &e in &s_edges {
            a.set_capacity(e, 0.4);
            b.set_capacity(e, 1.5);
        }
        let va = a.max_flow_incremental(0, 5);
        let vb = b.max_flow_incremental(0, 5);
        assert!((va - 1.2).abs() < 1e-9, "clone a value {va}");
        assert!((vb - 2.0).abs() < 1e-9, "clone b value {vb}");

        // The original is untouched, bit for bit.
        assert_eq!(g.flow_value().to_bits(), value0.to_bits());
        let flows_after: Vec<u64> = mid.iter().map(|&e| g.flow(e).to_bits()).collect();
        assert_eq!(flows_after, flows0);
        assert_eq!(g.capacity(out).to_bits(), 2.0f64.to_bits());
        // And identical clones repair to identical flows (determinism).
        let mut c = g.clone();
        let mut d = g.clone();
        for &e in &s_edges {
            c.set_capacity(e, 0.9);
            d.set_capacity(e, 0.9);
        }
        assert_eq!(
            c.max_flow_incremental(0, 5).to_bits(),
            d.max_flow_incremental(0, 5).to_bits()
        );
        for &e in &mid {
            assert_eq!(c.flow(e).to_bits(), d.flow(e).to_bits());
        }
    }
}
