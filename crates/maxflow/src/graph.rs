//! Dinic's max-flow over `f64` capacities, with residual-reachability
//! queries, per-edge flow readback, and **parametric warm restarts**:
//! [`FlowNetwork::set_capacity`] re-parameterizes an edge while keeping the
//! stored flow valid, and [`FlowNetwork::max_flow_incremental`] repairs the
//! previous maximum flow instead of recomputing it from scratch — the
//! primitive behind the warm-started BAL bisection (see
//! `DESIGN.md` §"Parametric max-flow").
//!
//! Layout: the edge store is flat structure-of-arrays (`to`/`cap`/`orig`/
//! `eps`, pairs at `2k`/`2k+1`) and adjacency is a CSR index built from the
//! edge list by a stable counting sort, so the BFS/DFS hot loops walk two
//! contiguous arrays instead of chasing one heap allocation per node. The
//! counting sort preserves insertion order within each node, which keeps
//! traversal order — and therefore every flow, residual pattern, and cut —
//! bit-identical to the per-node `Vec` adjacency this replaced.

/// Handle to a *forward* edge added with [`FlowNetwork::add_edge`]. Used to
/// read back the flow it carries after [`FlowNetwork::max_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

/// Relative per-edge saturation threshold.
const EDGE_EPS_REL: f64 = 1e-12;

/// A per-node drain budget during [`FlowNetwork::repair`]: the node's
/// recorded surplus, consumed as repair passes route it away.
#[derive(Debug, Clone, Copy)]
struct Budget {
    node: usize,
    /// Remaining un-drained amount.
    rem: f64,
    /// Exhaustion threshold (`initial · EDGE_EPS_REL`), fixed at collection
    /// exactly like a helper edge's epsilon would be at `add_edge`.
    eps: f64,
}

/// A directed flow network. Nodes are `0..n`; parallel edges are allowed.
///
/// Numerics: capacities are `f64`; an edge counts as residual when its
/// remaining capacity exceeds its *own* epsilon (`orig_cap · 1e-12`).
/// Termination does not depend on the epsilon: every augmenting path zeroes
/// its bottleneck edge exactly (`cap - cap == 0.0`), so each blocking-flow
/// phase finds at most `E` paths and Dinic's phase bound applies unchanged;
/// the epsilon only keeps rounding slivers from being chased or reported as
/// residual connectivity.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    num_nodes: usize,
    /// Head of each directed edge (pairs at `2k`, `2k+1`).
    to: Vec<u32>,
    /// Remaining residual capacity per directed edge.
    cap: Vec<f64>,
    /// Original capacity (forward edges) or 0 (reverse edges).
    orig: Vec<f64>,
    /// Saturation threshold per directed edge. Scales with the *pair's*
    /// original capacity so that networks mixing very large and very small
    /// capacities (common in scheduling: long and short intervals) classify
    /// each edge at its own magnitude.
    eps: Vec<f64>,
    /// CSR adjacency over the edge store: node `u`'s incident edge indices
    /// are `csr_edges[csr_start[u]..csr_start[u+1]]`, in insertion order.
    csr_start: Vec<u32>,
    csr_edges: Vec<u32>,
    /// Set by `add_edge`/`add_node`; the next solve rebuilds the CSR.
    csr_stale: bool,
    /// Source of the last `max_flow` call (for reachability queries).
    last_source: Option<usize>,
    /// Sink of the last `max_flow` call.
    last_sink: Option<usize>,
    /// Value of the flow currently stored on the edges.
    flow_value: f64,
    /// Set when a drain could not fully repair the stored flow (see
    /// [`FlowNetwork::set_capacity`]); forces the next incremental solve to
    /// fall back to a cold rebuild.
    needs_rebuild: bool,
    // Scratch buffers reused across blocking-flow phases.
    level: Vec<i32>,
    /// Per-node DFS cursor: an absolute index into `csr_edges`, running to
    /// `csr_start[u+1]` (one past, for the virtual drain edge — see
    /// [`FlowNetwork::repair`]).
    iter: Vec<u32>,
    /// Per-node conservation imbalance (inflow − outflow) accumulated by
    /// draining [`FlowNetwork::set_capacity`] calls, repaired lazily by the
    /// next [`FlowNetwork::max_flow_incremental`]. Positive = surplus.
    imbalance: Vec<f64>,
    /// Nodes with a recorded imbalance (sparse index into `imbalance`).
    dirty: Vec<usize>,
}

impl FlowNetwork {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            num_nodes: n,
            to: Vec::new(),
            cap: Vec::new(),
            orig: Vec::new(),
            eps: Vec::new(),
            csr_start: vec![0; n + 1],
            csr_edges: Vec::new(),
            csr_stale: false,
            last_source: None,
            last_sink: None,
            flow_value: 0.0,
            needs_rebuild: false,
            level: vec![-1; n],
            iter: vec![0; n],
            imbalance: vec![0.0; n],
            dirty: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of forward edges.
    pub fn num_edges(&self) -> usize {
        self.to.len() / 2
    }

    /// Append a new node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.num_nodes += 1;
        self.level.push(-1);
        self.iter.push(0);
        self.imbalance.push(0.0);
        self.csr_stale = true;
        self.num_nodes - 1
    }

    /// Add a directed edge `u → v` with capacity `cap >= 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> EdgeId {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "edge endpoint out of range"
        );
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "capacity must be finite and >= 0, got {cap}"
        );
        let id = self.to.len();
        let eps = cap * EDGE_EPS_REL;
        self.to.push(v as u32);
        self.cap.push(cap);
        self.orig.push(cap);
        self.eps.push(eps);
        self.to.push(u as u32);
        self.cap.push(0.0);
        self.orig.push(0.0);
        self.eps.push(eps);
        self.csr_stale = true;
        EdgeId(id)
    }

    /// Rebuild the CSR adjacency from the edge list: a stable counting sort
    /// by tail node, so each node's incident edges appear in insertion
    /// order — exactly the order a per-node adjacency `Vec` would hold.
    fn rebuild_csr(&mut self) {
        let n = self.num_nodes;
        self.csr_start.clear();
        self.csr_start.resize(n + 1, 0);
        for id in 0..self.to.len() {
            // Tail of edge `id` is the head of its partner.
            self.csr_start[self.to[id ^ 1] as usize + 1] += 1;
        }
        for u in 0..n {
            self.csr_start[u + 1] += self.csr_start[u];
        }
        self.csr_edges.resize(self.to.len(), 0);
        // `iter` doubles as the insertion cursor; it is reset at the start
        // of every blocking-flow phase anyway.
        self.iter.copy_from_slice(&self.csr_start[..n]);
        for id in 0..self.to.len() {
            let u = self.to[id ^ 1] as usize;
            self.csr_edges[self.iter[u] as usize] = id as u32;
            self.iter[u] += 1;
        }
        self.csr_stale = false;
    }

    /// Fresh CSR adjacency ignoring (not updating) the cached one — the
    /// slow path for `&self` queries issued while the cache is stale.
    fn build_csr_fresh(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.num_nodes;
        let mut start = vec![0u32; n + 1];
        for id in 0..self.to.len() {
            start[self.to[id ^ 1] as usize + 1] += 1;
        }
        for u in 0..n {
            start[u + 1] += start[u];
        }
        let mut cursor: Vec<u32> = start[..n].to_vec();
        let mut edges = vec![0u32; self.to.len()];
        for id in 0..self.to.len() {
            let u = self.to[id ^ 1] as usize;
            edges[cursor[u] as usize] = id as u32;
            cursor[u] += 1;
        }
        (start, edges)
    }

    fn ensure_csr(&mut self) {
        if self.csr_stale {
            self.rebuild_csr();
        }
    }

    /// Flow currently routed through a forward edge (its reverse residual).
    pub fn flow(&self, e: EdgeId) -> f64 {
        (self.orig[e.0] - self.cap[e.0]).max(0.0)
    }

    /// Remaining residual capacity of a forward edge.
    pub fn residual(&self, e: EdgeId) -> f64 {
        self.cap[e.0]
    }

    /// Current capacity parameter of a forward edge (as set at
    /// [`add_edge`](FlowNetwork::add_edge) or by the last
    /// [`set_capacity`](FlowNetwork::set_capacity)). Cut readback uses this:
    /// the capacity of a saturated cut edge, unlike [`flow`](FlowNetwork::flow),
    /// is exact — no max-flow arithmetic noise.
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.orig[e.0]
    }

    /// Is a forward edge saturated (residual below its epsilon)?
    pub fn is_saturated(&self, e: EdgeId) -> bool {
        self.cap[e.0] <= self.eps[e.0]
    }

    /// Compute a maximum `s → t` flow (Dinic) and return its value. Resets
    /// any previous flow first, so the call is idempotent.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert!(
            s < self.num_nodes && t < self.num_nodes,
            "terminal out of range"
        );
        assert_ne!(s, t, "source and sink must differ");
        self.ensure_csr();
        self.cap.copy_from_slice(&self.orig);
        for &u in &self.dirty {
            self.imbalance[u] = 0.0;
        }
        self.dirty.clear();
        self.last_source = Some(s);
        self.last_sink = Some(t);
        self.needs_rebuild = false;
        let (added, phases, augmentations) = self.dinic_augment(s, t);
        self.flow_value = added;
        ssp_probe::counter!("maxflow.dinic.runs");
        ssp_probe::counter!("maxflow.dinic.phases", phases);
        ssp_probe::counter!("maxflow.dinic.augmentations", augmentations);
        ssp_probe::counter!("maxflow.rebuild");
        self.flow_value
    }

    /// Augment the *current* residual graph to a blocking state repeatedly
    /// (the Dinic phase loop). Returns `(value added, phases, augmenting
    /// paths)` on top of whatever flow the edges already carry; callers flush
    /// the counts to the probe counters that fit their context. Shared by
    /// cold solves, warm solves, and the drain-repair passes.
    fn dinic_augment(&mut self, s: usize, t: usize) -> (f64, u64, u64) {
        let mut added = 0.0;
        let (mut phases, mut augmentations) = (0u64, 0u64);
        loop {
            self.build_levels(&[s]);
            if self.level[t] < 0 {
                break;
            }
            phases += 1;
            // Every augmenting path found in this phase has the same length:
            // the sink's BFS level. One batched histogram record per phase.
            let path_len = self.level[t].max(0) as u64;
            let before = augmentations;
            self.reset_cursors();
            loop {
                let pushed = self.blocking_dfs(s, t, f64::INFINITY);
                if pushed <= 0.0 {
                    break;
                }
                augmentations += 1;
                added += pushed;
            }
            ssp_probe::histogram!("maxflow.dinic.path_len", path_len, augmentations - before);
        }
        (added, phases, augmentations)
    }

    /// Value of the flow currently stored on the edges, as of the last solve
    /// (cold or incremental). Draining [`set_capacity`] calls made since are
    /// reflected at the *next* [`max_flow_incremental`], which repairs the
    /// flow and recomputes the value exactly from the source's edges.
    ///
    /// [`set_capacity`]: FlowNetwork::set_capacity
    /// [`max_flow_incremental`]: FlowNetwork::max_flow_incremental
    pub fn flow_value(&self) -> f64 {
        self.flow_value
    }

    /// Overwrite the flow carried by a forward edge: its residual becomes
    /// `capacity − f`, its partner's `f`. This *seeds* the network with an
    /// externally computed flow (e.g. the sweep kernel's water-filling
    /// allocation) so [`resume_max_flow`](FlowNetwork::resume_max_flow)
    /// only has to augment the difference to maximality instead of solving
    /// cold. The caller is responsible for seeding a conservation-respecting
    /// flow across all edges it touches; `f` is clamped into
    /// `[0, capacity]` (summation slivers from the external solver may
    /// overshoot by an ulp).
    pub fn set_flow(&mut self, e: EdgeId, f: f64) {
        let id = e.0;
        debug_assert!(
            f.is_finite() && f >= -self.eps[id] && f <= self.orig[id] + self.eps[id],
            "seeded flow {f} outside [0, {}]",
            self.orig[id]
        );
        let f = f.clamp(0.0, self.orig[id]);
        self.cap[id] = self.orig[id] - f;
        self.cap[id ^ 1] = f;
    }

    /// Run Dinic *without* resetting the carried flow: augment whatever the
    /// edges currently hold (a flow seeded via
    /// [`set_flow`](FlowNetwork::set_flow)) to maximality and return the
    /// exact source outflow. The caller guarantees the carried flow is
    /// valid — within capacities and conserving at every non-terminal; any
    /// pending [`set_capacity`](FlowNetwork::set_capacity) imbalance
    /// records are discarded, since the seeded flow supersedes them.
    pub fn resume_max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert!(
            s < self.num_nodes && t < self.num_nodes,
            "terminal out of range"
        );
        assert_ne!(s, t, "source and sink must differ");
        self.ensure_csr();
        for &u in &self.dirty {
            self.imbalance[u] = 0.0;
        }
        self.dirty.clear();
        self.last_source = Some(s);
        self.last_sink = Some(t);
        self.needs_rebuild = false;
        let (_, phases, augmentations) = self.dinic_augment(s, t);
        self.flow_value = self.net_source_flow(s);
        ssp_probe::counter!("maxflow.dinic.seeded_resumes");
        ssp_probe::counter!("maxflow.dinic.phases", phases);
        ssp_probe::counter!("maxflow.dinic.augmentations", augmentations);
        self.flow_value
    }

    /// Re-parameterize a forward edge to capacity `cap`.
    ///
    /// * **Increase / slack decrease** — only the residual widens or
    ///   narrows; the stored flow is untouched.
    /// * **Decrease below the carried flow** — the edge's flow is clamped to
    ///   `cap` and the overflow is recorded as a per-node conservation
    ///   imbalance (a surplus at the tail, a shortfall at the head). The
    ///   next [`max_flow_incremental`] *drains* all recorded overflow in one
    ///   batched repair before resuming augmentation — deferring the drain
    ///   is what makes a bisection probe that shrinks hundreds of source
    ///   edges cost a constant number of level-graph passes rather than a
    ///   residual search per edge.
    ///
    /// Flows produced by augmenting-path solvers decompose into source→sink
    /// paths, for which the drain always succeeds; if numerical slivers ever
    /// leave it short, the network is flagged and the next incremental solve
    /// silently falls back to a cold rebuild.
    ///
    /// [`max_flow_incremental`]: FlowNetwork::max_flow_incremental
    pub fn set_capacity(&mut self, e: EdgeId, cap: f64) {
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "capacity must be finite and >= 0, got {cap}"
        );
        let id = e.0;
        let flow = (self.orig[id] - self.cap[id]).max(0.0);
        let eps = cap * EDGE_EPS_REL;
        self.orig[id] = cap;
        self.eps[id] = eps;
        self.eps[id ^ 1] = eps;
        if flow <= cap {
            self.cap[id] = cap - flow;
            return;
        }
        // Clamp the flow to the new capacity; the edge becomes saturated.
        self.cap[id] = 0.0;
        self.cap[id ^ 1] = cap;
        let u = self.to[id ^ 1] as usize;
        let v = self.to[id] as usize;
        if u != v {
            // Self-loop flow never affected conservation or the value.
            let excess = flow - cap;
            self.record_imbalance(u, excess);
            self.record_imbalance(v, -excess);
        }
    }

    /// Record that `node`'s conservation balance changed by `delta`.
    fn record_imbalance(&mut self, node: usize, delta: f64) {
        if self.imbalance[node] == 0.0 {
            self.dirty.push(node);
        }
        self.imbalance[node] += delta;
    }

    /// Drain all recorded overflow in one batched repair, restoring
    /// conservation at every non-terminal node.
    ///
    /// Conceptually a super-source feeds each surplus node its excess and a
    /// super-sink absorbs each shortfall node's deficit; three Dinic passes
    /// fix the pseudo-flow:
    ///
    /// 1. surplus → shortfall: reroute excess into shortfalls through the
    ///    residual graph (value-preserving; covers cycle flow and alternate
    ///    routes);
    /// 2. surplus → `s`: cancel un-reroutable surplus back along the flow
    ///    that fed it;
    /// 3. `t` → shortfall: cancel each remaining shortfall's downstream
    ///    flow from the sink side.
    ///
    /// Unlike the old implementation this never materializes the super
    /// nodes: the budgets live in side arrays, the BFS seeds every
    /// budget-positive surplus node at level 0, and the DFS treats a node
    /// with remaining shortfall budget at the virtual sink level as one
    /// extra adjacency slot (so the CSR layout is never invalidated by a
    /// repair). Helper reverse residuals are frozen *by construction* — a
    /// later pass cannot undo an earlier pass's repair because budget slots
    /// have no traversable reverse direction. Any leftover budget beyond
    /// tolerance flags the network for a cold rebuild; the caller recomputes
    /// the flow value from the source's edges (conservation everywhere else
    /// makes the s- and t-side values agree automatically).
    fn repair(&mut self, s: usize, t: usize) {
        let dirty = std::mem::take(&mut self.dirty);
        let mut sources: Vec<Budget> = Vec::new();
        let mut sinks: Vec<Budget> = Vec::new();
        let mut total = 0.0;
        for &u in &dirty {
            let b = self.imbalance[u];
            self.imbalance[u] = 0.0;
            // Terminals are exempt: their imbalance *is* the value change,
            // recomputed from the edges afterwards.
            if u == s || u == t || b == 0.0 {
                continue;
            }
            total += b.abs();
            let budget = Budget {
                node: u,
                rem: b.abs(),
                eps: b.abs() * EDGE_EPS_REL,
            };
            if b > 0.0 {
                sources.push(budget);
            } else {
                sinks.push(budget);
            }
        }
        let mut drain_paths = 0u64;
        if !sources.is_empty() && !sinks.is_empty() {
            drain_paths += self.drain_pass(Some(&mut sources), s, Some(&mut sinks), t, true);
        }
        if !sources.is_empty() {
            // Virtual sources to the real source node `s`.
            drain_paths += self.drain_pass(Some(&mut sources), s, None, s, false);
        }
        if !sinks.is_empty() {
            // The real sink node `t` to the virtual sinks.
            drain_paths += self.drain_pass(None, t, Some(&mut sinks), t, true);
        }
        let shortfall: f64 = sources
            .iter()
            .chain(&sinks)
            .map(|b| if b.rem > b.eps { b.rem } else { 0.0 })
            .sum();
        if shortfall > total * 1e-9 + 1e-12 {
            self.needs_rebuild = true;
        }
        ssp_probe::counter!("maxflow.dinic.drain_paths", drain_paths);
    }

    /// One Dinic sub-solve of [`FlowNetwork::repair`]: from virtual budgeted
    /// sources (or the single real node `real_s`) to virtual budgeted sinks
    /// (or the single real node `real_t`, when `virtual_sink` is false).
    /// Returns the number of augmenting paths.
    fn drain_pass(
        &mut self,
        mut sources: Option<&mut Vec<Budget>>,
        real_s: usize,
        mut sinks: Option<&mut Vec<Budget>>,
        real_t: usize,
        virtual_sink: bool,
    ) -> u64 {
        let mut augmentations = 0u64;
        // Dense sink-budget view for O(1) lookup inside the DFS.
        let (mut sink_rem, mut sink_eps) = (Vec::new(), Vec::new());
        if virtual_sink {
            sink_rem = vec![0.0; self.num_nodes];
            sink_eps = vec![f64::INFINITY; self.num_nodes];
            for b in sinks.as_deref().unwrap() {
                sink_rem[b.node] = b.rem;
                sink_eps[b.node] = b.eps;
            }
        }
        loop {
            // Level graph from the (virtual or real) source side.
            match sources.as_deref() {
                Some(srcs) => {
                    let seeds: Vec<usize> = srcs
                        .iter()
                        .filter(|b| b.rem > b.eps)
                        .map(|b| b.node)
                        .collect();
                    if seeds.is_empty() {
                        break;
                    }
                    self.build_levels(&seeds);
                }
                None => self.build_levels(&[real_s]),
            }
            // Virtual sink level: one past the closest budget-positive sink.
            let vt = if virtual_sink {
                let min_level = sinks
                    .as_deref()
                    .unwrap()
                    .iter()
                    .filter(|b| b.rem > b.eps && self.level[b.node] >= 0)
                    .map(|b| self.level[b.node])
                    .min();
                match min_level {
                    Some(l) => l + 1,
                    None => break,
                }
            } else {
                if self.level[real_t] < 0 {
                    break;
                }
                self.level[real_t]
            };
            let before = augmentations;
            self.reset_cursors();
            match sources.as_deref_mut() {
                Some(srcs) => {
                    for b in srcs.iter_mut() {
                        while b.rem > b.eps {
                            let pushed = if virtual_sink {
                                self.blocking_dfs_vsink(b.node, vt, b.rem, &mut sink_rem, &sink_eps)
                            } else {
                                self.blocking_dfs(b.node, real_t, b.rem)
                            };
                            if pushed <= 0.0 {
                                break;
                            }
                            b.rem -= pushed;
                            augmentations += 1;
                        }
                    }
                }
                None => loop {
                    let pushed = self.blocking_dfs_vsink(
                        real_s,
                        vt,
                        f64::INFINITY,
                        &mut sink_rem,
                        &sink_eps,
                    );
                    if pushed <= 0.0 {
                        break;
                    }
                    augmentations += 1;
                },
            }
            ssp_probe::histogram!(
                "maxflow.dinic.path_len",
                vt.max(0) as u64,
                augmentations - before
            );
            if augmentations == before {
                // A blocking phase that found no path: the remaining budget
                // is unreachable; the shortfall check decides what it means.
                break;
            }
            // Write the consumed budgets back for the next level rebuild.
            if let Some(sks) = sinks.as_deref_mut() {
                for b in sks.iter_mut() {
                    b.rem = sink_rem[b.node];
                }
            }
        }
        augmentations
    }

    /// Net flow out of `s` read directly off its incident edges.
    fn net_source_flow(&self, s: usize) -> f64 {
        let mut val = 0.0;
        for idx in self.csr_start[s]..self.csr_start[s + 1] {
            let ei = self.csr_edges[idx as usize] as usize;
            let fwd = ei & !1;
            let f = (self.orig[fwd] - self.cap[fwd]).max(0.0);
            if ei & 1 == 0 {
                val += f;
            } else {
                val -= f;
            }
        }
        val
    }

    /// Recompute a maximum `s → t` flow *warm*: repair the stored flow if
    /// draining [`set_capacity`] calls left recorded overflow, then augment
    /// from the residual graph. Any valid flow extends to a maximum one by
    /// augmenting its residual, so this returns the same value as a cold
    /// [`max_flow`] while doing work proportional to the *change*.
    ///
    /// Falls back to a cold solve when the terminals differ from the last
    /// solve, no solve has run yet, or a drain repair fell short.
    ///
    /// [`set_capacity`]: FlowNetwork::set_capacity
    /// [`max_flow`]: FlowNetwork::max_flow
    pub fn max_flow_incremental(&mut self, s: usize, t: usize) -> f64 {
        assert!(
            s < self.num_nodes && t < self.num_nodes,
            "terminal out of range"
        );
        assert_ne!(s, t, "source and sink must differ");
        if self.needs_rebuild || self.last_source != Some(s) || self.last_sink != Some(t) {
            return self.max_flow(s, t);
        }
        self.ensure_csr();
        if !self.dirty.is_empty() {
            self.repair(s, t);
            if self.needs_rebuild {
                return self.max_flow(s, t);
            }
        }
        let (_, phases, augmentations) = self.dinic_augment(s, t);
        ssp_probe::counter!("maxflow.dinic.phases", phases);
        ssp_probe::counter!("maxflow.dinic.augmentations", augmentations);
        ssp_probe::counter!("maxflow.warm_reuse");
        self.flow_value = self.net_source_flow(s);
        self.flow_value
    }

    /// BFS on the residual graph from `seeds` (all at level 0), building the
    /// level structure. The caller must have ensured the CSR is fresh.
    fn build_levels(&mut self, seeds: &[usize]) {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        for &s in seeds {
            if self.level[s] < 0 {
                self.level[s] = 0;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            for idx in self.csr_start[u]..self.csr_start[u + 1] {
                let ei = self.csr_edges[idx as usize] as usize;
                let v = self.to[ei] as usize;
                if self.cap[ei] > self.eps[ei] && self.level[v] < 0 {
                    self.level[v] = self.level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }

    /// Reset the per-node DFS cursors to the start of each CSR range.
    fn reset_cursors(&mut self) {
        self.iter.copy_from_slice(&self.csr_start[..self.num_nodes]);
    }

    /// DFS with per-node edge iterators; pushes a blocking path and returns
    /// the pushed amount (0 when none).
    fn blocking_dfs(&mut self, u: usize, t: usize, limit: f64) -> f64 {
        if u == t {
            return limit;
        }
        while self.iter[u] < self.csr_start[u + 1] {
            let ei = self.csr_edges[self.iter[u] as usize] as usize;
            let (to, cap, eps) = (self.to[ei] as usize, self.cap[ei], self.eps[ei]);
            if cap > eps && self.level[to] == self.level[u] + 1 {
                let pushed = self.blocking_dfs(to, t, limit.min(cap));
                if pushed > 0.0 {
                    self.cap[ei] -= pushed;
                    self.cap[ei ^ 1] += pushed;
                    return pushed;
                }
            }
            self.iter[u] += 1;
        }
        0.0
    }

    /// [`FlowNetwork::blocking_dfs`] against the virtual budgeted sink of a
    /// repair pass: a node with remaining sink budget at level `vt - 1`
    /// carries one extra adjacency slot (cursor position `csr_start[u+1]`)
    /// that absorbs flow into its budget instead of an edge.
    fn blocking_dfs_vsink(
        &mut self,
        u: usize,
        vt: i32,
        limit: f64,
        sink_rem: &mut [f64],
        sink_eps: &[f64],
    ) -> f64 {
        while self.iter[u] < self.csr_start[u + 1] {
            let ei = self.csr_edges[self.iter[u] as usize] as usize;
            let (to, cap, eps) = (self.to[ei] as usize, self.cap[ei], self.eps[ei]);
            if cap > eps && self.level[to] == self.level[u] + 1 {
                let pushed = self.blocking_dfs_vsink(to, vt, limit.min(cap), sink_rem, sink_eps);
                if pushed > 0.0 {
                    self.cap[ei] -= pushed;
                    self.cap[ei ^ 1] += pushed;
                    return pushed;
                }
            }
            self.iter[u] += 1;
        }
        if self.iter[u] == self.csr_start[u + 1] {
            if self.level[u] + 1 == vt && sink_rem[u] > sink_eps[u] {
                let take = limit.min(sink_rem[u]);
                sink_rem[u] -= take;
                // Keep the cursor on the budget slot: it may absorb the
                // next path too.
                return take;
            }
            self.iter[u] += 1; // budget exhausted or inadmissible
        }
        0.0
    }

    /// Nodes reachable from `node` in the residual graph of the current flow.
    pub fn residual_reachable(&self, node: usize) -> Vec<bool> {
        let storage;
        let (start, edges): (&[u32], &[u32]) = if self.csr_stale {
            storage = self.build_csr_fresh();
            (&storage.0, &storage.1)
        } else {
            (&self.csr_start, &self.csr_edges)
        };
        let mut seen = vec![false; self.num_nodes];
        let mut queue = std::collections::VecDeque::new();
        seen[node] = true;
        queue.push_back(node);
        while let Some(u) = queue.pop_front() {
            for idx in start[u]..start[u + 1] {
                let ei = edges[idx as usize] as usize;
                let v = self.to[ei] as usize;
                if self.cap[ei] > self.eps[ei] && !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Nodes reachable from the source of the last `max_flow` call in the
    /// residual graph. After a max flow, this is the source side `X` of the
    /// canonical minimum cut, and precisely the set of *upstream* nodes
    /// (nodes on the source side of **every** minimum cut).
    pub fn residual_reachable_from_source(&self) -> Vec<bool> {
        let s = self.last_source.expect("call max_flow first");
        self.residual_reachable(s)
    }

    /// Nodes from which the sink of the last `max_flow` call is reachable in
    /// the residual graph (reverse BFS). A node *outside* this set has all of
    /// its paths to the sink saturated — the criticality test of the
    /// migratory solver.
    pub fn residual_coreachable_to_sink(&self) -> Vec<bool> {
        let t = self.last_sink.expect("call max_flow first");
        let storage;
        let (start, edges): (&[u32], &[u32]) = if self.csr_stale {
            storage = self.build_csr_fresh();
            (&storage.0, &storage.1)
        } else {
            (&self.csr_start, &self.csr_edges)
        };
        let mut seen = vec![false; self.num_nodes];
        let mut queue = std::collections::VecDeque::new();
        seen[t] = true;
        queue.push_back(t);
        while let Some(u) = queue.pop_front() {
            // Traverse edges *into* u with residual capacity: for each edge
            // `ei` = u → w in u's adjacency, its partner `ei ^ 1` is w → u.
            for idx in start[u]..start[u + 1] {
                let ei = edges[idx as usize] as usize;
                let partner = ei ^ 1;
                let w = self.to[ei] as usize;
                if self.cap[partner] > self.eps[partner] && !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        seen
    }

    /// The minimum-cut edges of the last `max_flow` call: forward edges from
    /// the residual-reachable side to the rest. Their capacities sum to the
    /// flow value (max-flow/min-cut theorem).
    pub fn min_cut_edges(&self) -> Vec<EdgeId> {
        let side = self.residual_reachable_from_source();
        let mut cut = Vec::new();
        for id in (0..self.to.len()).step_by(2) {
            // Forward edge u→v: u is the partner's head.
            let u = self.to[id ^ 1] as usize;
            let v = self.to[id] as usize;
            if side[u] && !side[v] && self.orig[id] > 0.0 {
                cut.push(EdgeId(id));
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic CLRS example network (max flow 23).
    fn clrs() -> (FlowNetwork, Vec<EdgeId>) {
        let mut g = FlowNetwork::new(6);
        let ids = vec![
            g.add_edge(0, 1, 16.0),
            g.add_edge(0, 2, 13.0),
            g.add_edge(1, 2, 10.0),
            g.add_edge(2, 1, 4.0),
            g.add_edge(1, 3, 12.0),
            g.add_edge(3, 2, 9.0),
            g.add_edge(2, 4, 14.0),
            g.add_edge(4, 3, 7.0),
            g.add_edge(3, 5, 20.0),
            g.add_edge(4, 5, 4.0),
        ];
        (g, ids)
    }

    #[test]
    fn clrs_max_flow_is_23() {
        let (mut g, _) = clrs();
        assert!((g.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn max_flow_is_idempotent() {
        let (mut g, _) = clrs();
        let a = g.max_flow(0, 5);
        let b = g.max_flow(0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn per_edge_flows_conserve() {
        let (mut g, ids) = clrs();
        let total = g.max_flow(0, 5);
        // Out of source = total.
        let out: f64 = g.flow(ids[0]) + g.flow(ids[1]);
        assert!((out - total).abs() < 1e-9);
        // Into sink = total.
        let inflow: f64 = g.flow(ids[8]) + g.flow(ids[9]);
        assert!((inflow - total).abs() < 1e-9);
        // Each flow within capacity.
        for &id in &ids {
            assert!(g.flow(id) >= -1e-12);
            assert!(g.flow(id) <= g.capacity(id) + 1e-12);
        }
    }

    #[test]
    fn min_cut_matches_flow_value() {
        let (mut g, _) = clrs();
        let v = g.max_flow(0, 5);
        let cut = g.min_cut_edges();
        let cap: f64 = cut.iter().map(|&e| g.capacity(e)).sum();
        assert!((cap - v).abs() < 1e-9);
        // Every cut edge is saturated.
        for e in cut {
            assert!(g.is_saturated(e));
        }
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 5.0);
        g.add_edge(2, 3, 5.0);
        assert_eq!(g.max_flow(0, 3), 0.0);
        let side = g.residual_reachable_from_source();
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 1.5);
        g.add_edge(0, 1, 2.5);
        assert!((g.max_flow(0, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_capacities() {
        // Layered network with fractional caps typical of WAP graphs.
        let mut g = FlowNetwork::new(5);
        g.add_edge(0, 1, 1.0 / 3.0);
        g.add_edge(0, 2, 0.2);
        g.add_edge(1, 3, 0.25);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 0.5);
        let v = g.max_flow(0, 4);
        // min(1/3, 0.25) + 0.2 = 0.45 limited by 0.5 sink edge => 0.45.
        assert!((v - 0.45).abs() < 1e-12);
    }

    #[test]
    fn sink_never_residual_reachable_after_max_flow() {
        let (mut g, _) = clrs();
        g.max_flow(0, 5);
        assert!(!g.residual_reachable_from_source()[5]);
    }

    #[test]
    fn coreachable_to_sink_identifies_saturated_nodes() {
        // s → a → t with bottleneck at (a, t); plus s → b → t wide open
        // ... but b's path saturated too at max flow; then neither a nor b
        // can reach t. Add an extra non-saturated lane c to check positives.
        let mut g = FlowNetwork::new(5);
        g.add_edge(0, 1, 10.0); // s→a
        g.add_edge(1, 4, 1.0); // a→t (bottleneck, saturated)
        g.add_edge(0, 2, 1.0); // s→b (bottleneck, saturated)
        g.add_edge(2, 4, 10.0); // b→t (slack remains)
        let v = g.max_flow(0, 4);
        assert!((v - 2.0).abs() < 1e-12);
        let co = g.residual_coreachable_to_sink();
        assert!(co[4]);
        assert!(!co[1], "a's only path to t is saturated");
        assert!(co[2], "b still has residual capacity to t");
        // And s can reach t through nobody (max flow), though s→a has slack:
        assert!(!g.residual_reachable_from_source()[4]);
    }

    #[test]
    fn add_node_grows_network() {
        let mut g = FlowNetwork::new(2);
        let v = g.add_node();
        assert_eq!(v, 2);
        g.add_edge(0, 2, 3.0);
        g.add_edge(2, 1, 2.0);
        assert!((g.max_flow(0, 1) - 2.0).abs() < 1e-12);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_terminals_panic() {
        let mut g = FlowNetwork::new(2);
        g.max_flow(1, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be finite")]
    fn negative_capacity_panics() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn zero_capacity_edges_are_legal_and_carry_nothing() {
        let mut g = FlowNetwork::new(3);
        let e = g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 5.0);
        assert_eq!(g.max_flow(0, 2), 0.0);
        assert_eq!(g.flow(e), 0.0);
    }

    /// Cold-solve a structural copy of `g` (same nodes/edges/orig caps).
    fn cold_value(g: &FlowNetwork, s: usize, t: usize) -> f64 {
        let mut fresh = g.clone();
        fresh.max_flow(s, t)
    }

    #[test]
    fn warm_increase_resumes_augmentation() {
        let (mut g, ids) = clrs();
        assert!((g.max_flow(0, 5) - 23.0).abs() < 1e-9);
        // Widen the (4,5) sink edge: 4.0 → 10.0 opens more throughput.
        g.set_capacity(ids[9], 10.0);
        let warm = g.max_flow_incremental(0, 5);
        assert!((warm - cold_value(&g, 0, 5)).abs() < 1e-9);
        assert!(warm > 23.0);
        assert!((g.flow_value() - warm).abs() < 1e-12);
    }

    #[test]
    fn warm_decrease_drains_overflow() {
        let (mut g, ids) = clrs();
        g.max_flow(0, 5);
        // Choke the (3,5) edge far below the ~19 units it carries.
        g.set_capacity(ids[8], 2.0);
        let warm = g.max_flow_incremental(0, 5);
        assert!((warm - cold_value(&g, 0, 5)).abs() < 1e-9);
        assert!((warm - 6.0).abs() < 1e-9, "cut is 2.0 + 4.0, got {warm}");
        assert!(g.flow(ids[8]) <= 2.0 + 1e-12);
    }

    #[test]
    fn warm_matches_cold_through_update_sequence() {
        let (mut g, ids) = clrs();
        g.max_flow(0, 5);
        let updates = [
            (0usize, 4.0), // shrink s→1 below its flow
            (9, 9.0),      // widen 4→5
            (6, 3.0),      // shrink 2→4
            (0, 16.0),     // restore s→1
            (8, 11.0),     // shrink 3→5
            (1, 20.0),     // widen s→2
        ];
        for &(k, cap) in &updates {
            g.set_capacity(ids[k], cap);
            let warm = g.max_flow_incremental(0, 5);
            let cold = cold_value(&g, 0, 5);
            assert!(
                (warm - cold).abs() < 1e-9,
                "after set_capacity(#{k}, {cap}): warm {warm} != cold {cold}"
            );
            assert!((g.flow_value() - warm).abs() < 1e-12);
        }
    }

    #[test]
    fn drain_to_zero_empties_the_flow() {
        let (mut g, ids) = clrs();
        g.max_flow(0, 5);
        g.set_capacity(ids[0], 0.0);
        g.set_capacity(ids[1], 0.0);
        let warm = g.max_flow_incremental(0, 5);
        assert!(warm.abs() < 1e-9);
        assert!(g.flow_value().abs() < 1e-9);
        // The clamped edges must be empty; elsewhere a zero-value
        // circulation may legitimately remain (it is still a valid flow),
        // but every edge must respect its capacity.
        assert!(g.flow(ids[0]) < 1e-12);
        assert!(g.flow(ids[1]) < 1e-12);
        for &id in &ids {
            assert!(g.flow(id) <= g.capacity(id) + 1e-12);
        }
    }

    #[test]
    fn min_cut_valid_after_incremental_updates() {
        let (mut g, ids) = clrs();
        g.max_flow(0, 5);
        g.set_capacity(ids[8], 5.0);
        g.set_capacity(ids[9], 2.0);
        let warm = g.max_flow_incremental(0, 5);
        // The canonical min cut must certify the warm flow exactly as it
        // would a cold one: capacities sum to the value, every cut edge is
        // saturated, and the sink stays unreachable.
        let cut = g.min_cut_edges();
        let cap: f64 = cut.iter().map(|&e| g.capacity(e)).sum();
        assert!((cap - warm).abs() < 1e-9, "cut {cap} != warm value {warm}");
        for e in cut {
            assert!(g.is_saturated(e));
        }
        let side = g.residual_reachable_from_source();
        assert!(side[0] && !side[5]);
    }

    #[test]
    fn residual_reachability_flips_with_capacity() {
        // s → a → t: saturating and unsaturating the middle edge must flip
        // a's membership in the source side of the cut.
        let mut g = FlowNetwork::new(3);
        let sa = g.add_edge(0, 1, 5.0);
        let at = g.add_edge(1, 2, 5.0);
        g.max_flow(0, 2);
        assert!(!g.residual_reachable_from_source()[1], "s→a saturated");
        g.set_capacity(sa, 8.0);
        g.max_flow_incremental(0, 2);
        assert!(g.residual_reachable_from_source()[1], "slack on s→a now");
        assert!(g.is_saturated(at));
        g.set_capacity(at, 1.0);
        let v = g.max_flow_incremental(0, 2);
        assert!((v - 1.0).abs() < 1e-12);
        assert_eq!(g.min_cut_edges(), vec![at]);
    }

    #[test]
    fn incremental_with_new_terminals_falls_back_cold() {
        let (mut g, _) = clrs();
        g.max_flow(0, 5);
        // Different terminals: must not try to reuse the stored flow.
        let v = g.max_flow_incremental(0, 3);
        assert!((v - cold_value(&g, 0, 3)).abs() < 1e-9);
    }

    #[test]
    fn incremental_without_prior_solve_is_cold() {
        let (mut g, _) = clrs();
        let v = g.max_flow_incremental(0, 5);
        assert!((v - 23.0).abs() < 1e-9);
    }

    #[test]
    fn set_capacity_before_any_solve_just_reparameterizes() {
        let (mut g, ids) = clrs();
        g.set_capacity(ids[0], 2.0);
        assert!((g.max_flow(0, 5) - cold_value(&g, 0, 5)).abs() < 1e-12);
    }

    #[test]
    fn queries_survive_edges_added_after_a_solve() {
        // Adding an edge staleness-marks the CSR; `&self` reachability
        // queries must still answer (over the up-to-date topology) without
        // a solve in between.
        let (mut g, _) = clrs();
        g.max_flow(0, 5);
        let before = g.residual_reachable_from_source();
        g.add_edge(0, 4, 0.0); // zero-cap: reachability unchanged
        let after = g.residual_reachable_from_source();
        assert_eq!(before, after);
        assert!(!g.residual_coreachable_to_sink()[0]);
    }

    #[test]
    fn large_layered_network_is_fast_and_exact() {
        // 200 jobs × 50 intervals bipartite-ish WAP-shaped graph.
        let (jobs, ivals) = (200usize, 50usize);
        let s = 0usize;
        let t = 1 + jobs + ivals;
        let mut g = FlowNetwork::new(t + 1);
        for i in 0..jobs {
            g.add_edge(s, 1 + i, 1.0);
        }
        for i in 0..jobs {
            for j in 0..ivals {
                if (i + j) % 3 == 0 {
                    g.add_edge(1 + i, 1 + jobs + j, 0.5);
                }
            }
        }
        for j in 0..ivals {
            g.add_edge(1 + jobs + j, t, 4.0);
        }
        let v = g.max_flow(s, t);
        assert!(v > 0.0 && v <= jobs as f64);
        // Value equals min-cut capacity.
        let cut_cap: f64 = g.min_cut_edges().iter().map(|&e| g.capacity(e)).sum();
        assert!((cut_cap - v).abs() < 1e-6);
    }

    /// Cloning a solved network forks the parametric state: the clone warm
    /// repairs independently, and solving the clone leaves the original's
    /// flow, value, and residual structure bit-identical. This is the
    /// contract the parallel probe ladder relies on (one probe per clone).
    #[test]
    fn clone_split_solves_are_independent_and_bit_identical() {
        let mut g = FlowNetwork::new(6);
        let s_edges: Vec<EdgeId> = (1..=3).map(|i| g.add_edge(0, i, 1.0)).collect();
        let mid: Vec<EdgeId> = (1..=3).map(|i| g.add_edge(i, 4, 0.8)).collect();
        let out = g.add_edge(4, 5, 2.0);
        g.max_flow(0, 5);
        let value0 = g.flow_value();
        let flows0: Vec<u64> = mid.iter().map(|&e| g.flow(e).to_bits()).collect();

        // Fork two clones and re-parameterize them differently.
        let mut a = g.clone();
        let mut b = g.clone();
        for &e in &s_edges {
            a.set_capacity(e, 0.4);
            b.set_capacity(e, 1.5);
        }
        let va = a.max_flow_incremental(0, 5);
        let vb = b.max_flow_incremental(0, 5);
        assert!((va - 1.2).abs() < 1e-9, "clone a value {va}");
        assert!((vb - 2.0).abs() < 1e-9, "clone b value {vb}");

        // The original is untouched, bit for bit.
        assert_eq!(g.flow_value().to_bits(), value0.to_bits());
        let flows_after: Vec<u64> = mid.iter().map(|&e| g.flow(e).to_bits()).collect();
        assert_eq!(flows_after, flows0);
        assert_eq!(g.capacity(out).to_bits(), 2.0f64.to_bits());
        // And identical clones repair to identical flows (determinism).
        let mut c = g.clone();
        let mut d = g.clone();
        for &e in &s_edges {
            c.set_capacity(e, 0.9);
            d.set_capacity(e, 0.9);
        }
        assert_eq!(
            c.max_flow_incremental(0, 5).to_bits(),
            d.max_flow_incremental(0, 5).to_bits()
        );
        for &e in &mid {
            assert_eq!(c.flow(e).to_bits(), d.flow(e).to_bits());
        }
    }
}
