//! Captured telemetry: the [`Trace`] type, its JSONL wire format, and the
//! human-readable phase table.
//!
//! The wire format is JSON Lines with flat objects only — one `meta` line,
//! one line per span, one line per counter — so it round-trips through a
//! hand-rolled parser and stays greppable:
//!
//! ```text
//! {"type":"meta","version":1,"spans":3,"counters":1}
//! {"type":"span","id":1,"parent":0,"thread":1,"name":"solve","start_ns":0,"end_ns":91042}
//! {"type":"counter","name":"bal.flow_calls","value":17}
//! ```

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Format version emitted in the `meta` line; bump on breaking changes.
pub const FORMAT_VERSION: u64 = 1;

/// One closed span. `parent == 0` marks a root; times are nanoseconds since
/// the session epoch, so `end_ns - start_ns` is the phase duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Session-unique id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// Dense label of the recording thread (1, 2, … in first-probe order).
    pub thread: u64,
    /// Phase name as passed to [`crate::span`].
    pub name: String,
    /// Start, nanoseconds since the session epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the session epoch.
    pub end_ns: u64,
}

impl SpanRec {
    /// Phase duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A complete captured session: spans sorted by start time plus final
/// counter totals (zero-valued counters are omitted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// All closed spans, sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRec>,
    /// `(name, total)` pairs, sorted by name; only counters that fired.
    pub counters: Vec<(String, u64)>,
}

impl Trace {
    /// Final total of counter `name` (0 if it never fired).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Number of spans named `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Summed duration of all spans named `name`, in nanoseconds.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(SpanRec::duration_ns)
            .sum()
    }

    /// Root spans (no parent), in start order.
    pub fn roots(&self) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.parent == 0).collect()
    }

    /// Direct children of span `id`, in start order.
    pub fn children(&self, id: u64) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// Structural well-formedness: span ids unique and non-zero, parents
    /// resolvable, children contained in their parent's interval, counters
    /// unique and sorted. Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let mut by_id: HashMap<u64, &SpanRec> = HashMap::with_capacity(self.spans.len());
        for s in &self.spans {
            if s.id == 0 {
                return Err(format!("span '{}' has reserved id 0", s.name));
            }
            if s.end_ns < s.start_ns {
                return Err(format!("span '{}' ends before it starts", s.name));
            }
            if by_id.insert(s.id, s).is_some() {
                return Err(format!("duplicate span id {}", s.id));
            }
        }
        for s in &self.spans {
            if s.parent == 0 {
                continue;
            }
            let Some(p) = by_id.get(&s.parent) else {
                return Err(format!(
                    "span '{}' (id {}) references missing parent {}",
                    s.name, s.id, s.parent
                ));
            };
            if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                return Err(format!(
                    "span '{}' (id {}) not contained in parent '{}' (id {})",
                    s.name, s.id, p.name, p.id
                ));
            }
        }
        let mut seen = HashSet::new();
        for window in self.counters.windows(2) {
            if window[0].0 > window[1].0 {
                return Err("counters not sorted by name".to_string());
            }
        }
        for (name, _) in &self.counters {
            if !seen.insert(name) {
                return Err(format!("duplicate counter '{name}'"));
            }
        }
        Ok(())
    }

    // -- JSONL ------------------------------------------------------------

    /// Serialize to JSON Lines (see module docs for the schema).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"version\":{},\"spans\":{},\"counters\":{}}}",
            FORMAT_VERSION,
            self.spans.len(),
            self.counters.len()
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"thread\":{},\"name\":{},\"start_ns\":{},\"end_ns\":{}}}",
                s.id,
                s.parent,
                s.thread,
                json_string(&s.name),
                s.start_ns,
                s.end_ns
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
                json_string(name),
                value
            );
        }
        out
    }

    /// Parse a trace previously produced by [`Trace::to_jsonl`]. Unknown
    /// line types are ignored (forward compatibility); malformed lines and
    /// meta/count mismatches are errors.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        let mut meta: Option<(u64, u64, u64)> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields =
                parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let get = |key: &str| -> Option<&JsonValue> {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            };
            let num = |key: &str| -> Result<u64, String> {
                match get(key) {
                    Some(JsonValue::Num(n)) => Ok(*n),
                    _ => Err(format!("line {}: missing number field '{key}'", lineno + 1)),
                }
            };
            let string = |key: &str| -> Result<String, String> {
                match get(key) {
                    Some(JsonValue::Str(s)) => Ok(s.clone()),
                    _ => Err(format!("line {}: missing string field '{key}'", lineno + 1)),
                }
            };
            match get("type") {
                Some(JsonValue::Str(t)) if t == "meta" => {
                    meta = Some((num("version")?, num("spans")?, num("counters")?));
                }
                Some(JsonValue::Str(t)) if t == "span" => {
                    trace.spans.push(SpanRec {
                        id: num("id")?,
                        parent: num("parent")?,
                        thread: num("thread")?,
                        name: string("name")?,
                        start_ns: num("start_ns")?,
                        end_ns: num("end_ns")?,
                    });
                }
                Some(JsonValue::Str(t)) if t == "counter" => {
                    trace.counters.push((string("name")?, num("value")?));
                }
                Some(JsonValue::Str(_)) => {} // future line types: skip
                _ => return Err(format!("line {}: missing 'type' field", lineno + 1)),
            }
        }
        if let Some((version, spans, counters)) = meta {
            if version > FORMAT_VERSION {
                return Err(format!("unsupported trace version {version}"));
            }
            if spans != trace.spans.len() as u64 {
                return Err(format!(
                    "meta declares {spans} spans, found {}",
                    trace.spans.len()
                ));
            }
            if counters != trace.counters.len() as u64 {
                return Err(format!(
                    "meta declares {counters} counters, found {}",
                    trace.counters.len()
                ));
            }
        } else if !trace.spans.is_empty() || !trace.counters.is_empty() {
            return Err("trace has records but no meta line".to_string());
        }
        Ok(trace)
    }

    // -- Phase table ------------------------------------------------------

    /// Render a human-readable phase table: the span tree with sibling
    /// spans of the same name aggregated (call count + total time), then
    /// the counter totals. This is what `solve --timings` prints.
    pub fn phase_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<44} {:>12} {:>8}", "phase", "total", "calls");
        self.render_level(&mut out, &[0], 0);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<42} {value:>12}");
            }
        }
        out
    }

    fn render_level(&self, out: &mut String, parent_ids: &[u64], depth: usize) {
        // Aggregate spans with the same name across all instances of the
        // (aggregated) parent group, preserving first-seen order.
        let parents: HashSet<u64> = parent_ids.iter().copied().collect();
        let mut order: Vec<&str> = Vec::new();
        let mut groups: BTreeMap<&str, (u64, usize, Vec<u64>)> = BTreeMap::new();
        for s in &self.spans {
            if !parents.contains(&s.parent) {
                continue;
            }
            let entry = groups.entry(&s.name).or_insert_with(|| {
                order.push(&s.name);
                (0, 0, Vec::new())
            });
            entry.0 += s.duration_ns();
            entry.1 += 1;
            entry.2.push(s.id);
        }
        for name in order {
            let (total_ns, calls, ids) = &groups[name];
            let label = format!("{:indent$}{name}", "", indent = depth * 2);
            let _ = writeln!(out, "{label:<44} {:>12} {calls:>8}", format_ns(*total_ns));
            self.render_level(out, ids, depth + 1);
        }
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

// ---------------------------------------------------------------------------
// Minimal flat-JSON support (no external dependencies)
// ---------------------------------------------------------------------------

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

enum JsonValue {
    Str(String),
    Num(u64),
}

/// Parse one flat JSON object (`{"k":v,...}` with string or unsigned
/// integer values) into key/value pairs. Deliberately minimal: the trace
/// format never nests.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = chars.peek().copied() {
                    if let Some(d) = c.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(d as u64))
                            .ok_or_else(|| "number overflows u64".to_string())?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Num(n)
            }
            other => return Err(format!("unexpected value start: {other:?}")),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing content starting at {c:?}"));
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t')) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| "bad \\u escape".to_string())?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).ok_or_else(|| "bad \\u codepoint".to_string())?);
                }
                other => return Err(format!("bad escape: {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            spans: vec![
                SpanRec {
                    id: 1,
                    parent: 0,
                    thread: 1,
                    name: "solve".into(),
                    start_ns: 0,
                    end_ns: 1_000_000,
                },
                SpanRec {
                    id: 2,
                    parent: 1,
                    thread: 1,
                    name: "lower_bound".into(),
                    start_ns: 10,
                    end_ns: 600_000,
                },
                SpanRec {
                    id: 3,
                    parent: 1,
                    thread: 1,
                    name: "rr".into(),
                    start_ns: 600_100,
                    end_ns: 999_000,
                },
            ],
            counters: vec![
                ("bal.flow_calls".into(), 17),
                ("maxflow.dinic.runs".into(), 18),
            ],
        }
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let trace = sample();
        let text = trace.to_jsonl();
        let parsed = Trace::parse(&text).expect("parse back");
        assert_eq!(parsed, trace);
        parsed.validate().expect("well-formed");
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut trace = sample();
        trace.spans[0].name = "weird \"name\"\\with\n\tescapes".into();
        let parsed = Trace::parse(&trace.to_jsonl()).unwrap();
        assert_eq!(parsed.spans[0].name, trace.spans[0].name);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Trace::parse("not json").is_err());
        assert!(
            Trace::parse("{\"type\":\"span\",\"id\":1}").is_err(),
            "missing fields"
        );
        assert!(
            Trace::parse("{\"type\":\"span\"").is_err(),
            "unterminated object"
        );
        let trace = sample();
        let mut text = trace.to_jsonl();
        text.push_str("{\"type\":\"span\",\"id\":9,\"parent\":0,\"thread\":1,\"name\":\"x\",\"start_ns\":0,\"end_ns\":1}\n");
        assert!(Trace::parse(&text).is_err(), "meta span count mismatch");
    }

    #[test]
    fn parse_ignores_unknown_line_types() {
        let trace = sample();
        let mut text = trace.to_jsonl();
        text.push_str("{\"type\":\"future_thing\",\"x\":1}\n");
        assert_eq!(Trace::parse(&text).unwrap(), trace);
    }

    #[test]
    fn validate_catches_structural_problems() {
        let mut bad = sample();
        bad.spans[1].parent = 99;
        assert!(bad.validate().is_err(), "missing parent");

        let mut bad = sample();
        bad.spans[2].id = 1;
        assert!(bad.validate().is_err(), "duplicate id");

        let mut bad = sample();
        bad.spans[1].end_ns = 2_000_000; // escapes parent interval
        assert!(bad.validate().is_err(), "containment");

        sample().validate().expect("sample is valid");
    }

    #[test]
    fn phase_table_lists_phases_and_counters() {
        let table = sample().phase_table();
        assert!(table.contains("solve"));
        assert!(table.contains("  lower_bound"), "children indented");
        assert!(table.contains("bal.flow_calls"));
        assert!(table.contains("1.00 ms"));
    }
}
