//! Captured telemetry: the [`Trace`] type, its JSONL wire format, the
//! human-readable phase tables, and the trace-analysis renderers
//! ([`Trace::report`], [`Trace::folded`], [`diff`]).
//!
//! The wire format is JSON Lines with flat objects only — one `meta` line,
//! one line per span, one line per counter, one line per histogram, at most
//! one `error` line — so it round-trips through a hand-rolled parser and
//! stays greppable:
//!
//! ```text
//! {"type":"meta","version":2,"spans":3,"counters":1,"hists":1}
//! {"type":"span","id":1,"parent":0,"thread":1,"name":"solve","start_ns":0,"end_ns":91042}
//! {"type":"counter","name":"bal.flow_calls","value":17}
//! {"type":"hist","name":"bal.bisect.probes","count":4,"sum":90,"max":31,"buckets":"4:1;5:3"}
//! {"type":"error","message":"no algorithm produced a valid schedule"}
//! ```
//!
//! Spans carry optional `alloc_bytes`/`alloc_count` fields (their *self*
//! allocation, recorded under the `probe-alloc` feature); the fields are
//! omitted when zero, so traces from feature-off builds are byte-stable.
//! Histogram buckets are serialized sparsely as an `"index:count;…"` string
//! to keep every line a flat object. Version-1 traces (no `hists` meta
//! field, no histogram/error lines) still parse.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Format version emitted in the `meta` line; bump on breaking changes.
/// Version 2 added histogram lines, the `error` line, and per-span
/// allocation fields.
pub const FORMAT_VERSION: u64 = 2;

/// Number of histogram buckets: bucket 0 holds the value 0 and bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`, so 64 power-of-two buckets
/// cover the full `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index a value lands in (see [`HIST_BUCKETS`]).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value bucket `index` can hold; quantiles report this upper
/// bound (clamped to the observed max) as their estimate.
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// One closed span. `parent == 0` marks a root; times are nanoseconds since
/// the session epoch, so `end_ns - start_ns` is the phase duration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanRec {
    /// Session-unique id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// Dense label of the recording thread (1, 2, … in first-probe order).
    pub thread: u64,
    /// Phase name as passed to [`crate::span`].
    pub name: String,
    /// Start, nanoseconds since the session epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the session epoch.
    pub end_ns: u64,
    /// Bytes allocated by this span itself (children excluded). Always 0
    /// unless the session ran with the `probe-alloc` feature.
    pub alloc_bytes: u64,
    /// Allocation calls made by this span itself (children excluded).
    /// Always 0 unless the session ran with the `probe-alloc` feature.
    pub alloc_count: u64,
}

impl SpanRec {
    /// Phase duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One captured histogram: a sparse log2-bucketed distribution with exact
/// count/sum/max, merged across macro sites of the same name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistRec {
    /// Histogram name as passed to [`crate::histogram!`].
    pub name: String,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, sorted by index, counts
    /// nonzero; indexes as in [`bucket_of`].
    pub buckets: Vec<(u8, u64)>,
}

impl HistRec {
    pub(crate) fn new(name: &str) -> HistRec {
        HistRec {
            name: name.to_string(),
            ..HistRec::default()
        }
    }

    /// Merge `count` observations into bucket `index`, keeping the sparse
    /// list sorted.
    pub(crate) fn add_bucket(&mut self, index: u8, count: u64) {
        match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += count,
            Err(pos) => self.buckets.insert(pos, (index, count)),
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket the
    /// quantile rank falls in, clamped to the observed [`HistRec::max`] —
    /// so `quantile(q) <= max` always, and the estimate is exact for
    /// single-bucket histograms. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= target {
                return bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistRec::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact mean of the observed values (0.0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A complete captured session: spans sorted by start time, final counter
/// totals, histogram snapshots, and (for failed solves) an error message.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// All closed spans, sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRec>,
    /// `(name, total)` pairs, sorted by name; only counters that fired.
    pub counters: Vec<(String, u64)>,
    /// Histograms sorted by name; only histograms that recorded samples.
    pub hists: Vec<HistRec>,
    /// Set when the traced operation failed: the partial trace is still
    /// written so failures stay debuggable (`ssp solve --telemetry`).
    pub error: Option<String>,
}

impl Trace {
    /// Final total of counter `name` (0 if it never fired).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The captured histogram named `name`, if it recorded any samples.
    pub fn hist(&self, name: &str) -> Option<&HistRec> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Number of spans named `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Summed duration of all spans named `name`, in nanoseconds.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(SpanRec::duration_ns)
            .sum()
    }

    /// Root spans (no parent), in start order.
    pub fn roots(&self) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.parent == 0).collect()
    }

    /// Direct children of span `id`, in start order.
    pub fn children(&self, id: u64) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// Structural well-formedness: span ids unique and non-zero, parents
    /// resolvable, children contained in their parent's interval, counters
    /// unique and sorted, histograms unique/sorted with self-consistent
    /// bucket lists. Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let mut by_id: HashMap<u64, &SpanRec> = HashMap::with_capacity(self.spans.len());
        for s in &self.spans {
            if s.id == 0 {
                return Err(format!("span '{}' has reserved id 0", s.name));
            }
            if s.end_ns < s.start_ns {
                return Err(format!("span '{}' ends before it starts", s.name));
            }
            if by_id.insert(s.id, s).is_some() {
                return Err(format!("duplicate span id {}", s.id));
            }
        }
        for s in &self.spans {
            if s.parent == 0 {
                continue;
            }
            let Some(p) = by_id.get(&s.parent) else {
                return Err(format!(
                    "span '{}' (id {}) references missing parent {}",
                    s.name, s.id, s.parent
                ));
            };
            if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                return Err(format!(
                    "span '{}' (id {}) not contained in parent '{}' (id {})",
                    s.name, s.id, p.name, p.id
                ));
            }
        }
        let mut seen = HashSet::new();
        for window in self.counters.windows(2) {
            if window[0].0 > window[1].0 {
                return Err("counters not sorted by name".to_string());
            }
        }
        for (name, _) in &self.counters {
            if !seen.insert(name) {
                return Err(format!("duplicate counter '{name}'"));
            }
        }
        let mut seen_hists = HashSet::new();
        for window in self.hists.windows(2) {
            if window[0].name > window[1].name {
                return Err("histograms not sorted by name".to_string());
            }
        }
        for h in &self.hists {
            if !seen_hists.insert(&h.name) {
                return Err(format!("duplicate histogram '{}'", h.name));
            }
            if h.count == 0 {
                return Err(format!("histogram '{}' has no samples", h.name));
            }
            let mut total = 0u64;
            for window in h.buckets.windows(2) {
                if window[0].0 >= window[1].0 {
                    return Err(format!("histogram '{}' buckets not sorted", h.name));
                }
            }
            for &(i, c) in &h.buckets {
                if i as usize >= HIST_BUCKETS {
                    return Err(format!(
                        "histogram '{}' bucket index {i} out of range",
                        h.name
                    ));
                }
                if c == 0 {
                    return Err(format!("histogram '{}' has an empty bucket entry", h.name));
                }
                total += c;
            }
            if total != h.count {
                return Err(format!(
                    "histogram '{}' bucket counts sum to {total}, count says {}",
                    h.name, h.count
                ));
            }
            let last = h.buckets.last().map(|&(i, _)| i as usize).unwrap_or(0);
            if bucket_of(h.max) != last {
                return Err(format!(
                    "histogram '{}' max {} not in last bucket {last}",
                    h.name, h.max
                ));
            }
        }
        Ok(())
    }

    // -- JSONL ------------------------------------------------------------

    /// Serialize to JSON Lines (see module docs for the schema). Emission
    /// is deterministic, so `parse` followed by `to_jsonl` reproduces the
    /// input byte for byte.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"version\":{},\"spans\":{},\"counters\":{},\"hists\":{}}}",
            FORMAT_VERSION,
            self.spans.len(),
            self.counters.len(),
            self.hists.len()
        );
        for s in &self.spans {
            let _ = write!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"thread\":{},\"name\":{},\"start_ns\":{},\"end_ns\":{}",
                s.id,
                s.parent,
                s.thread,
                json_string(&s.name),
                s.start_ns,
                s.end_ns
            );
            // Omitted when zero so feature-off traces stay byte-stable.
            if s.alloc_bytes > 0 || s.alloc_count > 0 {
                let _ = write!(
                    out,
                    ",\"alloc_bytes\":{},\"alloc_count\":{}",
                    s.alloc_bytes, s.alloc_count
                );
            }
            out.push_str("}\n");
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
                json_string(name),
                value
            );
        }
        for h in &self.hists {
            let mut buckets = String::new();
            for (k, &(i, c)) in h.buckets.iter().enumerate() {
                if k > 0 {
                    buckets.push(';');
                }
                let _ = write!(buckets, "{i}:{c}");
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"sum\":{},\"max\":{},\"buckets\":{}}}",
                json_string(&h.name),
                h.count,
                h.sum,
                h.max,
                json_string(&buckets)
            );
        }
        if let Some(e) = &self.error {
            let _ = writeln!(out, "{{\"type\":\"error\",\"message\":{}}}", json_string(e));
        }
        out
    }

    /// Parse a trace previously produced by [`Trace::to_jsonl`]. Unknown
    /// line types are ignored (forward compatibility); malformed lines and
    /// meta/count mismatches are errors. Version-1 traces (no histograms,
    /// no alloc fields) parse with those fields empty.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        let mut meta: Option<(u64, u64, u64, u64)> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields =
                parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let get = |key: &str| -> Option<&JsonValue> {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            };
            let num = |key: &str| -> Result<u64, String> {
                match get(key) {
                    Some(JsonValue::Num(n)) => Ok(*n),
                    _ => Err(format!("line {}: missing number field '{key}'", lineno + 1)),
                }
            };
            let num_or = |key: &str, default: u64| -> u64 {
                match get(key) {
                    Some(JsonValue::Num(n)) => *n,
                    _ => default,
                }
            };
            let string = |key: &str| -> Result<String, String> {
                match get(key) {
                    Some(JsonValue::Str(s)) => Ok(s.clone()),
                    _ => Err(format!("line {}: missing string field '{key}'", lineno + 1)),
                }
            };
            match get("type") {
                Some(JsonValue::Str(t)) if t == "meta" => {
                    meta = Some((
                        num("version")?,
                        num("spans")?,
                        num("counters")?,
                        num_or("hists", 0),
                    ));
                }
                Some(JsonValue::Str(t)) if t == "span" => {
                    trace.spans.push(SpanRec {
                        id: num("id")?,
                        parent: num("parent")?,
                        thread: num("thread")?,
                        name: string("name")?,
                        start_ns: num("start_ns")?,
                        end_ns: num("end_ns")?,
                        alloc_bytes: num_or("alloc_bytes", 0),
                        alloc_count: num_or("alloc_count", 0),
                    });
                }
                Some(JsonValue::Str(t)) if t == "counter" => {
                    trace.counters.push((string("name")?, num("value")?));
                }
                Some(JsonValue::Str(t)) if t == "hist" => {
                    let mut rec = HistRec {
                        name: string("name")?,
                        count: num("count")?,
                        sum: num("sum")?,
                        max: num("max")?,
                        buckets: Vec::new(),
                    };
                    let spec = string("buckets")?;
                    for part in spec.split(';').filter(|p| !p.is_empty()) {
                        let (i, c) = part.split_once(':').ok_or_else(|| {
                            format!("line {}: bad bucket entry '{part}'", lineno + 1)
                        })?;
                        let i: u8 = i
                            .parse()
                            .map_err(|_| format!("line {}: bad bucket index '{i}'", lineno + 1))?;
                        let c: u64 = c
                            .parse()
                            .map_err(|_| format!("line {}: bad bucket count '{c}'", lineno + 1))?;
                        rec.buckets.push((i, c));
                    }
                    trace.hists.push(rec);
                }
                Some(JsonValue::Str(t)) if t == "error" => {
                    trace.error = Some(string("message")?);
                }
                Some(JsonValue::Str(_)) => {} // future line types: skip
                _ => return Err(format!("line {}: missing 'type' field", lineno + 1)),
            }
        }
        if let Some((version, spans, counters, hists)) = meta {
            if version > FORMAT_VERSION {
                return Err(format!("unsupported trace version {version}"));
            }
            if spans != trace.spans.len() as u64 {
                return Err(format!(
                    "meta declares {spans} spans, found {}",
                    trace.spans.len()
                ));
            }
            if counters != trace.counters.len() as u64 {
                return Err(format!(
                    "meta declares {counters} counters, found {}",
                    trace.counters.len()
                ));
            }
            if hists != trace.hists.len() as u64 {
                return Err(format!(
                    "meta declares {hists} histograms, found {}",
                    trace.hists.len()
                ));
            }
        } else if !trace.spans.is_empty() || !trace.counters.is_empty() {
            return Err("trace has records but no meta line".to_string());
        }
        Ok(trace)
    }

    // -- Phase table ------------------------------------------------------

    /// Render a human-readable phase table: the span tree with sibling
    /// spans of the same name aggregated (call count + total time), then
    /// the counter totals. This is what `solve --timings` prints.
    pub fn phase_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<44} {:>12} {:>8}", "phase", "total", "calls");
        self.render_level(&mut out, &[0], 0);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<42} {value:>12}");
            }
        }
        out
    }

    fn render_level(&self, out: &mut String, parent_ids: &[u64], depth: usize) {
        for (name, total_ns, calls, ids) in self.level_groups(parent_ids) {
            let label = format!("{:indent$}{name}", "", indent = depth * 2);
            let _ = writeln!(out, "{label:<44} {:>12} {calls:>8}", format_ns(total_ns));
            self.render_level(out, &ids, depth + 1);
        }
    }

    /// Aggregate the spans whose parent is in `parent_ids` by name,
    /// preserving first-seen order: `(name, total_ns, calls, span ids)`.
    fn level_groups(&self, parent_ids: &[u64]) -> Vec<(&str, u64, usize, Vec<u64>)> {
        let parents: HashSet<u64> = parent_ids.iter().copied().collect();
        let mut order: Vec<&str> = Vec::new();
        let mut groups: BTreeMap<&str, (u64, usize, Vec<u64>)> = BTreeMap::new();
        for s in &self.spans {
            if !parents.contains(&s.parent) {
                continue;
            }
            let entry = groups.entry(&s.name).or_insert_with(|| {
                order.push(&s.name);
                (0, 0, Vec::new())
            });
            entry.0 += s.duration_ns();
            entry.1 += 1;
            entry.2.push(s.id);
        }
        order
            .into_iter()
            .map(|name| {
                let (total, calls, ids) = groups.remove(name).expect("grouped above");
                (name, total, calls, ids)
            })
            .collect()
    }

    // -- Analysis renderers (`ssp trace ...`) -----------------------------

    /// Full trace report: the span tree with *total* and *self* time per
    /// aggregated phase (self = total minus direct children), allocation
    /// columns when the trace carries `probe-alloc` data, then counter
    /// totals and a histogram quantile table. This is what
    /// `ssp trace report` prints.
    pub fn report(&self) -> String {
        let show_alloc = self.spans.iter().any(|s| s.alloc_count > 0);
        let mut out = String::new();
        if let Some(e) = &self.error {
            let _ = writeln!(out, "ERROR: {e}");
        }
        let _ = write!(
            out,
            "{:<40} {:>12} {:>12} {:>7}",
            "phase", "total", "self", "calls"
        );
        if show_alloc {
            let _ = write!(out, " {:>12} {:>9}", "alloc", "allocs");
        }
        out.push('\n');
        self.render_report_level(&mut out, &[0], 0, show_alloc);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<42} {value:>12}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "histograms:\n  {:<30} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10}",
                "name", "count", "p50", "p90", "p99", "max", "mean"
            );
            for h in &self.hists {
                let _ = writeln!(
                    out,
                    "  {:<30} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10.1}",
                    h.name,
                    h.count,
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max,
                    h.mean()
                );
            }
        }
        out
    }

    fn render_report_level(
        &self,
        out: &mut String,
        parent_ids: &[u64],
        depth: usize,
        show_alloc: bool,
    ) {
        for (name, total_ns, calls, ids) in self.level_groups(parent_ids) {
            let id_set: HashSet<u64> = ids.iter().copied().collect();
            let child_ns: u64 = self
                .spans
                .iter()
                .filter(|s| id_set.contains(&s.parent))
                .map(SpanRec::duration_ns)
                .sum();
            let self_ns = total_ns.saturating_sub(child_ns);
            let label = format!("{:indent$}{name}", "", indent = depth * 2);
            let _ = write!(
                out,
                "{label:<40} {:>12} {:>12} {calls:>7}",
                format_ns(total_ns),
                format_ns(self_ns)
            );
            if show_alloc {
                let (bytes, count) = self
                    .spans
                    .iter()
                    .filter(|s| id_set.contains(&s.id))
                    .fold((0u64, 0u64), |(b, c), s| {
                        (b + s.alloc_bytes, c + s.alloc_count)
                    });
                let _ = write!(out, " {:>12} {count:>9}", format_bytes(bytes));
            }
            out.push('\n');
            self.render_report_level(out, &ids, depth + 1, show_alloc);
        }
    }

    /// Flamegraph-compatible folded stacks: one line per distinct span
    /// stack, `root;child;leaf <self-time-ns>`, aggregated and sorted by
    /// stack. Feed to `flamegraph.pl` / `inferno-flamegraph` (the count
    /// unit is nanoseconds of self time). This is what `ssp trace fold`
    /// prints.
    pub fn folded(&self) -> String {
        let by_id: HashMap<u64, &SpanRec> = self.spans.iter().map(|s| (s.id, s)).collect();
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for s in &self.spans {
            if s.parent != 0 {
                *child_ns.entry(s.parent).or_insert(0) += s.duration_ns();
            }
        }
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            let self_ns = s
                .duration_ns()
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            let mut frames: Vec<&str> = vec![&s.name];
            let mut cursor = s.parent;
            while cursor != 0 {
                let Some(p) = by_id.get(&cursor) else { break };
                frames.push(&p.name);
                cursor = p.parent;
            }
            frames.reverse();
            let stack = frames
                .iter()
                // Frame separators must survive the folded format.
                .map(|f| f.replace([';', ' '], "_"))
                .collect::<Vec<_>>()
                .join(";");
            *stacks.entry(stack).or_insert(0) += self_ns;
        }
        let mut out = String::new();
        for (stack, ns) in stacks {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }
}

/// Compare two traces: per-span-name total time, per-counter totals, and
/// per-histogram count/sum/p50/p99/max, with relative deltas. Rows whose
/// relative change reaches `threshold` (a fraction, e.g. `0.10`) are
/// flagged with `!`. This is what `ssp trace diff` prints.
pub fn diff(old: &Trace, new: &Trace, threshold: f64) -> String {
    let mut out = String::new();
    let agg = |t: &Trace| -> BTreeMap<String, (u64, usize)> {
        let mut m: BTreeMap<String, (u64, usize)> = BTreeMap::new();
        for s in &t.spans {
            let e = m.entry(s.name.clone()).or_insert((0, 0));
            e.0 += s.duration_ns();
            e.1 += 1;
        }
        m
    };
    let old_spans = agg(old);
    let new_spans = agg(new);
    let _ = writeln!(
        out,
        "{:<36} {:>12} {:>12} {:>9} {:>13}",
        "span", "old", "new", "delta", "calls"
    );
    let names: Vec<&String> = old_spans.keys().chain(new_spans.keys()).collect();
    let mut seen = HashSet::new();
    for name in names {
        if !seen.insert(name.clone()) {
            continue;
        }
        let (o_ns, o_calls) = old_spans.get(name).copied().unwrap_or((0, 0));
        let (n_ns, n_calls) = new_spans.get(name).copied().unwrap_or((0, 0));
        let _ = writeln!(
            out,
            "{name:<36} {:>12} {:>12} {:>9} {:>13}",
            format_ns(o_ns),
            format_ns(n_ns),
            delta_label(o_ns as f64, n_ns as f64, threshold),
            format!("{o_calls}\u{2192}{n_calls}")
        );
    }
    let old_ctr: BTreeMap<&String, u64> = old.counters.iter().map(|(n, v)| (n, *v)).collect();
    let new_ctr: BTreeMap<&String, u64> = new.counters.iter().map(|(n, v)| (n, *v)).collect();
    if !old_ctr.is_empty() || !new_ctr.is_empty() {
        let _ = writeln!(
            out,
            "counters:\n  {:<34} {:>12} {:>12} {:>9}",
            "name", "old", "new", "delta"
        );
        let mut seen = HashSet::new();
        for name in old_ctr.keys().chain(new_ctr.keys()) {
            if !seen.insert((*name).clone()) {
                continue;
            }
            let o = old_ctr.get(name).copied().unwrap_or(0);
            let n = new_ctr.get(name).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "  {name:<34} {o:>12} {n:>12} {:>9}",
                delta_label(o as f64, n as f64, threshold)
            );
        }
    }
    if !old.hists.is_empty() || !new.hists.is_empty() {
        let _ = writeln!(
            out,
            "histograms:\n  {:<28} {:<5} {:>12} {:>12} {:>9}",
            "name", "stat", "old", "new", "delta"
        );
        let mut seen = HashSet::new();
        for h in old.hists.iter().chain(new.hists.iter()) {
            if !seen.insert(h.name.clone()) {
                continue;
            }
            // Five stats per histogram, so an attachment separates "more
            // samples" (count/sum) from "the distribution moved"
            // (p50/p99/max). A histogram missing on one side reads 0
            // everywhere, which delta_label renders as new/gone.
            let stats = |rec: Option<&HistRec>| -> [u64; 5] {
                rec.map_or([0; 5], |r| [r.count, r.sum, r.p50(), r.p99(), r.max])
            };
            let o = stats(old.hist(&h.name));
            let n = stats(new.hist(&h.name));
            for (k, stat) in ["count", "sum", "p50", "p99", "max"]
                .into_iter()
                .enumerate()
            {
                let name = if k == 0 { h.name.as_str() } else { "" };
                let _ = writeln!(
                    out,
                    "  {name:<28} {stat:<5} {:>12} {:>12} {:>9}",
                    o[k],
                    n[k],
                    delta_label(o[k] as f64, n[k] as f64, threshold)
                );
            }
        }
    }
    out
}

/// `+x.x%` relative change with a `!` flag at or past `threshold`;
/// `new`/`gone` when one side is missing.
fn delta_label(old: f64, new: f64, threshold: f64) -> String {
    if old == 0.0 && new == 0.0 {
        "=".to_string()
    } else if old == 0.0 {
        "new".to_string()
    } else if new == 0.0 {
        "gone".to_string()
    } else {
        let delta = new / old - 1.0;
        let flag = if delta.abs() >= threshold { " !" } else { "" };
        format!("{:+.1}%{flag}", delta * 100.0)
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn format_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

// ---------------------------------------------------------------------------
// Minimal flat-JSON support (no external dependencies)
// ---------------------------------------------------------------------------

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

enum JsonValue {
    Str(String),
    Num(u64),
}

/// Parse one flat JSON object (`{"k":v,...}` with string or unsigned
/// integer values) into key/value pairs. Deliberately minimal: the trace
/// format never nests.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = chars.peek().copied() {
                    if let Some(d) = c.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(d as u64))
                            .ok_or_else(|| "number overflows u64".to_string())?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Num(n)
            }
            other => return Err(format!("unexpected value start: {other:?}")),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing content starting at {c:?}"));
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t')) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| "bad \\u escape".to_string())?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).ok_or_else(|| "bad \\u codepoint".to_string())?);
                }
                other => return Err(format!("bad escape: {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            spans: vec![
                SpanRec {
                    id: 1,
                    parent: 0,
                    thread: 1,
                    name: "solve".into(),
                    start_ns: 0,
                    end_ns: 1_000_000,
                    ..SpanRec::default()
                },
                SpanRec {
                    id: 2,
                    parent: 1,
                    thread: 1,
                    name: "lower_bound".into(),
                    start_ns: 10,
                    end_ns: 600_000,
                    ..SpanRec::default()
                },
                SpanRec {
                    id: 3,
                    parent: 1,
                    thread: 1,
                    name: "rr".into(),
                    start_ns: 600_100,
                    end_ns: 999_000,
                    ..SpanRec::default()
                },
            ],
            counters: vec![
                ("bal.flow_calls".into(), 17),
                ("maxflow.dinic.runs".into(), 18),
            ],
            hists: vec![HistRec {
                name: "bal.bisect.probes".into(),
                count: 4,
                sum: 90,
                max: 31,
                buckets: vec![(4, 1), (5, 3)],
            }],
            error: None,
        }
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let trace = sample();
        let text = trace.to_jsonl();
        let parsed = Trace::parse(&text).expect("parse back");
        assert_eq!(parsed, trace);
        parsed.validate().expect("well-formed");
    }

    #[test]
    fn jsonl_round_trip_is_byte_identical() {
        // Including alloc fields, histograms, and the error line.
        let mut trace = sample();
        trace.spans[1].alloc_bytes = 4096;
        trace.spans[1].alloc_count = 3;
        trace.error = Some("boom: \"quoted\"".into());
        let text = trace.to_jsonl();
        let parsed = Trace::parse(&text).expect("parse back");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_jsonl(), text, "re-emit must be byte-identical");
    }

    #[test]
    fn version1_traces_still_parse() {
        let text = "\
{\"type\":\"meta\",\"version\":1,\"spans\":1,\"counters\":1}
{\"type\":\"span\",\"id\":1,\"parent\":0,\"thread\":1,\"name\":\"solve\",\"start_ns\":0,\"end_ns\":5}
{\"type\":\"counter\",\"name\":\"c\",\"value\":2}
";
        let trace = Trace::parse(text).expect("v1 parses");
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].alloc_bytes, 0);
        assert!(trace.hists.is_empty());
        assert!(trace.error.is_none());
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut trace = sample();
        trace.spans[0].name = "weird \"name\"\\with\n\tescapes".into();
        let parsed = Trace::parse(&trace.to_jsonl()).unwrap();
        assert_eq!(parsed.spans[0].name, trace.spans[0].name);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Trace::parse("not json").is_err());
        assert!(
            Trace::parse("{\"type\":\"span\",\"id\":1}").is_err(),
            "missing fields"
        );
        assert!(
            Trace::parse("{\"type\":\"span\"").is_err(),
            "unterminated object"
        );
        let trace = sample();
        let mut text = trace.to_jsonl();
        text.push_str("{\"type\":\"span\",\"id\":9,\"parent\":0,\"thread\":1,\"name\":\"x\",\"start_ns\":0,\"end_ns\":1}\n");
        assert!(Trace::parse(&text).is_err(), "meta span count mismatch");
        let mut text = trace.to_jsonl();
        text.push_str(
            "{\"type\":\"hist\",\"name\":\"h\",\"count\":1,\"sum\":1,\"max\":1,\"buckets\":\"1\"}\n",
        );
        assert!(Trace::parse(&text).is_err(), "bad bucket entry");
    }

    #[test]
    fn parse_ignores_unknown_line_types() {
        let trace = sample();
        let mut text = trace.to_jsonl();
        text.push_str("{\"type\":\"future_thing\",\"x\":1}\n");
        assert_eq!(Trace::parse(&text).unwrap(), trace);
    }

    #[test]
    fn bucket_math_is_consistent() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b), "{v} above its bucket upper bound");
            if b > 0 {
                assert!(v > bucket_upper(b - 1), "{v} fits a smaller bucket");
            }
        }
    }

    #[test]
    fn quantiles_are_coherent() {
        // 89 small values, 9 medium, 2 large: p50 small, p99 large.
        let mut h = HistRec::new("q");
        h.count = 100;
        h.max = 5000;
        h.sum = 89 * 3 + 9 * 200 + 2 * 5000;
        h.buckets = vec![(2, 89), (8, 9), (13, 2)];
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p90(), 255);
        assert_eq!(h.p99(), 5000, "p99 clamps to observed max");
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99() && h.p99() <= h.max);
        assert_eq!(HistRec::new("empty").quantile(0.5), 0);
    }

    #[test]
    fn validate_catches_structural_problems() {
        let mut bad = sample();
        bad.spans[1].parent = 99;
        assert!(bad.validate().is_err(), "missing parent");

        let mut bad = sample();
        bad.spans[2].id = 1;
        assert!(bad.validate().is_err(), "duplicate id");

        let mut bad = sample();
        bad.spans[1].end_ns = 2_000_000; // escapes parent interval
        assert!(bad.validate().is_err(), "containment");

        let mut bad = sample();
        bad.hists[0].count = 5; // buckets sum to 4
        assert!(bad.validate().is_err(), "bucket sum mismatch");

        let mut bad = sample();
        bad.hists[0].max = 2; // lands in bucket 2, last bucket is 5
        assert!(bad.validate().is_err(), "max outside last bucket");

        sample().validate().expect("sample is valid");
    }

    #[test]
    fn phase_table_lists_phases_and_counters() {
        let table = sample().phase_table();
        assert!(table.contains("solve"));
        assert!(table.contains("  lower_bound"), "children indented");
        assert!(table.contains("bal.flow_calls"));
        assert!(table.contains("1.00 ms"));
    }

    #[test]
    fn report_shows_self_time_and_histograms() {
        let report = sample().report();
        // solve: total 1.00 ms, children cover ~998.9 us → self ~1.1 us.
        assert!(report.contains("solve"));
        assert!(report.contains("self"));
        assert!(report.contains("1.1 us"), "self time of solve:\n{report}");
        assert!(report.contains("bal.bisect.probes"));
        let mut failed = sample();
        failed.error = Some("it broke".into());
        assert!(failed.report().starts_with("ERROR: it broke"));
    }

    #[test]
    fn folded_output_is_golden() {
        let trace = sample();
        // solve self = 1_000_000 - 599_990 - 398_900 = 1_110 ns.
        assert_eq!(
            trace.folded(),
            "solve 1110\nsolve;lower_bound 599990\nsolve;rr 398900\n"
        );
    }

    #[test]
    fn diff_flags_threshold_crossings() {
        let old = sample();
        let mut new = sample();
        new.spans[2].end_ns = 999_000 + 300_000; // rr ~75% slower
        new.spans[0].end_ns = 2_000_000; // keep containment
        let text = diff(&old, &new, 0.10);
        let rr_line = text.lines().find(|l| l.starts_with("rr")).unwrap();
        assert!(rr_line.contains('!'), "rr must be flagged:\n{text}");
        let lb_line = text.lines().find(|l| l.starts_with("lower_bound")).unwrap();
        assert!(!lb_line.contains('!'), "lower_bound unchanged:\n{text}");
        assert!(text.contains("bal.flow_calls"));
        assert!(text.contains("bal.bisect.probes"));
    }

    #[test]
    fn diff_reports_per_histogram_stats() {
        let old = sample();
        let mut new = sample();
        // Same distribution shape, twice the samples: count and sum must
        // flag, p50/p99/max must not.
        new.hists[0].count = 8;
        new.hists[0].sum = 180;
        new.hists[0].buckets = vec![(4, 2), (5, 6)];
        new.hists.push(HistRec {
            name: "yds.peel_width".into(),
            count: 2,
            sum: 6,
            max: 4,
            buckets: vec![(3, 2)],
        });
        let text = diff(&old, &new, 0.10);
        let hist_section = text.split("histograms:").nth(1).unwrap();
        let stat_line = |stat: &str, after: &str| {
            hist_section
                .split(after)
                .nth(1)
                .unwrap()
                .lines()
                .find(|l| l.split_whitespace().next() == Some(stat))
                .unwrap_or_else(|| panic!("no {stat} row after {after}:\n{text}"))
                .to_string()
        };
        let count = hist_section
            .lines()
            .find(|l| l.trim_start().starts_with("bal.bisect.probes"))
            .unwrap();
        assert!(
            count.contains("count") && count.contains('!'),
            "doubled count must flag:\n{text}"
        );
        assert!(stat_line("sum", "bal.bisect.probes").contains('!'));
        for stat in ["p50", "p99", "max"] {
            assert!(
                !stat_line(stat, "bal.bisect.probes").contains('!'),
                "{stat} unchanged, must not flag:\n{text}"
            );
        }
        // A histogram present only on the new side reads `new` on count.
        assert!(
            hist_section
                .lines()
                .find(|l| l.trim_start().starts_with("yds.peel_width"))
                .unwrap()
                .contains("new"),
            "one-sided histogram:\n{text}"
        );
    }
}
