//! # ssp-probe — zero-dependency solver observability
//!
//! The solver stack (max-flow engines, BAL peeling, assignment local search)
//! is instrumented with two kinds of probes:
//!
//! * **Spans** — hierarchical phase timers. [`span("bal")`](span) returns a
//!   guard; the time between creation and drop is recorded together with the
//!   enclosing span (tracked per thread), so a solve yields a tree of phases.
//! * **Counters** — named monotonic `u64`s declared at the probe site with
//!   the [`counter!`] macro. Hot loops accumulate into a local variable and
//!   flush once per call, so the per-event cost is an ordinary register
//!   increment.
//!
//! Both are **near-zero overhead when disabled**: every probe site first
//! performs a relaxed load of one global [`AtomicBool`] and returns
//! immediately when no telemetry session is active. This is the shipping
//! default; EXP-17 measures the residual cost on the BAL and push-relabel
//! kernels at well under the 2% acceptance threshold.
//!
//! ## Sessions
//!
//! Recording is scoped by a [`Session`]: [`Session::begin`] claims the
//! (process-global) probe state, zeroes all counters, and enables the
//! probes; [`Session::end`] disables them and returns the captured
//! [`Trace`]. Only one session can be active at a time — `begin` returns
//! `None` if another session holds the probes, so library code can degrade
//! gracefully instead of blocking.
//!
//! ```
//! let session = ssp_probe::Session::begin().expect("no other session");
//! {
//!     let _solve = ssp_probe::span("solve");
//!     let _inner = ssp_probe::span("inner");
//!     ssp_probe::counter!("demo.events", 3);
//! }
//! let trace = session.end();
//! assert_eq!(trace.counter("demo.events"), 3);
//! assert!(trace.to_jsonl().contains("\"name\":\"inner\""));
//! ```
//!
//! The captured [`Trace`] serializes to JSONL ([`Trace::to_jsonl`]), parses
//! back ([`Trace::parse`]), renders a human-readable phase table
//! ([`Trace::phase_table`]) and self-checks its structure
//! ([`Trace::validate`]). See `docs/OBSERVABILITY.md` for the schema and an
//! annotated example.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

mod trace;

pub use trace::{SpanRec, Trace};

/// Fast-path gate. Relaxed loads of this flag are the only cost probes pay
/// when no session is active.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Exclusive claim on the probe state; distinct from `ENABLED` so that
/// `Session::begin` can reset buffers *before* events start flowing.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Bumped on every session begin/end; span guards remember the generation
/// they were created under and drop their record silently if the session
/// changed underneath them (e.g. a guard held across `Session::end`).
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Span ids are unique within a session; 0 means "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread labels for the trace (1, 2, 3, … in first-probe order).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost open span on this thread (0 = none): the parent for new spans.
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    /// Cached dense label for this thread (0 = not yet assigned).
    static THREAD_LABEL: Cell<u64> = const { Cell::new(0) };
}

struct RawSpan {
    id: u64,
    parent: u64,
    thread: u64,
    name: &'static str,
    start: Instant,
    end: Instant,
}

struct Global {
    spans: Mutex<Vec<RawSpan>>,
    counters: Mutex<Vec<&'static CounterCell>>,
    epoch: Mutex<Option<Instant>>,
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(|| Global {
        spans: Mutex::new(Vec::new()),
        counters: Mutex::new(Vec::new()),
        epoch: Mutex::new(None),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Probe state is plain data; a panic while holding the lock cannot leave
    // it logically corrupt, so poisoning is not meaningful here.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn thread_label() -> u64 {
    THREAD_LABEL.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Are probes currently recording? Exposed so callers can skip building
/// expensive probe-only arguments.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Current in-session total of counter `name`, summed across macro sites.
/// Returns 0 when no session is active (or the counter has not fired yet).
/// Lets callers measure counter *deltas* around a region without ending the
/// session — e.g. per-repetition solver work inside a larger experiment.
pub fn counter_value(name: &str) -> u64 {
    if !enabled() {
        return 0;
    }
    lock(&global().counters)
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value.load(Ordering::Relaxed))
        .sum()
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Storage behind one [`counter!`] site: a `static` cell created by the
/// macro, registered with the session registry on first use so that
/// [`Session::begin`] can zero it and [`Session::end`] can snapshot it.
pub struct CounterCell {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl CounterCell {
    /// Create a cell. Intended for use by the [`counter!`] macro; the cell
    /// must be a `static` so registration by reference is sound.
    pub const fn new(name: &'static str) -> Self {
        CounterCell {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` to the counter if a session is recording; a relaxed load and
    /// a branch otherwise.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        self.record(n);
    }

    #[cold]
    fn register(&'static self) {
        let mut list = lock(&global().counters);
        // Double-check under the lock: another thread may have registered
        // this cell between our relaxed check and acquiring the lock.
        if !self.registered.load(Ordering::Relaxed) {
            list.push(self);
            self.registered.store(true, Ordering::Release);
        }
    }

    fn record(&'static self, n: u64) {
        if !self.registered.load(Ordering::Acquire) {
            self.register();
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }
}

/// Bump a named monotonic counter: `counter!("bal.flow_calls")` adds 1,
/// `counter!("maxflow.pr.pushes", pushes)` adds an accumulated total. The
/// name must be a string literal (it keys the counter in the trace). When no
/// session is active this compiles to a relaxed atomic load and a branch.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $n:expr) => {{
        static CELL: $crate::CounterCell = $crate::CounterCell::new($name);
        CELL.add($n as u64);
    }};
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII timer for one phase. Created by [`span`]; the phase ends when the
/// guard drops. Guards nest: spans opened while this guard is alive (on the
/// same thread) become its children in the trace.
#[must_use = "the span ends when the guard drops; bind it with `let _g = ...`"]
pub struct SpanGuard {
    /// `None` when probes were disabled at creation (the common case).
    rec: Option<(u64, u64, &'static str, Instant, u64)>, // id, parent, name, start, generation
}

/// Open a phase span named `name`. Near-free when no session is active.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { rec: None };
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_PARENT.with(|c| {
        let p = c.get();
        c.set(id);
        p
    });
    SpanGuard {
        rec: Some((id, parent, name, Instant::now(), generation)),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((id, parent, name, start, generation)) = self.rec.take() else {
            return;
        };
        CURRENT_PARENT.with(|c| c.set(parent));
        // Discard the record if the session ended (or a new one began)
        // while the guard was open — its epoch no longer matches.
        if ENABLED.load(Ordering::Relaxed) && GENERATION.load(Ordering::Relaxed) == generation {
            let end = Instant::now();
            lock(&global().spans).push(RawSpan {
                id,
                parent,
                thread: thread_label(),
                name,
                start,
                end,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// Exclusive recording session. See the crate docs for the lifecycle.
pub struct Session {
    finished: bool,
}

impl Session {
    /// Claim the probes and start recording. Returns `None` if another
    /// session is already active (callers should degrade to an untraced
    /// run, not block).
    pub fn begin() -> Option<Session> {
        if ACTIVE
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        let g = global();
        lock(&g.spans).clear();
        for cell in lock(&g.counters).iter() {
            cell.value.store(0, Ordering::Relaxed);
        }
        *lock(&g.epoch) = Some(Instant::now());
        NEXT_SPAN_ID.store(1, Ordering::Relaxed);
        GENERATION.fetch_add(1, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Release);
        Some(Session { finished: false })
    }

    /// Stop recording and return the captured trace. Spans still open on
    /// any thread are dropped silently (their guards notice the generation
    /// change); counters keep their totals up to this instant.
    pub fn end(mut self) -> Trace {
        self.finished = true;
        finish_session()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.finished {
            let _ = finish_session();
        }
    }
}

fn finish_session() -> Trace {
    ENABLED.store(false, Ordering::Release);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    let g = global();
    let epoch = lock(&g.epoch).take().unwrap_or_else(Instant::now);
    let mut raw = std::mem::take(&mut *lock(&g.spans));
    raw.sort_by_key(|s| (s.start, s.id));
    let spans = raw
        .into_iter()
        .map(|s| SpanRec {
            id: s.id,
            parent: s.parent,
            thread: s.thread,
            name: s.name.to_string(),
            start_ns: s.start.saturating_duration_since(epoch).as_nanos() as u64,
            end_ns: s.end.saturating_duration_since(epoch).as_nanos() as u64,
        })
        .collect();
    // Distinct macro sites may share a counter name; merge them.
    let mut totals: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for c in lock(&g.counters).iter() {
        let v = c.value.load(Ordering::Relaxed);
        if v > 0 {
            *totals.entry(c.name).or_insert(0) += v;
        }
    }
    let counters: Vec<(String, u64)> = totals
        .into_iter()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    ACTIVE.store(false, Ordering::Release);
    Trace { spans, counters }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sessions are process-global; tests that open one must serialize.
    pub(crate) fn session_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_are_noops() {
        let _l = session_lock();
        counter!("test.noop", 5);
        let _g = span("test.noop.span");
        drop(_g);
        let session = Session::begin().unwrap();
        let trace = session.end();
        assert_eq!(trace.counter("test.noop"), 0);
        assert!(!trace.spans.iter().any(|s| s.name == "test.noop.span"));
    }

    #[test]
    fn session_is_exclusive() {
        let _l = session_lock();
        let first = Session::begin().unwrap();
        assert!(Session::begin().is_none(), "second session must be refused");
        drop(first); // abandoned without end(): Drop must release the claim
        let second = Session::begin().unwrap();
        second.end();
    }

    #[test]
    fn spans_nest_and_counters_total() {
        let _l = session_lock();
        let session = Session::begin().unwrap();
        {
            let _outer = span("outer");
            counter!("test.nest.events", 2);
            {
                let _inner = span("inner");
                counter!("test.nest.events", 3);
            }
            let _sibling = span("sibling");
        }
        let trace = session.end();
        trace.validate().expect("trace must be well-formed");
        assert_eq!(trace.counter("test.nest.events"), 5);
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        let sibling = trace.spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn counters_reset_between_sessions() {
        let _l = session_lock();
        let s1 = Session::begin().unwrap();
        counter!("test.reset", 7);
        assert_eq!(s1.end().counter("test.reset"), 7);
        let s2 = Session::begin().unwrap();
        counter!("test.reset", 1);
        assert_eq!(s2.end().counter("test.reset"), 1);
    }

    #[test]
    fn cross_thread_spans_record() {
        let _l = session_lock();
        let session = Session::begin().unwrap();
        {
            let _main = span("main_phase");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _w = span("worker");
                        counter!("test.threads.work", 1);
                    });
                }
            });
        }
        let trace = session.end();
        trace.validate().expect("well-formed");
        let workers: Vec<_> = trace.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        // Worker spans start on fresh threads: they are roots, not children
        // of `main_phase` (parent tracking is per-thread).
        assert!(workers.iter().all(|w| w.parent == 0));
        assert_eq!(trace.counter("test.threads.work"), 2);
    }

    #[test]
    fn guard_held_across_end_is_dropped_silently() {
        let _l = session_lock();
        let session = Session::begin().unwrap();
        let straggler = span("straggler");
        let trace = session.end();
        drop(straggler); // must not record into a dead (or future) session
        assert!(trace.spans.iter().all(|s| s.name != "straggler"));
        let next = Session::begin().unwrap();
        let trace2 = next.end();
        assert!(trace2.spans.is_empty());
    }
}
