//! # ssp-probe — zero-dependency solver observability
//!
//! The solver stack (max-flow engines, BAL peeling, assignment local search)
//! is instrumented with three kinds of probes:
//!
//! * **Spans** — hierarchical phase timers. [`span("bal")`](span) returns a
//!   guard; the time between creation and drop is recorded together with the
//!   enclosing span (tracked per thread), so a solve yields a tree of phases.
//! * **Counters** — named monotonic `u64`s declared at the probe site with
//!   the [`counter!`] macro. Hot loops accumulate into a local variable and
//!   flush once per call, so the per-event cost is an ordinary register
//!   increment.
//! * **Histograms** — named log2-bucketed distributions declared with the
//!   [`histogram!`] macro (65 fixed buckets: value 0, then one bucket per
//!   power of two). Sites can batch (`histogram!(name, value, count)`), and
//!   quantiles (p50/p90/p99) are derived on read-back from the captured
//!   [`HistRec`].
//!
//! All of them are **near-zero overhead when disabled**: every probe site
//! first performs a relaxed load of one global [`AtomicBool`] and returns
//! immediately when no telemetry session is active. This is the shipping
//! default; EXP-17 measures the residual cost on the BAL and push-relabel
//! kernels at well under the 2% acceptance threshold.
//!
//! ## Allocation attribution (`probe-alloc`)
//!
//! With the off-by-default `probe-alloc` feature, the crate installs a
//! counting global allocator that charges every allocation to the innermost
//! open span on the allocating thread. Each captured span then carries
//! `alloc_bytes`/`alloc_count` *self* totals (allocations made by the phase
//! itself, not by its children), and the session totals surface as the
//! `alloc.bytes`/`alloc.count` counters. The feature adds a thread-local
//! lookup to every allocation in the process, so it is for profiling runs
//! only — see `docs/OBSERVABILITY.md` for the overhead caveats.
//!
//! ## Cross-thread span trees
//!
//! Parent tracking is per-thread, so a span opened on a fresh worker thread
//! is a disconnected root by default. Workers that logically belong to a
//! phase on the spawning thread can adopt it explicitly:
//! [`Session::parent_handle`] captures the caller's innermost span, and
//! [`Session::adopt_parent`] installs it as the worker's parent for the
//! lifetime of the returned guard. The caller must keep its span open until
//! the workers finish (scoped threads à la `par_map` guarantee this).
//!
//! ## Sessions
//!
//! Recording is scoped by a [`Session`]: [`Session::begin`] claims the
//! (process-global) probe state, zeroes all counters, and enables the
//! probes; [`Session::end`] disables them and returns the captured
//! [`Trace`]. Only one session can be active at a time — `begin` returns
//! `None` if another session holds the probes, so library code can degrade
//! gracefully instead of blocking.
//!
//! ```
//! let session = ssp_probe::Session::begin().expect("no other session");
//! {
//!     let _solve = ssp_probe::span("solve");
//!     let _inner = ssp_probe::span("inner");
//!     ssp_probe::counter!("demo.events", 3);
//! }
//! let trace = session.end();
//! assert_eq!(trace.counter("demo.events"), 3);
//! assert!(trace.to_jsonl().contains("\"name\":\"inner\""));
//! ```
//!
//! The captured [`Trace`] serializes to JSONL ([`Trace::to_jsonl`]), parses
//! back ([`Trace::parse`]), renders a human-readable phase table
//! ([`Trace::phase_table`]) and self-checks its structure
//! ([`Trace::validate`]). See `docs/OBSERVABILITY.md` for the schema and an
//! annotated example.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

#[cfg(feature = "probe-alloc")]
mod alloc;
pub mod calib;
mod trace;

pub use trace::{bucket_of, bucket_upper, diff, HistRec, SpanRec, Trace, HIST_BUCKETS};

/// Fast-path gate. Relaxed loads of this flag are the only cost probes pay
/// when no session is active.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Exclusive claim on the probe state; distinct from `ENABLED` so that
/// `Session::begin` can reset buffers *before* events start flowing.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Bumped on every session begin/end; span guards remember the generation
/// they were created under and drop their record silently if the session
/// changed underneath them (e.g. a guard held across `Session::end`).
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Span ids are unique within a session; 0 means "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread labels for the trace (1, 2, 3, … in first-probe order).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost open span on this thread (0 = none): the parent for new spans.
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    /// Cached dense label for this thread (0 = not yet assigned).
    static THREAD_LABEL: Cell<u64> = const { Cell::new(0) };
}

struct RawSpan {
    id: u64,
    parent: u64,
    thread: u64,
    name: &'static str,
    start: Instant,
    end: Instant,
    alloc_bytes: u64,
    alloc_count: u64,
}

struct Global {
    spans: Mutex<Vec<RawSpan>>,
    counters: Mutex<Vec<&'static CounterCell>>,
    hists: Mutex<Vec<&'static HistogramCell>>,
    epoch: Mutex<Option<Instant>>,
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(|| Global {
        spans: Mutex::new(Vec::new()),
        counters: Mutex::new(Vec::new()),
        hists: Mutex::new(Vec::new()),
        epoch: Mutex::new(None),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Probe state is plain data; a panic while holding the lock cannot leave
    // it logically corrupt, so poisoning is not meaningful here.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn thread_label() -> u64 {
    THREAD_LABEL.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Are probes currently recording? Exposed so callers can skip building
/// expensive probe-only arguments.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Current in-session total of counter `name`, summed across macro sites.
/// Returns 0 when no session is active (or the counter has not fired yet).
/// Lets callers measure counter *deltas* around a region without ending the
/// session — e.g. per-repetition solver work inside a larger experiment.
pub fn counter_value(name: &str) -> u64 {
    if !enabled() {
        return 0;
    }
    lock(&global().counters)
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value.load(Ordering::Relaxed))
        .sum()
}

/// Current in-session sample count of histogram `name`, summed across macro
/// sites. Returns 0 when no session is active. The histogram analogue of
/// [`counter_value`].
pub fn histogram_count(name: &str) -> u64 {
    if !enabled() {
        return 0;
    }
    lock(&global().hists)
        .iter()
        .filter(|h| h.name == name)
        .map(|h| h.count.load(Ordering::Relaxed))
        .sum()
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Storage behind one [`counter!`] site: a `static` cell created by the
/// macro, registered with the session registry on first use so that
/// [`Session::begin`] can zero it and [`Session::end`] can snapshot it.
pub struct CounterCell {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl CounterCell {
    /// Create a cell. Intended for use by the [`counter!`] macro; the cell
    /// must be a `static` so registration by reference is sound.
    pub const fn new(name: &'static str) -> Self {
        CounterCell {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` to the counter if a session is recording; a relaxed load and
    /// a branch otherwise.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        self.record(n);
    }

    #[cold]
    fn register(&'static self) {
        let mut list = lock(&global().counters);
        // Double-check under the lock: another thread may have registered
        // this cell between our relaxed check and acquiring the lock.
        if !self.registered.load(Ordering::Relaxed) {
            list.push(self);
            self.registered.store(true, Ordering::Release);
        }
    }

    fn record(&'static self, n: u64) {
        if !self.registered.load(Ordering::Acquire) {
            self.register();
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }
}

/// Bump a named monotonic counter: `counter!("bal.flow_calls")` adds 1,
/// `counter!("maxflow.pr.pushes", pushes)` adds an accumulated total. The
/// name must be a string literal (it keys the counter in the trace). When no
/// session is active this compiles to a relaxed atomic load and a branch.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $n:expr) => {{
        static CELL: $crate::CounterCell = $crate::CounterCell::new($name);
        CELL.add($n as u64);
    }};
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Storage behind one [`histogram!`] site: [`HIST_BUCKETS`] log2 buckets
/// plus count/sum/max, all relaxed atomics. Like [`CounterCell`], the cell
/// is a `static` created by the macro and lazily registered so sessions can
/// zero it on begin and snapshot it on end.
pub struct HistogramCell {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl HistogramCell {
    /// Create a cell. Intended for use by the [`histogram!`] macro; the
    /// cell must be a `static` so registration by reference is sound.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // template for array init
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistogramCell {
            name,
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record `count` observations of `value` if a session is recording; a
    /// relaxed load and a branch otherwise.
    #[inline]
    pub fn record(&'static self, value: u64, count: u64) {
        if !ENABLED.load(Ordering::Relaxed) || count == 0 {
            return;
        }
        self.record_slow(value, count);
    }

    #[cold]
    fn register(&'static self) {
        let mut list = lock(&global().hists);
        if !self.registered.load(Ordering::Relaxed) {
            list.push(self);
            self.registered.store(true, Ordering::Release);
        }
    }

    fn record_slow(&'static self, value: u64, count: u64) {
        if !self.registered.load(Ordering::Acquire) {
            self.register();
        }
        self.buckets[bucket_of(value)].fetch_add(count, Ordering::Relaxed);
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(count), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Record a value into a named log2 histogram:
/// `histogram!("maxflow.dinic.path_len", len)` records one observation,
/// `histogram!("maxflow.dinic.path_len", len, n)` records `n` observations
/// of the same value (the batched form hot loops use — e.g. one record per
/// Dinic phase covering every augmentation in it). The name must be a
/// string literal. When no session is active this compiles to a relaxed
/// atomic load and a branch.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::histogram!($name, $value, 1u64)
    };
    ($name:expr, $value:expr, $count:expr) => {{
        static CELL: $crate::HistogramCell = $crate::HistogramCell::new($name);
        CELL.record($value as u64, $count as u64);
    }};
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII timer for one phase. Created by [`span`]; the phase ends when the
/// guard drops. Guards nest: spans opened while this guard is alive (on the
/// same thread) become its children in the trace.
#[must_use = "the span ends when the guard drops; bind it with `let _g = ...`"]
pub struct SpanGuard {
    /// `None` when probes were disabled at creation (the common case).
    rec: Option<OpenSpan>,
}

struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    generation: u64,
    /// The enclosing span's paused allocation totals, restored on drop.
    #[cfg(feature = "probe-alloc")]
    saved_alloc: (u64, u64),
}

/// Open a phase span named `name`. Near-free when no session is active.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { rec: None };
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_PARENT.with(|c| {
        let p = c.get();
        c.set(id);
        p
    });
    SpanGuard {
        rec: Some(OpenSpan {
            id,
            parent,
            name,
            start: Instant::now(),
            generation,
            #[cfg(feature = "probe-alloc")]
            saved_alloc: alloc::enter_span(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.rec.take() else {
            return;
        };
        CURRENT_PARENT.with(|c| c.set(open.parent));
        // Always read our self-allocation and resume the parent's totals,
        // even if the record below is discarded — the thread-local must
        // stay balanced.
        #[cfg(feature = "probe-alloc")]
        let (alloc_bytes, alloc_count) = alloc::exit_span(open.saved_alloc);
        #[cfg(not(feature = "probe-alloc"))]
        let (alloc_bytes, alloc_count) = (0u64, 0u64);
        // Discard the record if the session ended (or a new one began)
        // while the guard was open — its epoch no longer matches.
        if ENABLED.load(Ordering::Relaxed) && GENERATION.load(Ordering::Relaxed) == open.generation
        {
            let end = Instant::now();
            lock(&global().spans).push(RawSpan {
                id: open.id,
                parent: open.parent,
                thread: thread_label(),
                name: open.name,
                start: open.start,
                end,
                alloc_bytes,
                alloc_count,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// Exclusive recording session. See the crate docs for the lifecycle.
pub struct Session {
    finished: bool,
}

impl Session {
    /// Claim the probes and start recording. Returns `None` if another
    /// session is already active (callers should degrade to an untraced
    /// run, not block).
    pub fn begin() -> Option<Session> {
        if ACTIVE
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        let g = global();
        lock(&g.spans).clear();
        for cell in lock(&g.counters).iter() {
            cell.value.store(0, Ordering::Relaxed);
        }
        for cell in lock(&g.hists).iter() {
            cell.zero();
        }
        *lock(&g.epoch) = Some(Instant::now());
        NEXT_SPAN_ID.store(1, Ordering::Relaxed);
        GENERATION.fetch_add(1, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Release);
        Some(Session { finished: false })
    }

    /// Stop recording and return the captured trace. Spans still open on
    /// any thread are dropped silently (their guards notice the generation
    /// change); counters keep their totals up to this instant.
    pub fn end(mut self) -> Trace {
        self.finished = true;
        finish_session()
    }

    /// Capture the calling thread's innermost open span as a handle a
    /// worker thread can adopt with [`Session::adopt_parent`]. Cheap; safe
    /// to call with no session active (the handle is then inert).
    pub fn parent_handle() -> ParentHandle {
        if !ENABLED.load(Ordering::Relaxed) {
            return ParentHandle {
                parent: 0,
                generation: 0,
            };
        }
        ParentHandle {
            parent: CURRENT_PARENT.with(|c| c.get()),
            generation: GENERATION.load(Ordering::Relaxed),
        }
    }

    /// Attach this thread's spans to the span captured in `handle` for the
    /// lifetime of the returned guard: spans opened while the guard is
    /// alive (and no other span is open on this thread) become children of
    /// the handle's span instead of disconnected roots.
    ///
    /// Semantics and caveats:
    /// * A no-op if the handle is inert (captured with no session, or with
    ///   no span open), or if the session changed since capture — the
    ///   generation check makes stale handles harmless.
    /// * The *capturing* thread must keep the handle's span open until the
    ///   adopting thread drops the guard, or the trace will fail
    ///   containment validation. `par_map` satisfies this structurally:
    ///   scoped workers are joined before the caller's span can close.
    /// * Adoption nests: dropping the guard restores whatever parent was
    ///   current on this thread before.
    pub fn adopt_parent(handle: ParentHandle) -> AdoptGuard {
        if handle.parent == 0
            || !ENABLED.load(Ordering::Relaxed)
            || GENERATION.load(Ordering::Relaxed) != handle.generation
        {
            return AdoptGuard { prev: None };
        }
        let prev = CURRENT_PARENT.with(|c| c.replace(handle.parent));
        AdoptGuard { prev: Some(prev) }
    }
}

/// A cross-thread reference to one open span, produced by
/// [`Session::parent_handle`] and consumed by [`Session::adopt_parent`].
/// Copyable so it can be captured by many worker closures.
#[derive(Debug, Clone, Copy)]
pub struct ParentHandle {
    /// Span id to adopt (0 = inert handle).
    parent: u64,
    /// Session generation at capture time; adoption is refused if it moved.
    generation: u64,
}

/// RAII scope for [`Session::adopt_parent`]: restores the thread's previous
/// parent span on drop.
#[must_use = "adoption ends when the guard drops; bind it with `let _g = ...`"]
pub struct AdoptGuard {
    /// The parent to restore, or `None` when adoption was refused.
    prev: Option<u64>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT_PARENT.with(|c| c.set(prev));
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.finished {
            let _ = finish_session();
        }
    }
}

fn finish_session() -> Trace {
    ENABLED.store(false, Ordering::Release);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    let g = global();
    let epoch = lock(&g.epoch).take().unwrap_or_else(Instant::now);
    let mut raw = std::mem::take(&mut *lock(&g.spans));
    raw.sort_by_key(|s| (s.start, s.id));
    // With probe-alloc enabled, surface the session-wide allocation totals
    // (sum of per-span self-allocations) as ordinary counters.
    let (mut alloc_bytes_total, mut alloc_count_total) = (0u64, 0u64);
    let spans: Vec<SpanRec> = raw
        .into_iter()
        .map(|s| {
            alloc_bytes_total += s.alloc_bytes;
            alloc_count_total += s.alloc_count;
            SpanRec {
                id: s.id,
                parent: s.parent,
                thread: s.thread,
                name: s.name.to_string(),
                start_ns: s.start.saturating_duration_since(epoch).as_nanos() as u64,
                end_ns: s.end.saturating_duration_since(epoch).as_nanos() as u64,
                alloc_bytes: s.alloc_bytes,
                alloc_count: s.alloc_count,
            }
        })
        .collect();
    // Distinct macro sites may share a counter name; merge them.
    let mut totals: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for c in lock(&g.counters).iter() {
        let v = c.value.load(Ordering::Relaxed);
        if v > 0 {
            *totals.entry(c.name).or_insert(0) += v;
        }
    }
    if alloc_count_total > 0 {
        *totals.entry("alloc.bytes").or_insert(0) += alloc_bytes_total;
        *totals.entry("alloc.count").or_insert(0) += alloc_count_total;
    }
    let counters: Vec<(String, u64)> = totals
        .into_iter()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    // Same for histograms: merge same-name sites bucket-wise.
    let mut hist_totals: std::collections::BTreeMap<&'static str, HistRec> =
        std::collections::BTreeMap::new();
    for h in lock(&g.hists).iter() {
        let count = h.count.load(Ordering::Relaxed);
        if count == 0 {
            continue;
        }
        let rec = hist_totals
            .entry(h.name)
            .or_insert_with(|| HistRec::new(h.name));
        rec.count += count;
        rec.sum = rec.sum.saturating_add(h.sum.load(Ordering::Relaxed));
        rec.max = rec.max.max(h.max.load(Ordering::Relaxed));
        for (i, b) in h.buckets.iter().enumerate() {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                rec.add_bucket(i as u8, v);
            }
        }
    }
    let hists: Vec<HistRec> = hist_totals.into_values().collect();
    ACTIVE.store(false, Ordering::Release);
    Trace {
        spans,
        counters,
        hists,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sessions are process-global; tests that open one must serialize.
    pub(crate) fn session_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_are_noops() {
        let _l = session_lock();
        counter!("test.noop", 5);
        let _g = span("test.noop.span");
        drop(_g);
        let session = Session::begin().unwrap();
        let trace = session.end();
        assert_eq!(trace.counter("test.noop"), 0);
        assert!(!trace.spans.iter().any(|s| s.name == "test.noop.span"));
    }

    #[test]
    fn session_is_exclusive() {
        let _l = session_lock();
        let first = Session::begin().unwrap();
        assert!(Session::begin().is_none(), "second session must be refused");
        drop(first); // abandoned without end(): Drop must release the claim
        let second = Session::begin().unwrap();
        second.end();
    }

    #[test]
    fn spans_nest_and_counters_total() {
        let _l = session_lock();
        let session = Session::begin().unwrap();
        {
            let _outer = span("outer");
            counter!("test.nest.events", 2);
            {
                let _inner = span("inner");
                counter!("test.nest.events", 3);
            }
            let _sibling = span("sibling");
        }
        let trace = session.end();
        trace.validate().expect("trace must be well-formed");
        assert_eq!(trace.counter("test.nest.events"), 5);
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        let sibling = trace.spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn counters_reset_between_sessions() {
        let _l = session_lock();
        let s1 = Session::begin().unwrap();
        counter!("test.reset", 7);
        assert_eq!(s1.end().counter("test.reset"), 7);
        let s2 = Session::begin().unwrap();
        counter!("test.reset", 1);
        assert_eq!(s2.end().counter("test.reset"), 1);
    }

    #[test]
    fn cross_thread_spans_record() {
        let _l = session_lock();
        let session = Session::begin().unwrap();
        {
            let _main = span("main_phase");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _w = span("worker");
                        counter!("test.threads.work", 1);
                    });
                }
            });
        }
        let trace = session.end();
        trace.validate().expect("well-formed");
        let workers: Vec<_> = trace.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        // Worker spans start on fresh threads: they are roots, not children
        // of `main_phase` (parent tracking is per-thread).
        assert!(workers.iter().all(|w| w.parent == 0));
        assert_eq!(trace.counter("test.threads.work"), 2);
    }

    #[test]
    fn histograms_record_merge_and_reset() {
        let _l = session_lock();
        let s1 = Session::begin().unwrap();
        histogram!("test.hist", 0);
        histogram!("test.hist", 1);
        histogram!("test.hist", 5, 3); // batched form
        let t1 = s1.end();
        let h = t1.hist("test.hist").expect("recorded");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 16);
        assert_eq!(h.max, 5);
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 3)]);
        assert!(h.p50() <= h.p99() && h.p99() <= h.max);
        t1.validate().expect("well-formed");
        // Zeroed between sessions, like counters.
        let s2 = Session::begin().unwrap();
        let t2 = s2.end();
        assert!(t2.hist("test.hist").is_none());
        // And a no-op with no session at all.
        histogram!("test.hist", 99);
        let s3 = Session::begin().unwrap();
        assert!(s3.end().hist("test.hist").is_none());
    }

    #[test]
    fn histogram_count_reads_in_session_totals() {
        let _l = session_lock();
        assert_eq!(histogram_count("test.hist.live"), 0);
        let session = Session::begin().unwrap();
        histogram!("test.hist.live", 7, 4);
        assert_eq!(histogram_count("test.hist.live"), 4);
        session.end();
        assert_eq!(histogram_count("test.hist.live"), 0);
    }

    #[test]
    fn adopt_parent_attaches_worker_spans() {
        let _l = session_lock();
        let session = Session::begin().unwrap();
        {
            let _main = span("main_phase");
            let handle = Session::parent_handle();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _adopt = Session::adopt_parent(handle);
                    let _w = span("adopted_worker");
                });
                scope.spawn(|| {
                    let _w = span("orphan_worker");
                });
            });
        }
        let trace = session.end();
        trace.validate().expect("well-formed");
        let main = trace.spans.iter().find(|s| s.name == "main_phase").unwrap();
        let adopted = trace
            .spans
            .iter()
            .find(|s| s.name == "adopted_worker")
            .unwrap();
        let orphan = trace
            .spans
            .iter()
            .find(|s| s.name == "orphan_worker")
            .unwrap();
        assert_eq!(adopted.parent, main.id, "adopted span joins the tree");
        assert_eq!(orphan.parent, 0, "non-adopting worker stays a root");
    }

    #[test]
    fn stale_or_inert_parent_handles_are_refused() {
        let _l = session_lock();
        // No session: the handle is inert and adoption is a no-op.
        let inert = Session::parent_handle();
        drop(Session::adopt_parent(inert));
        // A handle from a previous session generation must be refused.
        let s1 = Session::begin().unwrap();
        let outer = span("outer");
        let stale = Session::parent_handle();
        drop(outer);
        s1.end();
        let s2 = Session::begin().unwrap();
        {
            let _adopt = Session::adopt_parent(stale);
            let _sp = span("after_stale");
        }
        let t2 = s2.end();
        let sp = t2.spans.iter().find(|s| s.name == "after_stale").unwrap();
        assert_eq!(sp.parent, 0, "stale handle must not re-parent");
    }

    #[cfg(feature = "probe-alloc")]
    #[test]
    fn alloc_attributed_to_innermost_span() {
        let _l = session_lock();
        let session = Session::begin().unwrap();
        {
            let _outer = span("alloc_outer");
            let outer_buf: Vec<u8> = Vec::with_capacity(512);
            {
                let _inner = span("alloc_inner");
                let inner_buf: Vec<u8> = Vec::with_capacity(4096);
                drop(inner_buf);
            }
            drop(outer_buf);
        }
        let trace = session.end();
        let outer = trace
            .spans
            .iter()
            .find(|s| s.name == "alloc_outer")
            .unwrap();
        let inner = trace
            .spans
            .iter()
            .find(|s| s.name == "alloc_inner")
            .unwrap();
        assert!(inner.alloc_bytes >= 4096, "inner charged its own buffer");
        assert!(
            outer.alloc_bytes >= 512 && outer.alloc_bytes < 4096,
            "outer charged only its own buffer (self, not children): {}",
            outer.alloc_bytes
        );
        assert!(inner.alloc_count >= 1 && outer.alloc_count >= 1);
        assert_eq!(
            trace.counter("alloc.bytes"),
            trace.spans.iter().map(|s| s.alloc_bytes).sum::<u64>()
        );
        assert!(trace.counter("alloc.count") >= 2);
    }

    #[test]
    fn guard_held_across_end_is_dropped_silently() {
        let _l = session_lock();
        let session = Session::begin().unwrap();
        let straggler = span("straggler");
        let trace = session.end();
        drop(straggler); // must not record into a dead (or future) session
        assert!(trace.spans.iter().all(|s| s.name != "straggler"));
        let next = Session::begin().unwrap();
        let trace2 = next.end();
        assert!(trace2.spans.is_empty());
    }
}
