//! History-calibrated noise bands for timing trajectories.
//!
//! The bench trajectory (`BENCH_history.jsonl`) accumulates one timing
//! sample per cell per run. A single global regression threshold treats a
//! 6 µs cell and a 1.3 s cell identically, but their run-to-run noise
//! differs by an order of magnitude. This module derives a **per-cell
//! relative band** from the cell's own trailing samples using robust
//! statistics — median and MAD (median absolute deviation) — so one
//! outlier run cannot widen the band the way a standard deviation would.
//!
//! The band is used in three places with one formula: `ssp bench report`
//! flags trajectory points outside the band, the bench harness decides
//! which regressed cells deserve an auto-attached probe trace, and EXP-25
//! asserts the calibration separates a true 20% step from run-to-run
//! noise. Keeping the formula here (rather than in `ssp-bench`) lets all
//! three crates share it without a dependency cycle.

/// Minimum relative band: even a perfectly quiet history (zero measured
/// dispersion) keeps a 5% guard against timer quantization.
pub const MIN_BAND: f64 = 0.05;

/// Maximum relative band: a wildly noisy history never excuses more than a
/// 50% slowdown.
pub const MAX_BAND: f64 = 0.50;

/// Dispersion multiplier: the band is `BAND_SIGMAS` robust standard
/// deviations (`1.4826 * MAD / median`), clamped to
/// [`MIN_BAND`]..[`MAX_BAND`]. Six sigmas keeps ±2% uniform noise (robust
/// sigma ≈ 1.5%) comfortably inside the band while a 20% step lands far
/// outside it.
pub const BAND_SIGMAS: f64 = 6.0;

/// Median of `samples` (NaNs excluded). `None` when no finite sample
/// remains.
pub fn median(samples: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    })
}

/// Median absolute deviation around the sample median. `None` when
/// [`median`] is.
pub fn mad(samples: &[f64]) -> Option<f64> {
    let med = median(samples)?;
    let deviations: Vec<f64> = samples
        .iter()
        .filter(|x| x.is_finite())
        .map(|x| (x - med).abs())
        .collect();
    median(&deviations)
}

/// The calibrated relative noise band for a cell's trailing samples:
/// `clamp(BAND_SIGMAS * 1.4826 * MAD / median, MIN_BAND, MAX_BAND)`.
///
/// Degenerate histories fall back to [`MIN_BAND`]: fewer than 3 finite
/// samples (nothing to calibrate from), or a non-positive median (timing
/// samples are positive by construction; zeros mean a broken writer, not a
/// quiet cell).
pub fn noise_band(samples: &[f64]) -> f64 {
    let finite = samples.iter().filter(|x| x.is_finite()).count();
    if finite < 3 {
        return MIN_BAND;
    }
    let (Some(med), Some(mad)) = (median(samples), mad(samples)) else {
        return MIN_BAND;
    };
    if med <= 0.0 {
        return MIN_BAND;
    }
    let sigma_rel = 1.4826 * mad / med;
    (BAND_SIGMAS * sigma_rel).clamp(MIN_BAND, MAX_BAND)
}

/// Whether `latest` regresses against `baseline` past the calibrated
/// `band` (a relative fraction): the relative slowdown `latest/baseline -
/// 1` must reach the band and `latest` must sit at or above the `min_ms`
/// noise floor (sub-floor cells are dominated by fixed overhead and timer
/// quantization and never gate — same rule as `bench-diff`).
pub fn crosses(latest: f64, baseline: f64, band: f64, min_ms: f64) -> bool {
    baseline > 0.0 && latest.is_finite() && latest >= min_ms && latest / baseline - 1.0 >= band
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust_to_one_outlier() {
        let samples = [1.0, 1.02, 0.98, 1.01, 50.0];
        assert_eq!(median(&samples), Some(1.01));
        let mad = mad(&samples).unwrap();
        assert!(mad < 0.05, "one outlier must not inflate the MAD: {mad}");
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(median(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn quiet_history_gets_the_floor_band() {
        assert_eq!(noise_band(&[1.0, 1.0, 1.0, 1.0]), MIN_BAND);
        // Too few samples to calibrate: floor.
        assert_eq!(noise_band(&[1.0, 1.3]), MIN_BAND);
        assert_eq!(noise_band(&[]), MIN_BAND);
        // NaNs don't count as samples.
        assert_eq!(noise_band(&[1.0, f64::NAN, 1.0]), MIN_BAND);
    }

    #[test]
    fn band_scales_with_dispersion_and_clamps() {
        // ±2% noise: robust sigma ~1.5%, band ~9% — between floor and cap.
        let pm2 = [1.0, 1.02, 0.98, 1.01, 0.99, 1.015, 0.985];
        let band = noise_band(&pm2);
        assert!(
            (MIN_BAND..0.15).contains(&band),
            "±2% noise should calibrate under 15%: {band}"
        );
        // A 20% true step crosses that band; in-noise points do not.
        let med = median(&pm2).unwrap();
        assert!(crosses(med * 1.20, med, band, 0.0));
        assert!(!crosses(med * 1.02, med, band, 0.0));
        // Wild history clamps at the cap.
        assert_eq!(noise_band(&[1.0, 3.0, 0.2, 5.0, 0.1]), MAX_BAND);
    }

    #[test]
    fn noise_floor_shields_tiny_cells() {
        assert!(!crosses(0.04, 0.02, 0.05, 0.05), "sub-floor never gates");
        assert!(crosses(0.06, 0.02, 0.05, 0.05));
        assert!(!crosses(1.0, 0.0, 0.05, 0.05), "zero baseline never gates");
        assert!(!crosses(f64::NAN, 1.0, 0.05, 0.05));
    }
}
