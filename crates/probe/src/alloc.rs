//! Feature-gated (`probe-alloc`) counting global allocator.
//!
//! Wraps [`std::alloc::System`] and charges every allocation made while a
//! session is recording to the innermost open span on the allocating
//! thread, via a thread-local `(bytes, count)` accumulator that [`crate::span`]
//! swaps on open and [`crate::SpanGuard`]'s drop reads back. The result is
//! *self* attribution: a phase is charged only for what it allocates
//! directly, not for what its children allocate.
//!
//! Compiled in only under `--features probe-alloc`, because installing a
//! `#[global_allocator]` taxes every allocation in the process (an extra
//! thread-local access) even with no session active.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// `(bytes, count)` allocated by the innermost open span on this thread.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Called when a span opens: park the enclosing span's totals and start the
/// new span from zero. Returns the parked totals for [`exit_span`].
pub(crate) fn enter_span() -> (u64, u64) {
    CURRENT.try_with(|c| c.replace((0, 0))).unwrap_or((0, 0))
}

/// Called when a span closes: read its self-allocation totals and resume
/// the enclosing span's. Must be called exactly once per [`enter_span`].
pub(crate) fn exit_span(saved: (u64, u64)) -> (u64, u64) {
    CURRENT.try_with(|c| c.replace(saved)).unwrap_or((0, 0))
}

#[inline]
fn charge(bytes: usize) {
    // `try_with`, not `with`: allocations can happen during thread
    // teardown after the thread-local was destroyed.
    let _ = CURRENT.try_with(|c| {
        let (b, n) = c.get();
        c.set((b.saturating_add(bytes as u64), n.saturating_add(1)));
    });
}

/// The counting allocator installed as `#[global_allocator]` when the
/// `probe-alloc` feature is enabled. Delegates all real work to
/// [`System`]; with no session recording the only cost is one relaxed
/// atomic load per allocation.
pub struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the accounting side effects do
// not touch the allocator state and allocate nothing themselves.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if crate::enabled() {
            charge(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if crate::enabled() {
            charge(layout.size());
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Charge only the growth: the shrink/move cases did not ask the
        // program for new memory.
        if crate::enabled() && new_size > layout.size() {
            charge(new_size - layout.size());
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;
