//! Timeline decomposition: split an instance into time-independent
//! components.
//!
//! Two jobs *interact* only if their windows overlap (directly or through a
//! chain of overlapping windows). The connected components of that interval
//! graph occupy disjoint stretches of the timeline, so **any** scheduling
//! question decomposes: machines are reusable across time, hence an optimal
//! schedule of the whole instance is the concatenation of optimal schedules
//! of the components. A single left-to-right sweep finds the components in
//! `O(n log n)`.
//!
//! The headline payoff is [`exact_decomposed`]: the exponential exact solver
//! becomes usable whenever every *component* is small (e.g. bursty traces
//! with hundreds of jobs), extending the reproduction's ground truth far
//! past the monolithic `n ≤ 16` limit.

use crate::assignment::Assignment;
use crate::exact::{exact_nonmigratory, ExactSolution};
use ssp_model::Instance;

/// Connected components of the window-overlap graph, each a sorted list of
/// instance indices, ordered by start time.
pub fn decompose(instance: &Instance) -> Vec<Vec<usize>> {
    let n = instance.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| instance.job(a).release.total_cmp(&instance.job(b).release));
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = vec![order[0]];
    let mut frontier = instance.job(order[0]).deadline;
    for &i in &order[1..] {
        let job = instance.job(i);
        // Windows are closed; touching at a single point shares no open
        // time, so `release >= frontier` starts a fresh component.
        if job.release >= frontier {
            components.push(std::mem::take(&mut current));
            frontier = job.deadline;
        } else {
            frontier = frontier.max(job.deadline);
        }
        current.push(i);
    }
    components.push(current);
    for c in &mut components {
        c.sort_unstable();
    }
    components
}

/// Exact non-migratory optimum via decomposition: solve each component with
/// the branch-and-bound solver and merge. Panics if some *component* exceeds
/// 16 jobs (then the instance genuinely is out of exact reach).
pub fn exact_decomposed(instance: &Instance) -> ExactSolution {
    let components = decompose(instance);
    let mut machine_of = vec![0usize; instance.len()];
    let mut energy = 0.0;
    let mut nodes = 0usize;
    for comp in &components {
        let sub = instance.subset(comp);
        let sol = exact_nonmigratory(&sub);
        energy += sol.energy;
        nodes += sol.nodes;
        for (local, &global) in comp.iter().enumerate() {
            machine_of[global] = sol.assignment.machine_of(local);
        }
    }
    ExactSolution {
        assignment: Assignment::new(machine_of),
        energy,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::assignment_energy;
    use ssp_model::{Instance, Job};
    use ssp_prng::{check, Rng};
    use ssp_workloads::{ArrivalDist, Spec, WindowDist, WorkDist};

    fn inst(jobs: Vec<Job>, m: usize) -> Instance {
        Instance::new(jobs, m, 2.0).unwrap()
    }

    #[test]
    fn empty_and_singleton() {
        assert!(decompose(&inst(vec![], 2)).is_empty());
        let one = inst(vec![Job::new(0, 1.0, 0.0, 1.0)], 2);
        assert_eq!(decompose(&one), vec![vec![0]]);
    }

    #[test]
    fn disjoint_windows_split() {
        let i = inst(
            vec![
                Job::new(0, 1.0, 0.0, 1.0),
                Job::new(1, 1.0, 2.0, 3.0),
                Job::new(2, 1.0, 2.5, 4.0),
                Job::new(3, 1.0, 9.0, 10.0),
            ],
            2,
        );
        assert_eq!(decompose(&i), vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn chained_overlaps_merge() {
        // 0 overlaps 1 overlaps 2 — one component even though 0 and 2 are
        // disjoint.
        let i = inst(
            vec![
                Job::new(0, 1.0, 0.0, 2.0),
                Job::new(1, 1.0, 1.5, 4.0),
                Job::new(2, 1.0, 3.5, 6.0),
            ],
            2,
        );
        assert_eq!(decompose(&i), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn touching_endpoints_do_not_merge() {
        let i = inst(
            vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 1.0, 2.0)],
            1,
        );
        assert_eq!(decompose(&i), vec![vec![0], vec![1]]);
    }

    #[test]
    fn decomposed_exact_matches_monolithic() {
        // Two 4-job bursts: 8 jobs total, solvable both ways.
        let spec = Spec::new(8, 2, 2.0)
            .arrivals(ArrivalDist::Bursty {
                burst: 4,
                gap: 100.0,
            })
            .work(WorkDist::Uniform { min: 0.5, max: 2.0 })
            .window(WindowDist::LaxityFactor { min: 1.2, max: 2.0 });
        for seed in [1u64, 2, 3] {
            let instance = spec.gen(seed);
            let mono = exact_nonmigratory(&instance);
            let deco = exact_decomposed(&instance);
            assert!(
                (mono.energy - deco.energy).abs() <= 1e-9 * mono.energy,
                "seed {seed}: {} vs {}",
                mono.energy,
                deco.energy
            );
            // The decomposed assignment evaluates to the same energy.
            let e = assignment_energy(&instance, &deco.assignment);
            assert!((e - mono.energy).abs() <= 1e-9 * mono.energy);
            // And explores no more nodes.
            assert!(deco.nodes <= mono.nodes);
        }
    }

    #[test]
    fn scales_past_the_monolithic_limit() {
        // 60 jobs in 12 well-separated bursts of 5: monolithic exact refuses,
        // decomposed sails through.
        let spec = Spec::new(60, 2, 2.0)
            .arrivals(ArrivalDist::Bursty {
                burst: 5,
                gap: 1000.0,
            })
            .work(WorkDist::Uniform { min: 0.5, max: 2.0 })
            .window(WindowDist::LaxityFactor { min: 1.1, max: 1.8 });
        let instance = spec.gen(7);
        let comps = decompose(&instance);
        assert!(
            comps.len() >= 10,
            "expected many components, got {}",
            comps.len()
        );
        let sol = exact_decomposed(&instance);
        assert!(sol.energy.is_finite() && sol.energy > 0.0);
        // Sanity: still lower-bounded by the migratory optimum.
        let lb = ssp_migratory::bal::bal(&instance).energy;
        assert!(sol.energy >= lb * (1.0 - 1e-6));
    }

    /// Components partition the job set, are internally time-connected,
    /// and are pairwise time-disjoint.
    #[test]
    fn decomposition_is_a_time_partition() {
        check::cases(32, 0xDEC0, |rng| {
            let jobs: Vec<Job> = check::vec_of(rng, 1..20, |r| {
                (r.gen_range(0.0f64..20.0), r.gen_range(0.2f64..3.0))
            })
            .into_iter()
            .enumerate()
            .map(|(i, (r, len))| Job::new(i as u32, 1.0, r, r + len))
            .collect();
            let instance = Instance::new(jobs, 2, 2.0).unwrap();
            let comps = decompose(&instance);
            // Partition.
            let mut seen: Vec<usize> = comps.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..instance.len()).collect::<Vec<_>>());
            // Pairwise disjoint time ranges, in order.
            let ranges: Vec<(f64, f64)> = comps
                .iter()
                .map(|c| {
                    let lo = c
                        .iter()
                        .map(|&i| instance.job(i).release)
                        .fold(f64::INFINITY, f64::min);
                    let hi = c
                        .iter()
                        .map(|&i| instance.job(i).deadline)
                        .fold(f64::NEG_INFINITY, f64::max);
                    (lo, hi)
                })
                .collect();
            for w in ranges.windows(2) {
                assert!(
                    w[0].1 <= w[1].0 + 1e-12,
                    "components overlap in time: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        });
    }
}
