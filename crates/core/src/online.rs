//! Online multiprocessor baselines: AVR and Optimal Available lifted to `m`
//! machines (migratory online algorithms, as analyzed for the multiprocessor
//! case by the follow-up literature).
//!
//! * [`avr_m`] — every alive job is processed at its density, i.e. receives
//!   `den_i·|I|` work in each elementary interval of its span. With more
//!   than `m` alive jobs this cannot mean "one processor each", so within
//!   each interval the speeds are *water-filled*: `s_i = max(den_i, λ)` with
//!   `λ` chosen so the total time exactly fills `m` machines. Online: needs
//!   only the alive set.
//! * [`oa_m`] — at every release, recompute the optimal migratory schedule
//!   (BAL) for the remaining work and follow it until the next release.
//!
//! Both return explicit schedules; energies are compared against the offline
//! optimum in EXP-8.

use ssp_migratory::bal::bal;
use ssp_migratory::mcnaughton::mcnaughton;
use ssp_model::numeric::pow_alpha;
use ssp_model::{Instance, IntervalSet, Job, Schedule, Segment};

/// Multiprocessor AVR (per-interval water-filling). Returns the schedule;
/// its energy is `Σ_I Σ_i (den_i·|I|)·s_i^(α-1)`.
pub fn avr_m(instance: &Instance) -> Schedule {
    let m = instance.machines();
    let ivals = IntervalSet::from_jobs(instance.jobs());
    let mut schedule = Schedule::new(m);
    for j in 0..ivals.len() {
        let alive = ivals.alive(j);
        if alive.is_empty() {
            continue;
        }
        let len = ivals.length(j);
        let dens: Vec<f64> = alive.iter().map(|&i| instance.job(i).density()).collect();
        let speeds = waterfill(&dens, m);
        let pieces: Vec<(ssp_model::JobId, f64, f64)> = alive
            .iter()
            .zip(&dens)
            .zip(&speeds)
            .map(|((&i, &den), &s)| (instance.job(i).id, den * len / s, s))
            .collect();
        mcnaughton(ivals.bounds(j), m, &pieces, &mut schedule);
    }
    schedule
}

/// Water-filling speeds for one interval: `s_i = max(den_i, λ)` with λ = 0
/// when at most `m` jobs are alive (everyone runs at density, one processor
/// each), else λ solves `Σ min(1, den_i/λ) = m` — i.e. total execution time
/// fills `m` machines exactly.
fn waterfill(dens: &[f64], m: usize) -> Vec<f64> {
    if dens.len() <= m {
        return dens.to_vec();
    }
    // Sort descending; pin the k fastest at their own density and share λ
    // among the rest, picking the k whose λ lands between the neighbors.
    let mut sorted: Vec<f64> = dens.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let total: f64 = sorted.iter().sum();
    let mut suffix = total;
    let mut lambda = total / m as f64; // k = 0 candidate
    for k in 0..m {
        let candidate = suffix / (m - k) as f64;
        let upper = if k == 0 { f64::INFINITY } else { sorted[k - 1] };
        if candidate <= upper && candidate >= sorted[k] {
            lambda = candidate;
            break;
        }
        suffix -= sorted[k];
        // Next iteration pins sorted[k] too.
        if k + 1 == m {
            // Numerical fallback: everything pinned except shared remainder.
            lambda = sorted[m - 1];
        }
    }
    dens.iter().map(|&d| d.max(lambda)).collect()
}

/// Multiprocessor Optimal Available: replan the migratory optimum at every
/// release and follow it until the next one.
pub fn oa_m(instance: &Instance) -> Schedule {
    let m = instance.machines();
    let mut schedule = Schedule::new(m);
    if instance.is_empty() {
        return schedule;
    }
    let mut events: Vec<f64> = instance.jobs().iter().map(|j| j.release).collect();
    events.sort_by(f64::total_cmp);
    events.dedup();
    let mut remaining: Vec<f64> = instance.jobs().iter().map(|j| j.work).collect();

    for (k, &now) in events.iter().enumerate() {
        let next = events.get(k + 1).copied().unwrap_or(f64::INFINITY);
        // Snapshot of available unfinished work, re-released at `now`. The
        // completion threshold (1e-7 relative) must exceed the planner's
        // own allotment rounding (BAL clamps residues at 1e-8 relative), or
        // phantom slivers of work would survive past their deadlines.
        let avail: Vec<usize> = (0..instance.len())
            .filter(|&i| {
                instance.job(i).release <= now + 1e-12 && remaining[i] > 1e-7 * instance.job(i).work
            })
            .collect();
        if avail.is_empty() {
            continue;
        }
        let snapshot_jobs: Vec<Job> = avail
            .iter()
            .map(|&i| {
                let j = instance.job(i);
                Job::new(j.id.0, remaining[i], now, j.deadline)
            })
            .collect();
        let snapshot =
            Instance::new(snapshot_jobs, m, instance.alpha()).expect("snapshot inherits validity");
        let plan = bal(&snapshot).schedule(&snapshot);
        // Execute the plan until the next release.
        for seg in plan.segments() {
            let start = seg.start.max(now);
            let end = seg.end.min(next);
            if end > start {
                schedule.push(Segment { start, end, ..*seg });
                let i = instance.index_of(seg.job).expect("plan uses instance ids");
                remaining[i] -= seg.speed * (end - start);
            }
        }
    }
    for (i, &rem) in remaining.iter().enumerate() {
        assert!(
            rem <= 1e-6 * instance.job(i).work,
            "OA-m left {} unfinished on {}",
            rem,
            instance.job(i).id
        );
    }
    schedule
}

/// Online **non-migratory** dispatch — the paper's own model, online: each
/// job is irrevocably assigned to a machine the moment it is released (to
/// the machine whose *currently alive* assigned density is smallest), and
/// every machine runs the single-processor Optimal Available policy on its
/// own stream. No job ever moves.
///
/// This is the policy an actual cluster scheduler without migration would
/// run; EXP-8 measures it against the migratory offline optimum.
pub fn dispatch_oa_nonmigratory(instance: &Instance) -> Schedule {
    let m = instance.machines();
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .release
            .total_cmp(&instance.job(b).release)
            .then(instance.job(a).id.cmp(&instance.job(b).id))
    });
    // Online assignment: smallest alive-density machine at release time.
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); m];
    for &i in &order {
        let now = instance.job(i).release;
        let mut best = (0usize, f64::INFINITY);
        for (machine, jobs) in assigned.iter().enumerate() {
            let load: f64 = jobs
                .iter()
                .map(|&k| instance.job(k))
                .filter(|j| j.alive_at(now) || j.release > now)
                .map(Job::density)
                .sum();
            if load < best.1 {
                best = (machine, load);
            }
        }
        assigned[best.0].push(i);
    }
    // Per-machine OA on the dispatched streams.
    let mut schedule = Schedule::new(m);
    for (machine, jobs) in assigned.iter().enumerate() {
        if jobs.is_empty() {
            continue;
        }
        let stream: Vec<Job> = jobs.iter().map(|&i| *instance.job(i)).collect();
        let per_machine = ssp_single::oa::oa_schedule(&stream, instance.alpha(), machine);
        for &seg in per_machine.segments() {
            schedule.push(seg);
        }
    }
    schedule
}

/// Energy of the AVR-m profile without materializing the schedule (used by
/// benchmarks; equals `avr_m(..).energy(alpha)` up to rounding).
pub fn avr_m_energy(instance: &Instance) -> f64 {
    let m = instance.machines();
    let ivals = IntervalSet::from_jobs(instance.jobs());
    let alpha = instance.alpha();
    let mut total = 0.0;
    for j in 0..ivals.len() {
        let alive = ivals.alive(j);
        if alive.is_empty() {
            continue;
        }
        let len = ivals.length(j);
        let dens: Vec<f64> = alive.iter().map(|&i| instance.job(i).density()).collect();
        let speeds = waterfill(&dens, m);
        total += dens
            .iter()
            .zip(&speeds)
            .map(|(&den, &s)| den * len * pow_alpha(s, alpha - 1.0))
            .sum::<f64>();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_workloads::families;

    #[test]
    fn waterfill_few_jobs_run_at_density() {
        assert_eq!(waterfill(&[1.0, 2.0], 3), vec![1.0, 2.0]);
    }

    #[test]
    fn waterfill_shares_capacity_exactly() {
        // 4 equal densities on 2 machines: λ = 4d/2 = 2d; each job runs at
        // 2d for half the interval.
        let s = waterfill(&[1.0, 1.0, 1.0, 1.0], 2);
        assert!(s.iter().all(|&x| (x - 2.0).abs() < 1e-12));
        // Total time = Σ den/s = 4 * 0.5 = 2 = m. ✓
    }

    #[test]
    fn waterfill_pins_dense_jobs() {
        // One job denser than the fair share keeps its own speed.
        let s = waterfill(&[10.0, 1.0, 1.0, 1.0], 2);
        assert!((s[0] - 10.0).abs() < 1e-12);
        let lambda = s[1];
        assert!((lambda - 3.0).abs() < 1e-12); // (1+1+1)/(2-1)
                                               // Time check: 1 (pinned... no: 10/10=1 full) -- total time:
                                               // den/s = 1.0 + 3*(1/3) = 2.0 = m. ✓
        let t: f64 = [10.0f64, 1.0, 1.0, 1.0]
            .iter()
            .zip(&s)
            .map(|(&d, &v)| d / v)
            .sum();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn avr_m_schedule_validates_and_bounds_hold() {
        for seed in [1u64, 2, 3] {
            let inst = families::bursty(20, 3, 2.0).gen(seed);
            let s = avr_m(&inst);
            let stats = s.validate(&inst, Default::default()).unwrap();
            let opt = bal(&inst).energy;
            let alpha = 2.0f64;
            let bound = alpha.powf(alpha) * 2.0f64.powf(alpha - 1.0);
            assert!(
                stats.energy >= opt * (1.0 - 1e-6),
                "AVR-m beat OPT (seed {seed})"
            );
            // The single-processor competitive bound is conjectured to carry
            // over; we allow slack 2x in this smoke test.
            assert!(
                stats.energy <= 2.0 * bound * opt,
                "AVR-m wildly above bound (seed {seed}): {} vs opt {}",
                stats.energy,
                opt
            );
        }
    }

    #[test]
    fn avr_m_energy_matches_schedule() {
        let inst = families::general(15, 2, 2.2).gen(4);
        let s = avr_m(&inst);
        let direct = avr_m_energy(&inst);
        assert!((s.energy(2.2) - direct).abs() < 1e-6 * direct);
    }

    #[test]
    fn oa_m_schedule_validates_and_dominates_opt() {
        for seed in [5u64, 6] {
            let inst = families::bursty(16, 2, 2.0).gen(seed);
            let s = oa_m(&inst);
            let stats = s.validate(&inst, Default::default()).unwrap();
            let opt = bal(&inst).energy;
            assert!(stats.energy >= opt * (1.0 - 1e-6));
            let alpha = 2.0f64;
            assert!(
                stats.energy <= alpha.powf(alpha) * opt * (1.0 + 1e-6),
                "OA-m above alpha^alpha bound (seed {seed}): {} vs {}",
                stats.energy,
                opt
            );
        }
    }

    #[test]
    fn dispatch_nonmigratory_is_valid_and_never_migrates() {
        use ssp_model::schedule::ValidationOptions;
        for seed in [1u64, 2, 3] {
            let inst = families::bursty(24, 3, 2.0).gen(seed);
            let s = dispatch_oa_nonmigratory(&inst);
            let stats = s
                .validate(&inst, ValidationOptions::non_migratory())
                .unwrap();
            let opt = bal(&inst).energy;
            assert!(stats.energy >= opt * (1.0 - 1e-6));
            assert_eq!(stats.migrations, 0);
            // Loose sanity ceiling: within 10x of the offline optimum on
            // these benign families.
            assert!(stats.energy <= 10.0 * opt, "dispatch blew up (seed {seed})");
        }
    }

    #[test]
    fn dispatch_single_machine_reduces_to_oa() {
        let inst = families::general(12, 1, 2.0).gen(5);
        let d = dispatch_oa_nonmigratory(&inst).energy(2.0);
        let jobs: Vec<Job> = inst.jobs().to_vec();
        let oa = ssp_single::oa::oa_schedule(&jobs, 2.0, 0).energy(2.0);
        assert!((d - oa).abs() <= 1e-9 * oa);
    }

    #[test]
    fn dispatch_spreads_simultaneous_tight_jobs() {
        // Two identical tight jobs released together on two machines must
        // land on different machines (any sane online rule does this).
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)];
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let s = dispatch_oa_nonmigratory(&inst);
        let machines: std::collections::HashSet<usize> =
            s.segments().iter().map(|g| g.machine).collect();
        assert_eq!(machines.len(), 2);
        // Each at speed 1: total energy 2 at alpha 2 — matches the optimum.
        assert!((s.energy(2.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn oa_m_with_single_release_equals_opt() {
        // Everything released at once: the first plan is optimal and never
        // revised.
        let inst = families::general(10, 2, 2.0).gen(7);
        let jobs: Vec<Job> = inst
            .jobs()
            .iter()
            .map(|j| Job::new(j.id.0, j.work, 0.0, j.deadline))
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let e_oa = oa_m(&inst).energy(2.0);
        let e_opt = bal(&inst).energy;
        assert!((e_oa - e_opt).abs() <= 1e-6 * e_opt, "{e_oa} vs {e_opt}");
    }
}
