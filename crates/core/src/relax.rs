//! RelaxRound — relax-and-round for unit-work jobs with arbitrary windows
//! (the paper's R2 regime, where the problem is NP-hard).
//!
//! Outline (the paper's `2(2-1/m)^α` technique: convert a relaxed optimum
//! into a non-migratory assignment by list scheduling, then re-optimize):
//!
//! 1. **Relax**: drop the no-migration constraint and solve optimally with
//!    BAL. This yields per-job speeds `s_i` — and the certified lower bound
//!    `E_mig ≤ OPT_nonmig` used by the experiments.
//! 2. **Round**: walk jobs in earliest-deadline order and put each on the
//!    machine with the least accumulated processing time (`p_i = w_i/s_i`)
//!    *inside the job's window* — the Graham `(2 − 1/m)` step specialized to
//!    window overlap.
//! 3. **Re-optimize**: per-machine YDS (never hurts, often recovers most of
//!    the rounding loss). This step is implicit: pricing or scheduling the
//!    returned assignment (`assignment_energy` / `assignment_schedule`,
//!    or [`crate::eval::YdsEval`] when a search keeps refining it) runs the
//!    fast per-machine YDS kernel.
//!
//! The measured ratio versus the migratory lower bound is reported by EXP-3
//! and stays well under `2(2-1/m)^α` on every family we generate.

use crate::assignment::Assignment;
use ssp_migratory::bal::bal;
use ssp_model::Instance;

/// Placement order used by the rounding step — an ablation axis (EXP-10):
/// the `(2 - 1/m)` list-scheduling argument needs *some* deterministic
/// order, and which one matters in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundingOrder {
    /// Earliest deadline first (the default; matches the EDF flavor of the
    /// paper's analysis).
    EarliestDeadline,
    /// Release order (the natural online order).
    Release,
    /// Largest relaxed processing time first (LPT-style: place the hardest
    /// jobs while machines are still empty).
    LongestRelaxedTime,
}

/// The relax-and-round assignment (see module docs). Works for arbitrary
/// works too; the paper's guarantee regime is unit works.
pub fn relax_round(instance: &Instance) -> Assignment {
    relax_round_with(instance, RoundingOrder::EarliestDeadline)
}

/// [`relax_round`] with an explicit rounding order (ablation entry point).
pub fn relax_round_with(instance: &Instance, rounding: RoundingOrder) -> Assignment {
    let relaxed = bal(instance);
    let p: Vec<f64> = (0..instance.len())
        .map(|i| instance.job(i).work / relaxed.speeds.get(i))
        .collect();

    let mut order: Vec<usize> = (0..instance.len()).collect();
    match rounding {
        RoundingOrder::EarliestDeadline => order.sort_by(|&a, &b| {
            let (ja, jb) = (instance.job(a), instance.job(b));
            ja.deadline
                .total_cmp(&jb.deadline)
                .then(ja.release.total_cmp(&jb.release))
                .then(ja.id.cmp(&jb.id))
        }),
        RoundingOrder::Release => order.sort_by(|&a, &b| {
            let (ja, jb) = (instance.job(a), instance.job(b));
            ja.release
                .total_cmp(&jb.release)
                .then(ja.deadline.total_cmp(&jb.deadline))
                .then(ja.id.cmp(&jb.id))
        }),
        RoundingOrder::LongestRelaxedTime => order.sort_by(|&a, &b| {
            p[b].total_cmp(&p[a])
                .then(instance.job(a).id.cmp(&instance.job(b).id))
        }),
    }

    let m = instance.machines();
    let mut machine_of = vec![0usize; instance.len()];
    // Per machine, the placed jobs (to evaluate window-overlap load).
    let mut placed: Vec<Vec<usize>> = vec![Vec::new(); m];
    for &i in &order {
        let job = instance.job(i);
        let mut best = (0usize, f64::INFINITY);
        #[allow(clippy::needless_range_loop)]
        for machine in 0..m {
            // Load relevant to `i`: total relaxed processing time of placed
            // jobs whose windows overlap i's window.
            let overlap_load: f64 = placed[machine]
                .iter()
                .filter(|&&k| {
                    let other = instance.job(k);
                    other.release < job.deadline && job.release < other.deadline
                })
                .map(|&k| p[k])
                .sum();
            if overlap_load < best.1 {
                best = (machine, overlap_load);
            }
        }
        machine_of[i] = best.0;
        placed[best.0].push(i);
    }
    Assignment::new(machine_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::assignment_energy;
    use crate::exact::exact_nonmigratory;
    use ssp_model::{Instance, Job};
    use ssp_workloads::families;

    /// The paper's approximation factor for the unit-work regime.
    fn bound(m: usize, alpha: f64) -> f64 {
        2.0 * (2.0 - 1.0 / m as f64).powf(alpha)
    }

    #[test]
    fn stays_within_the_paper_bound_against_the_migratory_lb() {
        for (seed, m, alpha) in [(1u64, 2usize, 2.0), (2, 4, 2.0), (3, 2, 3.0), (4, 8, 1.5)] {
            let inst = families::unit_arbitrary(24, m, alpha).gen(seed);
            let e = assignment_energy(&inst, &relax_round(&inst));
            let lb = ssp_migratory::bal::bal(&inst).energy;
            let ratio = e / lb;
            assert!(ratio >= 1.0 - 1e-6, "ratio {ratio} below 1");
            assert!(
                ratio <= bound(m, alpha),
                "seed {seed}: ratio {ratio} exceeds paper bound {}",
                bound(m, alpha)
            );
        }
    }

    #[test]
    fn close_to_exact_on_small_instances() {
        for seed in [10u64, 20, 30] {
            let inst = families::unit_arbitrary(9, 2, 2.0).gen(seed);
            let approx = assignment_energy(&inst, &relax_round(&inst));
            let opt = exact_nonmigratory(&inst).energy;
            let ratio = approx / opt;
            assert!(ratio >= 1.0 - 1e-9, "approx beat exact: {ratio}");
            assert!(ratio <= bound(2, 2.0), "ratio {ratio} out of bound");
        }
    }

    #[test]
    fn all_jobs_assigned_within_machine_range() {
        let inst = families::unit_arbitrary(30, 5, 2.0).gen(77);
        let a = relax_round(&inst);
        assert_eq!(a.len(), 30);
        assert!(a.as_slice().iter().all(|&p| p < 5));
    }

    #[test]
    fn single_machine_is_just_yds() {
        let jobs = vec![
            Job::new(0, 1.0, 0.0, 2.0),
            Job::new(1, 1.0, 1.0, 3.0),
            Job::new(2, 1.0, 0.5, 4.0),
        ];
        let inst = Instance::new(jobs.clone(), 1, 2.0).unwrap();
        let e = assignment_energy(&inst, &relax_round(&inst));
        let yds = ssp_single::yds::yds(&jobs, 2.0).energy;
        assert!((e - yds).abs() < 1e-9);
    }

    #[test]
    fn disjoint_windows_get_spread() {
        // Two machines, pairs of simultaneous tight unit jobs: the relaxed
        // optimum needs both machines, and rounding must not pile a pair on
        // one machine.
        let jobs: Vec<Job> = (0..8)
            .map(|k| Job::new(k, 1.0, (k / 2) as f64 * 5.0, (k / 2) as f64 * 5.0 + 1.0))
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let a = relax_round(&inst);
        for pair in 0..4 {
            assert_ne!(
                a.machine_of(2 * pair),
                a.machine_of(2 * pair + 1),
                "pair {pair} piled on one machine"
            );
        }
        assert!((assignment_energy(&inst, &a) - 8.0).abs() < 1e-6);
    }
}
