//! Adversarial gadget families for the NP-hard regime (unit works, arbitrary
//! windows, `m ≥ 2`).
//!
//! The paper proves NP-hardness of the unit-work problem with general release
//! dates and deadlines. The families below exercise the structures that make
//! the problem combinatorially hard and are used by EXP-2 to (a) show the
//! exact solver's node count growing exponentially while heuristic/optimal
//! gaps stay, and (b) stress the approximation algorithms exactly where their
//! analysis is tight:
//!
//! * [`interlock`] — `k` *interlocked triples*: two tight unit jobs sharing a
//!   window plus one wide job straddling two neighboring windows. Any
//!   assignment must thread the wide jobs between the tight pairs; greedy
//!   orderings routinely misplace them.
//! * [`crossing`] — laddered half-overlapping windows (the minimal
//!   non-agreeable pattern, `r` increasing while `d` interleaves), densified
//!   so machine parity matters.

use crate::assignment::Assignment;
use ssp_model::{Instance, Job};

/// The PARTITION reduction for *weighted* jobs (the textbook hardness
/// witness for non-migratory speed scaling): numbers `a_1..a_k` become `k`
/// jobs with works `a_i` sharing the common window `[0, 1]` on 2 machines.
///
/// For a fixed assignment with per-machine loads `L_1, L_2` the optimal
/// energy is `L_1^α + L_2^α` (each machine runs at constant speed = its
/// load). By strict convexity this is minimized exactly by the most balanced
/// split, so the instance's optimum equals `2·(Σa/2)^α` **iff** a perfect
/// partition exists — deciding the optimum decides PARTITION.
pub fn from_partition(numbers: &[f64], alpha: f64) -> Instance {
    assert!(!numbers.is_empty(), "PARTITION needs at least one number");
    let jobs: Vec<Job> = numbers
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            assert!(a > 0.0, "PARTITION numbers must be positive");
            Job::new(i as u32, a, 0.0, 1.0)
        })
        .collect();
    Instance::new(jobs, 2, alpha).expect("reduction jobs are valid")
}

/// Read a 2-partition back out of an assignment for a [`from_partition`]
/// instance: the indices on machine 0 and the two load sums.
pub fn partition_of(instance: &Instance, assignment: &Assignment) -> (Vec<usize>, f64, f64) {
    let mut side0 = Vec::new();
    let (mut l0, mut l1) = (0.0, 0.0);
    for i in 0..instance.len() {
        if assignment.machine_of(i) == 0 {
            side0.push(i);
            l0 += instance.job(i).work;
        } else {
            l1 += instance.job(i).work;
        }
    }
    (side0, l0, l1)
}

/// The energy a perfect partition would achieve: `2 · (Σ w / 2)^α`.
/// The exact optimum matches this value iff the underlying PARTITION
/// instance is a YES instance.
pub fn perfect_partition_energy(instance: &Instance) -> f64 {
    let half = instance.total_work() / 2.0;
    2.0 * half.powf(instance.alpha())
}

/// `k` interlocked triples on `m` machines (3k unit jobs). Windows:
/// pair `g`: two tight jobs on `[3g+0.5, 3g+1.5]`, *nested inside* the wide
/// job `g` on `[3g, 3(g+1)]` — released earlier, due later, so the instance
/// is strictly non-agreeable.
pub fn interlock(k: usize, machines: usize, alpha: f64) -> Instance {
    let mut jobs = Vec::with_capacity(3 * k);
    let mut id = 0u32;
    for g in 0..k {
        let base = 3.0 * g as f64;
        for _ in 0..2 {
            jobs.push(Job::new(id, 1.0, base + 0.5, base + 1.5));
            id += 1;
        }
        jobs.push(Job::new(id, 1.0, base, base + 3.0));
        id += 1;
    }
    Instance::new(jobs, machines, alpha).expect("gadget jobs are valid")
}

/// A crossing ladder: `n` unit jobs, job `i` has window
/// `[i·step, i·step + width]` with `width > step` so consecutive windows
/// overlap; odd jobs get their deadline pulled *earlier* than the preceding
/// even job's (nested/crossing structure ⇒ not agreeable).
pub fn crossing(n: usize, machines: usize, alpha: f64) -> Instance {
    let step = 1.0;
    let width = 2.5;
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let r = i as f64 * step;
            let d = if i % 2 == 1 {
                r + width * 0.5
            } else {
                r + width
            };
            Job::new(i as u32, 1.0, r, d)
        })
        .collect();
    Instance::new(jobs, machines, alpha).expect("gadget jobs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::assignment_energy;
    use crate::exact::exact_nonmigratory;
    use crate::rr::rr_assignment;

    #[test]
    fn partition_yes_instance_reaches_the_perfect_energy() {
        // {3, 1, 1, 2, 2, 1} splits into {3,2} vs {1,1,2,1}: both sum 5.
        let inst = from_partition(&[3.0, 1.0, 1.0, 2.0, 2.0, 1.0], 2.0);
        let sol = exact_nonmigratory(&inst);
        let perfect = perfect_partition_energy(&inst);
        assert!(
            (sol.energy - perfect).abs() <= 1e-9 * perfect,
            "YES instance must reach 2*(S/2)^a: {} vs {perfect}",
            sol.energy
        );
        // And the assignment decodes to an actual perfect partition.
        let (_, l0, l1) = partition_of(&inst, &sol.assignment);
        assert!((l0 - l1).abs() < 1e-9, "loads {l0} vs {l1}");
    }

    #[test]
    fn partition_no_instance_stays_strictly_above() {
        // {3, 1, 1} sums to 5 (odd-ish split impossible: best is 3 vs 2).
        let inst = from_partition(&[3.0, 1.0, 1.0], 2.0);
        let sol = exact_nonmigratory(&inst);
        let perfect = perfect_partition_energy(&inst);
        assert!(
            sol.energy > perfect * (1.0 + 1e-6),
            "NO instance must sit strictly above the perfect energy"
        );
        // Best split 3 vs 2: energy 9 + 4 = 13 at alpha 2.
        assert!((sol.energy - 13.0).abs() < 1e-9);
    }

    #[test]
    fn partition_reduction_decides_several_instances() {
        let cases: &[(&[f64], bool)] = &[
            (&[1.0, 1.0], true),
            (&[2.0, 1.0, 1.0], true),
            (&[5.0, 4.0, 3.0, 2.0, 2.0], true), // 5+3 = 4+2+2
            (&[7.0, 1.0, 1.0], false),
            (&[2.0, 2.0, 3.0], false),
        ];
        for &(numbers, expect_yes) in cases {
            let inst = from_partition(numbers, 2.0);
            let sol = exact_nonmigratory(&inst);
            let perfect = perfect_partition_energy(&inst);
            let is_yes = (sol.energy - perfect).abs() <= 1e-9 * perfect;
            assert_eq!(is_yes, expect_yes, "{numbers:?}");
        }
    }

    #[test]
    fn migratory_relaxation_erases_the_hardness() {
        // With migration, works split fractionally across machines
        // (water-filling), independent of partitionability — exactly why the
        // lower bound is polynomial while OPT is NP-hard. {2,2,3} at α=2:
        // migratory water-fills everything at speed 3.5 (E = 24.5) while the
        // best integer split is 4 vs 3 (E = 25).
        let inst = from_partition(&[2.0, 2.0, 3.0], 2.0);
        let mig = ssp_migratory::bal::bal(&inst).energy;
        let exact = exact_nonmigratory(&inst).energy;
        assert!(
            (mig - 24.5).abs() < 1e-6 * 24.5,
            "water-filled optimum: {mig}"
        );
        assert!((exact - 25.0).abs() < 1e-9, "best split: {exact}");
        assert!(mig < exact * (1.0 - 1e-9));
    }

    #[test]
    fn gadgets_are_unit_work_and_not_agreeable() {
        let a = interlock(3, 2, 2.0);
        assert!(a.is_uniform_work(Default::default()));
        assert!(!a.is_agreeable(), "interlock must leave the easy regime");
        let b = crossing(8, 2, 2.0);
        assert!(b.is_uniform_work(Default::default()));
        assert!(!b.is_agreeable(), "crossing must leave the easy regime");
    }

    #[test]
    fn interlock_sizes() {
        let inst = interlock(4, 2, 2.0);
        assert_eq!(inst.len(), 12);
        assert_eq!(inst.horizon(), Some((0.0, 12.0)));
    }

    #[test]
    fn rr_is_suboptimal_on_gadgets() {
        // The whole point of the gadgets: sorted RR (optimal in the agreeable
        // regime) loses measurably once windows cross.
        let inst = crossing(9, 2, 2.0);
        let rr = assignment_energy(&inst, &rr_assignment(&inst));
        let opt = exact_nonmigratory(&inst).energy;
        assert!(
            rr > opt * (1.0 + 1e-6),
            "expected a strict RR gap on the crossing gadget: rr={rr} opt={opt}"
        );
    }

    #[test]
    fn exact_node_counts_grow_with_k() {
        let n1 = exact_nonmigratory(&interlock(2, 2, 2.0)).nodes;
        let n2 = exact_nonmigratory(&interlock(4, 2, 2.0)).nodes;
        assert!(n2 > n1, "search should grow with gadget size: {n1} -> {n2}");
    }

    #[test]
    fn gadgets_remain_feasible_for_all_algorithms() {
        use ssp_model::schedule::ValidationOptions;
        let inst = interlock(3, 2, 2.0);
        for schedule in [
            crate::rr::rr_yds(&inst),
            crate::classified::classified_rr(&inst),
            crate::assignment::assignment_schedule(&inst, &crate::relax::relax_round(&inst)),
        ] {
            schedule
                .validate(&inst, ValidationOptions::non_migratory())
                .unwrap();
        }
    }
}
