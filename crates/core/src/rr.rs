//! Sorted round-robin — the paper's optimal algorithm for unit-work jobs
//! with agreeable deadlines (R1).
//!
//! Sort jobs by `(release, deadline, id)` and deal them to machines in
//! round-robin order (`k`-th job → machine `k mod m`); then run YDS on every
//! machine. For unit works and agreeable deadlines this is **optimal**: on
//! agreeable instances the sorted order interleaves the machines' alive sets
//! as evenly as possible, and an exchange argument shows no assignment does
//! better. The experiment suite validates optimality against the exponential
//! exact solver (`EXP-1`).
//!
//! On instances *outside* that regime `rr_yds` is still a well-defined
//! heuristic (and a useful baseline); it just loses its optimality proof.

use crate::assignment::{assignment_schedule, Assignment};
use ssp_model::{Instance, Schedule};

/// The sorted round-robin assignment.
pub fn rr_assignment(instance: &Instance) -> Assignment {
    let _span = ssp_probe::span("assign.rr");
    ssp_probe::counter!("assign.rr_passes");
    let order = instance.release_order();
    let m = instance.machines();
    let mut machine_of = vec![0usize; instance.len()];
    for (k, &i) in order.iter().enumerate() {
        machine_of[i] = k % m;
    }
    Assignment::new(machine_of)
}

/// Round-robin assignment followed by per-machine YDS. Optimal for
/// unit-work agreeable instances; a heuristic otherwise. The per-machine
/// solves run the fast pruned kernel behind `ssp_single::yds::yds` (via
/// [`assignment_schedule`]), so this stays cheap even at large `n`.
pub fn rr_yds(instance: &Instance) -> Schedule {
    assignment_schedule(instance, &rr_assignment(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::assignment_energy;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::{Instance, Job};
    use ssp_workloads::families;

    #[test]
    fn deals_in_sorted_order() {
        let inst = Instance::new(
            vec![
                Job::new(0, 1.0, 2.0, 4.0),
                Job::new(1, 1.0, 0.0, 2.0),
                Job::new(2, 1.0, 1.0, 3.0),
                Job::new(3, 1.0, 3.0, 5.0),
            ],
            2,
            2.0,
        )
        .unwrap();
        let a = rr_assignment(&inst);
        // Sorted by release: 1, 2, 0, 3 → machines 0, 1, 0, 1.
        assert_eq!(a.machine_of(1), 0);
        assert_eq!(a.machine_of(2), 1);
        assert_eq!(a.machine_of(0), 0);
        assert_eq!(a.machine_of(3), 1);
    }

    #[test]
    fn single_machine_reduces_to_yds() {
        let jobs = vec![
            Job::new(0, 1.0, 0.0, 2.0),
            Job::new(1, 1.0, 0.5, 2.5),
            Job::new(2, 1.0, 1.0, 3.0),
        ];
        let inst = Instance::new(jobs.clone(), 1, 2.0).unwrap();
        let s = rr_yds(&inst);
        let e_yds = ssp_single::yds::yds(&jobs, 2.0).energy;
        assert!((s.energy(2.0) - e_yds).abs() < 1e-9);
    }

    #[test]
    fn schedule_is_valid_and_non_migratory() {
        let inst = families::unit_agreeable(24, 3, 2.0).gen(7);
        let s = rr_yds(&inst);
        s.validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
    }

    #[test]
    fn disjoint_batches_spread_across_machines() {
        // 2 machines, batches of 2 simultaneous unit jobs: RR puts each
        // batch's jobs on different machines — clearly optimal.
        let jobs: Vec<Job> = (0..6)
            .map(|k| Job::new(k, 1.0, (k / 2) as f64 * 10.0, (k / 2) as f64 * 10.0 + 1.0))
            .collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let a = rr_assignment(&inst);
        for batch in 0..3 {
            assert_ne!(a.machine_of(2 * batch), a.machine_of(2 * batch + 1));
        }
        // Energy: 6 unit jobs each alone in a unit window at speed 1.
        assert!((assignment_energy(&inst, &a) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn matches_migratory_lower_bound_on_unit_agreeable() {
        // On unit agreeable instances RR-YDS is optimal, and in every case we
        // generate it actually meets the *migratory* lower bound too.
        for seed in [1u64, 2, 3] {
            let inst = families::unit_agreeable(16, 2, 2.0).gen(seed);
            let e_rr = assignment_energy(&inst, &rr_assignment(&inst));
            let lb = ssp_migratory::bal::bal(&inst).energy;
            assert!(
                e_rr >= lb - 1e-6 * lb,
                "seed {seed}: RR {e_rr} below the migratory lower bound {lb}"
            );
            assert!(
                e_rr <= lb * (1.0 + 5e-2),
                "seed {seed}: RR {e_rr} unexpectedly far above migratory LB {lb}"
            );
        }
    }
}
