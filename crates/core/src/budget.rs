//! Makespan minimization under an energy budget, **without migration** —
//! the non-migratory analog of `ssp_migratory::mbal`.
//!
//! Same outer structure (binary search over a common deadline `X`), but the
//! inner feasibility question — "is there a non-migratory schedule finishing
//! by `X` with energy ≤ E?" — is NP-hard, so the inner solver is pluggable:
//! the marginal-energy greedy by default (upper-bounding the optimum ⇒ the
//! returned makespan is *achievable*, possibly not minimal), or the exact
//! solver for `n ≤ 16` (then the result is optimal).
//!
//! Sandwich guarantee used by the tests: with `X_mig` the migratory optimum
//! and `X_greedy`/`X_exact` the results here,
//! `X_mig ≤ X_exact ≤ X_greedy`, with equality of all three at `m = 1`
//! (a single machine cannot migrate).

use crate::assignment::{assignment_energy, assignment_schedule, Assignment};
use crate::exact::exact_nonmigratory;
use crate::list::marginal_energy_greedy;
use ssp_model::numeric::bisect_threshold;
use ssp_model::{Instance, Schedule};

/// Inner assignment solver used by the makespan search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerSolver {
    /// Marginal-energy greedy (polynomial; result is an achievable upper
    /// bound on the minimal makespan).
    Greedy,
    /// Exact branch-and-bound (exponential, `n ≤ 16`; result is optimal).
    Exact,
}

/// Result of the non-migratory budgeted-makespan search.
#[derive(Debug, Clone)]
pub struct BudgetSolution {
    /// The makespan found (minimal for [`InnerSolver::Exact`]).
    pub makespan: f64,
    /// The assignment realizing it.
    pub assignment: Assignment,
    /// Energy of that assignment on the clamped instance (`<= budget`).
    pub energy: f64,
    /// The instance clamped at the final makespan.
    pub clamped: Instance,
}

impl BudgetSolution {
    /// Materialize the schedule achieving the makespan.
    pub fn schedule(&self) -> Schedule {
        assignment_schedule(&self.clamped, &self.assignment)
    }
}

/// Minimize makespan under energy budget `E` without migration. Deadlines in
/// `instance` act as additional constraints. Returns `None` when even an
/// unbounded makespan cannot meet the budget (hard deadlines force more
/// energy), mirroring `mbal`.
pub fn makespan_under_budget(
    instance: &Instance,
    budget: f64,
    solver: InnerSolver,
) -> Option<BudgetSolution> {
    assert!(
        budget > 0.0 && budget.is_finite(),
        "budget must be positive"
    );
    if instance.is_empty() {
        return Some(BudgetSolution {
            makespan: 0.0,
            assignment: Assignment::new(vec![]),
            energy: 0.0,
            clamped: instance.clone(),
        });
    }
    if solver == InnerSolver::Exact {
        assert!(instance.len() <= 16, "exact inner solver is for n <= 16");
    }

    let energy_at = |x: f64| -> Option<(f64, Assignment)> {
        let clamped = instance.clamp_deadlines(x).ok()?;
        let assignment = match solver {
            InnerSolver::Greedy => marginal_energy_greedy(&clamped),
            InnerSolver::Exact => exact_nonmigratory(&clamped).assignment,
        };
        Some((assignment_energy(&clamped, &assignment), assignment))
    };
    let feasible =
        |x: f64| -> bool { energy_at(x).is_some_and(|(e, _)| e <= budget * (1.0 + 1e-9)) };

    // Bounds as in MBAL: serial execution after the last release always
    // works; perfect parallelism lower-bounds.
    let w = instance.total_work();
    let alpha = instance.alpha();
    let serial = (w.powf(alpha) / budget).powf(1.0 / (alpha - 1.0));
    let max_release = instance
        .jobs()
        .iter()
        .map(|j| j.release)
        .fold(f64::NEG_INFINITY, f64::max);
    let x_lb = (serial / instance.machines() as f64).max(1e-12);
    let mut x_ub = max_release + serial;
    let mut guard = 0;
    while !feasible(x_ub) {
        // Existing hard deadlines may cap what any makespan can achieve.
        if guard >= 64 {
            return None;
        }
        x_ub = max_release + (x_ub - max_release) * 2.0;
        guard += 1;
        // Beyond the latest original deadline, growing X changes nothing.
        if let Some((_, hi)) = instance.horizon() {
            if x_ub > hi * 4.0 + serial * 1e6 {
                return None;
            }
        }
    }
    let lo = x_lb.min(x_ub).max(max_release * (1.0 + 1e-15));
    let (_, x) = bisect_threshold(lo, x_ub, 1e-11, feasible);
    let clamped = instance
        .clamp_deadlines(x)
        .expect("feasible x clamps validly");
    let (energy, assignment) = energy_at(x).expect("feasible x evaluates");
    Some(BudgetSolution {
        makespan: x,
        assignment,
        energy,
        clamped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_migratory::mbal::mbal;
    use ssp_model::{Instance, Job};

    fn free(jobs: Vec<(f64, f64)>, m: usize, alpha: f64) -> Instance {
        let jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (w, r))| Job::new(i as u32, w, r, 1e7))
            .collect();
        Instance::new(jobs, m, alpha).unwrap()
    }

    #[test]
    fn single_machine_matches_migratory_mbal() {
        // m = 1: migration is meaningless, so the exact non-migratory search
        // and MBAL must agree.
        let inst = free(vec![(2.0, 0.0), (1.0, 0.5), (1.5, 1.2)], 1, 2.0);
        let budget = 6.0;
        let nonmig = makespan_under_budget(&inst, budget, InnerSolver::Exact).unwrap();
        let mig = mbal(&inst, budget).unwrap();
        assert!(
            (nonmig.makespan - mig.makespan).abs() <= 1e-6 * mig.makespan,
            "m=1: {} vs {}",
            nonmig.makespan,
            mig.makespan
        );
    }

    #[test]
    fn sandwich_against_migratory_and_greedy() {
        let inst = free(vec![(1.0, 0.0), (2.0, 0.2), (0.7, 0.8), (1.3, 1.0)], 2, 2.5);
        let budget = 8.0;
        let mig = mbal(&inst, budget).unwrap().makespan;
        let exact = makespan_under_budget(&inst, budget, InnerSolver::Exact)
            .unwrap()
            .makespan;
        let greedy = makespan_under_budget(&inst, budget, InnerSolver::Greedy)
            .unwrap()
            .makespan;
        assert!(
            mig <= exact * (1.0 + 1e-6),
            "migration can only shorten: {mig} vs {exact}"
        );
        assert!(
            exact <= greedy * (1.0 + 1e-6),
            "exact beats greedy: {exact} vs {greedy}"
        );
    }

    #[test]
    fn monotone_in_budget_and_budget_respected() {
        let inst = free(vec![(2.0, 0.0), (1.0, 0.1), (3.0, 0.5)], 2, 2.0);
        let mut prev = f64::INFINITY;
        for budget in [3.0, 6.0, 12.0, 24.0] {
            let sol = makespan_under_budget(&inst, budget, InnerSolver::Greedy).unwrap();
            assert!(sol.energy <= budget * (1.0 + 1e-6));
            assert!(sol.makespan <= prev * (1.0 + 1e-9));
            prev = sol.makespan;
            // The schedule is real and non-migratory.
            let stats = sol
                .schedule()
                .validate(
                    &sol.clamped,
                    ssp_model::schedule::ValidationOptions::non_migratory(),
                )
                .unwrap();
            assert!(stats.makespan <= sol.makespan * (1.0 + 1e-9));
        }
    }

    #[test]
    fn impossible_budget_under_hard_deadlines() {
        let inst = Instance::new(vec![Job::new(0, 2.0, 0.0, 1.0)], 1, 2.0).unwrap();
        // Deadline forces E >= 4.
        assert!(makespan_under_budget(&inst, 3.9, InnerSolver::Exact).is_none());
        assert!(makespan_under_budget(&inst, 4.1, InnerSolver::Exact).is_some());
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 3, 2.0).unwrap();
        let sol = makespan_under_budget(&inst, 1.0, InnerSolver::Greedy).unwrap();
        assert_eq!(sol.makespan, 0.0);
    }
}
