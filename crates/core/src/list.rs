//! List-scheduling assignment baselines.
//!
//! Two simple policies used throughout the experiments as comparison points
//! for the paper's algorithms:
//!
//! * [`least_loaded`] — Graham-style: jobs in release order, each to the
//!   machine with the smallest total assigned *work*. The `(2 - 1/m)` flavor
//!   of list scheduling is also the rounding step inside [`crate::relax`].
//! * [`marginal_energy_greedy`] — jobs in release order, each to the machine
//!   whose YDS energy increases the least. Stronger but `O(n·m)` YDS calls.

use crate::assignment::Assignment;
use crate::eval::YdsEval;
use ssp_model::Instance;

/// Least-total-work list assignment in release order.
pub fn least_loaded(instance: &Instance) -> Assignment {
    let _span = ssp_probe::span("assign.least_loaded");
    ssp_probe::counter!("assign.least_loaded_passes");
    let mut machine_of = vec![0usize; instance.len()];
    let mut load = vec![0.0f64; instance.machines()];
    for &i in &instance.release_order() {
        let best = argmin(&load);
        machine_of[i] = best;
        load[best] += instance.job(i).work;
    }
    Assignment::new(machine_of)
}

/// Greedy marginal-energy assignment in release order: place each job on the
/// machine where the per-machine YDS energy grows the least. Placements are
/// priced through the [`YdsEval`] oracle, so each trial append is one
/// memoized YDS call instead of a `Vec<Job>` push/solve/pop round trip.
pub fn marginal_energy_greedy(instance: &Instance) -> Assignment {
    let _span = ssp_probe::span("assign.greedy");
    ssp_probe::counter!("assign.greedy_passes");
    let m = instance.machines();
    let mut machine_of = vec![0usize; instance.len()];
    let mut eval = YdsEval::new(instance);
    for &i in &instance.release_order() {
        let mut best = (0usize, f64::INFINITY);
        for p in 0..m {
            let delta = eval.energy_with(p, i) - eval.machine_energy(p);
            if delta < best.1 {
                best = (p, delta);
            }
        }
        machine_of[i] = best.0;
        eval.add(i, best.0);
    }
    Assignment::new(machine_of)
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::assignment_energy;
    use ssp_model::{Instance, Job};
    use ssp_workloads::families;

    #[test]
    fn least_loaded_balances_work() {
        let inst = Instance::new(
            vec![
                Job::new(0, 4.0, 0.0, 10.0),
                Job::new(1, 1.0, 0.0, 10.0),
                Job::new(2, 1.0, 0.0, 10.0),
                Job::new(3, 1.0, 0.0, 10.0),
            ],
            2,
            2.0,
        )
        .unwrap();
        let a = least_loaded(&inst);
        // Job 0 (w=4) alone on one side; jobs 1-3 on the other.
        let g = a.groups(2);
        let loads: Vec<f64> = g
            .iter()
            .map(|grp| grp.iter().map(|&i| inst.job(i).work).sum())
            .collect();
        assert_eq!(loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max), 4.0);
    }

    #[test]
    fn greedy_never_worse_than_single_machine_pileup() {
        let inst = families::general(12, 3, 2.0).gen(1);
        let greedy = assignment_energy(&inst, &marginal_energy_greedy(&inst));
        let pileup = assignment_energy(&inst, &Assignment::new(vec![0; 12]));
        assert!(greedy <= pileup * (1.0 + 1e-9));
    }

    #[test]
    fn greedy_at_least_matches_least_loaded_often() {
        // Not a theorem — just a regression guard on a fixed seed where the
        // energy-aware policy should beat blind work balancing.
        let inst = families::general(16, 2, 2.5).gen(42);
        let g = assignment_energy(&inst, &marginal_energy_greedy(&inst));
        let l = assignment_energy(&inst, &least_loaded(&inst));
        assert!(g <= l * 1.05, "greedy {g} much worse than least-loaded {l}");
    }

    #[test]
    fn policies_respect_machine_count() {
        let inst = families::general(9, 4, 2.0).gen(3);
        for a in [least_loaded(&inst), marginal_energy_greedy(&inst)] {
            assert!(a.as_slice().iter().all(|&p| p < 4));
            assert_eq!(a.len(), 9);
        }
    }

    #[test]
    fn single_machine_trivial() {
        let inst = families::general(5, 1, 2.0).gen(8);
        let a = least_loaded(&inst);
        assert!(a.as_slice().iter().all(|&p| p == 0));
    }
}
