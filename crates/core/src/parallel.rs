//! Parallel exact search: the branch-and-bound of [`crate::exact`]
//! parallelized over top-level subtrees with a shared atomic incumbent.
//!
//! The sequential solver explores a restricted-growth assignment tree with
//! energy-monotone pruning. Parallelization: expand the tree breadth-first
//! to a frontier of a few hundred prefixes, then process the frontier's
//! subtrees on scoped threads. The incumbent bound is shared through an
//! `AtomicU64` (f64 bits; monotone decreasing updates via compare-exchange),
//! so pruning strength is nearly identical to the sequential run — every
//! thread sees improvements from every other thread immediately.
//!
//! Determinism: the *result value* is deterministic (the optimum); the
//! reported assignment may differ between runs among energy-ties, exactly as
//! for any tie in the sequential enumeration order.

use crate::assignment::{assignment_energy, Assignment};
use crate::eval::YdsEval;
use crate::exact::ExactSolution;
use ssp_model::Instance;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shared monotone-decreasing f64 stored as ordered bits.
struct AtomicBest {
    bits: AtomicU64,
}

impl AtomicBest {
    fn new(v: f64) -> Self {
        AtomicBest {
            bits: AtomicU64::new(v.to_bits()),
        }
    }
    fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
    /// Lower the bound to `v` if it improves; returns whether it did.
    fn try_lower(&self, v: f64) -> bool {
        let mut current = self.bits.load(Ordering::Acquire);
        loop {
            if v >= f64::from_bits(current) {
                return false;
            }
            match self.bits.compare_exchange_weak(
                current,
                v.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }
}

/// A frontier node: an assignment prefix plus its per-machine state.
#[derive(Clone)]
struct Prefix {
    /// Machine per rank, for ranks `0..depth`.
    assigned: Vec<usize>,
    /// Machines used so far (restricted growth bound).
    used: usize,
    /// Per-machine partial energies.
    machine_energy: Vec<f64>,
    /// Total partial energy.
    total: f64,
}

/// Parallel exact non-migratory optimum. Same contract as
/// [`crate::exact::exact_nonmigratory`] (panics for `n > 16`); uses all
/// available cores. `nodes` aggregates across threads.
pub fn exact_nonmigratory_parallel(instance: &Instance) -> ExactSolution {
    let n = instance.len();
    assert!(
        n <= 16,
        "exact solver is for ground truth on small n (got {n})"
    );
    let m = instance.machines();
    if n == 0 {
        return ExactSolution {
            assignment: Assignment::new(vec![]),
            energy: 0.0,
            nodes: 0,
        };
    }
    let order = instance.release_order();

    // Breadth-first expansion to a frontier of subtree roots.
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let target_frontier = (threads * 16).max(32);
    let mut frontier = vec![Prefix {
        assigned: Vec::new(),
        used: 0,
        machine_energy: vec![0.0; m],
        total: 0.0,
    }];
    // One oracle prices the whole expansion: sibling prefixes share machine
    // contents, so most `list_energy` calls below are memo hits.
    let mut expand_eval = YdsEval::new(instance);
    let mut list: Vec<u32> = Vec::new();
    while frontier.len() < target_frontier && frontier[0].assigned.len() < n {
        let mut next = Vec::with_capacity(frontier.len() * m);
        for p in frontier {
            for machine in 0..(p.used + 1).min(m) {
                let mut q = p.clone();
                q.assigned.push(machine);
                q.used = q.used.max(machine + 1);
                // Price the receiving machine's jobs (the new job is
                // included via the assignment filter).
                list.clear();
                list.extend(
                    q.assigned
                        .iter()
                        .enumerate()
                        .filter(|&(_, &mm)| mm == machine)
                        .map(|(rank, _)| order[rank] as u32),
                );
                let e = expand_eval.list_energy(&list);
                q.total = q.total - q.machine_energy[machine] + e;
                q.machine_energy[machine] = e;
                next.push(q);
            }
        }
        frontier = next;
    }

    // Shared incumbent, seeded by a cheap greedy so early pruning bites.
    let greedy = crate::list::least_loaded(instance);
    let best = AtomicBest::new(assignment_energy(instance, &greedy));
    let best_assignment: Mutex<Vec<usize>> =
        Mutex::new(order.iter().map(|&i| greedy.machine_of(i)).collect());
    let nodes = AtomicUsize::new(0);
    let next_item = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(frontier.len()) {
            scope.spawn(|| {
                // Per-thread oracle: the memo persists across the frontier
                // items this thread drains, so subtrees re-entering the same
                // machine contents skip the YDS call entirely.
                let mut eval = YdsEval::new(instance);
                let mut local_nodes = 0usize;
                loop {
                    let k = next_item.fetch_add(1, Ordering::Relaxed);
                    if k >= frontier.len() {
                        break;
                    }
                    let p = &frontier[k];
                    if p.total < best.get() {
                        for (rank, &mm) in p.assigned.iter().enumerate() {
                            eval.add(order[rank], mm);
                        }
                        let mut current = p.assigned.clone();
                        dfs(
                            &order,
                            m,
                            &mut current,
                            &mut eval,
                            p.used,
                            p.total,
                            &best,
                            &best_assignment,
                            &mut local_nodes,
                        );
                        for (rank, _) in p.assigned.iter().enumerate().rev() {
                            eval.remove(order[rank]);
                        }
                    }
                }
                nodes.fetch_add(local_nodes, Ordering::Relaxed);
            });
        }
    });

    let ranks = best_assignment.into_inner().unwrap();
    let mut machine_of = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        machine_of[i] = ranks[rank];
    }
    let assignment = Assignment::new(machine_of);
    let energy = assignment_energy(instance, &assignment);
    ExactSolution {
        assignment,
        energy,
        nodes: nodes.load(Ordering::Relaxed),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    order: &[usize],
    m: usize,
    current: &mut Vec<usize>,
    eval: &mut YdsEval<'_>,
    used: usize,
    total: f64,
    best: &AtomicBest,
    best_assignment: &Mutex<Vec<usize>>,
    nodes: &mut usize,
) {
    *nodes += 1;
    let rank = current.len();
    if rank == order.len() {
        // Take the lock *before* lowering the bound: otherwise another
        // thread could lower it further between our try_lower and our store,
        // and we would overwrite a better assignment with a worse one.
        let mut guard = best_assignment.lock().unwrap();
        if best.try_lower(total) {
            *guard = current.clone();
        }
        return;
    }
    let job_idx = order[rank];
    for machine in 0..(used + 1).min(m) {
        let old_energy = eval.machine_energy(machine);
        let new_energy = eval.energy_with(machine, job_idx);
        let new_total = total - old_energy + new_energy;
        if new_total < best.get() {
            current.push(machine);
            eval.add(job_idx, machine);
            dfs(
                order,
                m,
                current,
                eval,
                used.max(machine + 1),
                new_total,
                best,
                best_assignment,
                nodes,
            );
            eval.remove(job_idx);
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_nonmigratory;
    use ssp_workloads::families;

    #[test]
    fn matches_the_sequential_solver() {
        for seed in [1u64, 2, 3, 4] {
            let inst = families::general(10, 3, 2.0).gen(seed);
            let seq = exact_nonmigratory(&inst);
            let par = exact_nonmigratory_parallel(&inst);
            assert!(
                (seq.energy - par.energy).abs() <= 1e-9 * seq.energy,
                "seed {seed}: sequential {} vs parallel {}",
                seq.energy,
                par.energy
            );
            // The returned assignment really evaluates to the optimum.
            let e = assignment_energy(&inst, &par.assignment);
            assert!((e - par.energy).abs() <= 1e-9 * e);
        }
    }

    #[test]
    fn trivial_inputs() {
        let empty = ssp_model::Instance::new(vec![], 2, 2.0).unwrap();
        assert_eq!(exact_nonmigratory_parallel(&empty).energy, 0.0);
        let one = families::general(1, 3, 2.0).gen(9);
        let sol = exact_nonmigratory_parallel(&one);
        assert!((sol.energy - exact_nonmigratory(&one).energy).abs() < 1e-12);
    }

    #[test]
    fn deterministic_value_across_runs() {
        let inst = families::general(9, 2, 2.5).gen(13);
        let a = exact_nonmigratory_parallel(&inst).energy;
        let b = exact_nonmigratory_parallel(&inst).energy;
        assert_eq!(a, b);
    }

    #[test]
    fn atomic_best_lowers_monotonically() {
        let b = AtomicBest::new(10.0);
        assert!(b.try_lower(5.0));
        assert!(!b.try_lower(7.0));
        assert!(!b.try_lower(5.0));
        assert!(b.try_lower(4.9));
        assert_eq!(b.get(), 4.9);
    }

    #[test]
    #[should_panic(expected = "for ground truth on small n")]
    fn refuses_large_instances() {
        let inst = families::general(17, 2, 2.0).gen(0);
        exact_nonmigratory_parallel(&inst);
    }
}
