//! Local-search improvement of job→machine assignments.
//!
//! The constructive policies (RR, classified, relax-and-round, greedy) each
//! leave a few percent on the table; a standard move/swap local search with
//! per-machine YDS re-evaluation closes most of it. The search is exact
//! hill-climbing (first-improvement over a randomized move order), so the
//! result is a *local* optimum under the move set:
//!
//! * **move** — reassign one job to another machine;
//! * **swap** — exchange the machines of two jobs.
//!
//! Evaluation is incremental: a move touches two machines, so only their two
//! YDS energies are recomputed — and since PR 4 those recomputations go
//! through the [`crate::eval::YdsEval`] oracle, which memoizes per-machine
//! energies by ordered job list. The from-side of a move (shared by all
//! `m-1` targets), re-priced candidates of a stale pass, and the two sides
//! of a swap all become cache hits instead of fresh YDS runs; candidate
//! buffers (`job_order`, `machine_order`, `pairs`) are reused across passes
//! instead of reallocated per job. The RNG call sequence, the accept/reject
//! arithmetic, and the group-order evolution are identical to the retained
//! [`improve_reference`] implementation, so both produce the same transcript
//! and the same final assignment bit for bit (asserted by EXP-19). With
//! seeded randomization the search is deterministic, and it can never return
//! something worse than its seed assignment (asserted).

use crate::assignment::Assignment;
use crate::eval::{Candidate, YdsEval};
use ssp_model::resource::{Budget, CancelToken};
use ssp_model::{Instance, Job};
use ssp_prng::rngs::StdRng;
use ssp_prng::seq::SliceRandom;
use ssp_prng::SeedableRng;
use ssp_single::yds::yds_reference;
use std::time::{Duration, Instant};

/// Options for [`improve`].
#[derive(Debug, Clone)]
pub struct LocalSearchOptions {
    /// Stop after this many full passes without improvement (1 = plain
    /// hill-climbing to the first local optimum).
    pub max_stale_passes: usize,
    /// Upper bound on total moves examined (cost control for big instances).
    /// Strict: the search never evaluates more candidates than this.
    pub max_evaluations: usize,
    /// Wall-clock cap; `None` = unlimited. Like the evaluation cap this is
    /// an early-exit, not an error: the best assignment found so far is
    /// returned with [`LocalSearchResult::budget_exhausted`] set.
    pub max_time: Option<Duration>,
    /// Absolute deadline shared with the caller's other solver phases
    /// (`"deadline"` exhaustion); `None` = unlimited.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag polled at every candidate evaluation
    /// (`"cancelled"` exhaustion).
    pub cancel: Option<CancelToken>,
    /// RNG seed for the move order.
    pub seed: u64,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        LocalSearchOptions {
            max_stale_passes: 1,
            max_evaluations: 2_000_000,
            max_time: None,
            deadline: None,
            cancel: None,
            seed: 0x5EA7,
        }
    }
}

/// Result of a local search run.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// The improved assignment (== seed assignment if no move helped).
    pub assignment: Assignment,
    /// Its energy.
    pub energy: f64,
    /// Energy of the seed assignment.
    pub initial_energy: f64,
    /// Number of improving moves applied.
    pub improvements: usize,
    /// Number of candidate moves evaluated.
    pub evaluations: usize,
    /// Which budget stopped the search early (`"iterations"` for the
    /// evaluation cap, `"time"` for the wall-clock cap, `"deadline"` /
    /// `"cancelled"` for external interruption), if any. The result is
    /// still valid and no worse than the seed assignment.
    pub budget_exhausted: Option<&'static str>,
}

/// Hill-climb from `seed_assignment` under move+swap neighborhoods.
///
/// Candidate energies are priced through the [`YdsEval`] oracle; the search
/// trajectory (RNG sequence, accept/reject decisions, group orders) is
/// identical to [`improve_reference`]'s, only faster.
pub fn improve(
    instance: &Instance,
    seed_assignment: &Assignment,
    opts: LocalSearchOptions,
) -> LocalSearchResult {
    let _span = ssp_probe::span("local_search");
    let n = instance.len();
    let m = instance.machines();
    assert_eq!(seed_assignment.len(), n, "assignment length mismatch");

    let mut eval = YdsEval::with_assignment(instance, seed_assignment);
    let initial_energy: f64 = eval.total_energy();
    let mut total: f64 = initial_energy;

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut improvements = 0usize;
    let mut evaluations = 0usize;
    let mut stale = 0usize;
    let budget = Budget {
        max_iterations: Some(opts.max_evaluations as u64),
        max_time: opts.max_time,
        deadline: opts.deadline,
        cancel: opts.cancel.clone(),
    };
    let mut meter = budget.meter();

    // Candidate buffers, allocated once and refilled per pass/job. The
    // shuffles always start from the same deterministic contents the
    // reference implementation constructed, so RNG consumption matches.
    let mut job_order: Vec<usize> = Vec::with_capacity(n);
    let mut machine_order: Vec<usize> = Vec::with_capacity(m.saturating_sub(1));
    let mut pairs: Vec<(usize, usize)> = Vec::new();

    while stale < opts.max_stale_passes && meter.exhausted().is_none() && m > 1 {
        ssp_probe::counter!("local_search.passes");
        let mut improved_this_pass = false;

        // Move neighborhood.
        job_order.clear();
        job_order.extend(0..n);
        job_order.shuffle(&mut rng);
        for &i in &job_order {
            if meter.exhausted().is_some() {
                break;
            }
            let from = eval.machine_of(i);
            machine_order.clear();
            machine_order.extend((0..m).filter(|&p| p != from));
            machine_order.shuffle(&mut rng);
            for &to in &machine_order {
                if !meter.tick() {
                    break;
                }
                evaluations += 1;
                let mv = Candidate::Move { job: i, to };
                // A certified rejection proves the exact delta would fail
                // the accept test below, so skipping is transcript-neutral.
                if eval.certified_reject(mv) {
                    continue;
                }
                let delta = eval.delta_energy(mv);
                if delta < -1e-12 * total.max(1.0) {
                    eval.apply(mv);
                    total += delta;
                    improvements += 1;
                    improved_this_pass = true;
                    break;
                }
            }
        }

        // Swap neighborhood (random sample of pairs on different machines).
        pairs.clear();
        for a in 0..n {
            for b in (a + 1)..n {
                if eval.machine_of(a) != eval.machine_of(b) {
                    pairs.push((a, b));
                }
            }
        }
        pairs.shuffle(&mut rng);
        for &(a, b) in pairs.iter().take(4 * n) {
            // Earlier accepted swaps in this pass can put a sampled pair on
            // one machine; such a pair is no longer a swap — skip it.
            if eval.machine_of(a) == eval.machine_of(b) {
                continue;
            }
            if !meter.tick() {
                break;
            }
            evaluations += 1;
            let swap = Candidate::Swap { a, b };
            if eval.certified_reject(swap) {
                continue;
            }
            let delta = eval.delta_energy(swap);
            if delta < -1e-12 * total.max(1.0) {
                eval.apply(swap);
                total += delta;
                improvements += 1;
                improved_this_pass = true;
            }
        }

        if improved_this_pass {
            stale = 0;
        } else {
            stale += 1;
        }
    }

    ssp_probe::counter!("local_search.evaluations", evaluations as u64);
    ssp_probe::counter!("local_search.moves_accepted", improvements as u64);
    ssp_probe::counter!(
        "local_search.moves_rejected",
        (evaluations - improvements) as u64
    );
    ssp_probe::counter!("local_search.budget_used", meter.used());
    let assignment = eval.assignment();
    let energy_final = crate::assignment::assignment_energy(instance, &assignment);
    assert!(
        energy_final <= initial_energy * (1.0 + 1e-9),
        "local search made things worse: {energy_final} vs {initial_energy}"
    );
    LocalSearchResult {
        assignment,
        energy: energy_final,
        initial_energy,
        improvements,
        evaluations,
        budget_exhausted: meter.exhausted(),
    }
}

/// The pre-oracle implementation, retained verbatim as the differential
/// baseline: per candidate it materializes the touched machines' `Vec<Job>`
/// and re-runs the reference YDS peel from scratch. EXP-19 replays
/// identical seeds through this and [`improve`] and asserts identical final
/// energies with a ≥5× reduction in peel operations. Not for production use.
pub fn improve_reference(
    instance: &Instance,
    seed_assignment: &Assignment,
    opts: LocalSearchOptions,
) -> LocalSearchResult {
    let _span = ssp_probe::span("local_search");
    let n = instance.len();
    let m = instance.machines();
    let mut machine_of: Vec<usize> = seed_assignment.as_slice().to_vec();
    assert_eq!(machine_of.len(), n, "assignment length mismatch");

    // Per-machine job lists and energies.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (i, &p) in machine_of.iter().enumerate() {
        groups[p].push(i);
    }
    let eval = |group: &[usize]| -> f64 {
        let jobs: Vec<Job> = group.iter().map(|&i| *instance.job(i)).collect();
        yds_reference(&jobs, instance.alpha()).energy
    };
    let mut energy: Vec<f64> = groups.iter().map(|g| eval(g)).collect();
    let initial_energy: f64 = energy.iter().sum();
    let mut total: f64 = initial_energy;

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut improvements = 0usize;
    let mut evaluations = 0usize;
    let mut stale = 0usize;
    let budget = Budget {
        max_iterations: Some(opts.max_evaluations as u64),
        max_time: opts.max_time,
        deadline: opts.deadline,
        cancel: opts.cancel.clone(),
    };
    let mut meter = budget.meter();

    while stale < opts.max_stale_passes && meter.exhausted().is_none() && m > 1 {
        ssp_probe::counter!("local_search.passes");
        let mut improved_this_pass = false;

        // Move neighborhood.
        let mut job_order: Vec<usize> = (0..n).collect();
        job_order.shuffle(&mut rng);
        for &i in &job_order {
            if meter.exhausted().is_some() {
                break;
            }
            let from = machine_of[i];
            let mut machine_order: Vec<usize> = (0..m).filter(|&p| p != from).collect();
            machine_order.shuffle(&mut rng);
            for &to in &machine_order {
                if !meter.tick() {
                    break;
                }
                evaluations += 1;
                // Tentatively move i: from loses it, to gains it.
                let from_group: Vec<usize> =
                    groups[from].iter().copied().filter(|&k| k != i).collect();
                let mut to_group = groups[to].clone();
                to_group.push(i);
                let (e_from, e_to) = (eval(&from_group), eval(&to_group));
                let delta = e_from + e_to - energy[from] - energy[to];
                if delta < -1e-12 * total.max(1.0) {
                    groups[from] = from_group;
                    groups[to] = to_group;
                    energy[from] = e_from;
                    energy[to] = e_to;
                    machine_of[i] = to;
                    total += delta;
                    improvements += 1;
                    improved_this_pass = true;
                    break;
                }
            }
        }

        // Swap neighborhood (random sample of pairs on different machines).
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if machine_of[a] != machine_of[b] {
                    pairs.push((a, b));
                }
            }
        }
        pairs.shuffle(&mut rng);
        for &(a, b) in pairs.iter().take(4 * n) {
            let (pa, pb) = (machine_of[a], machine_of[b]);
            // Earlier accepted swaps in this pass can put a sampled pair on
            // one machine; pricing it would corrupt the group lists — skip.
            if pa == pb {
                continue;
            }
            if !meter.tick() {
                break;
            }
            evaluations += 1;
            let ga: Vec<usize> = groups[pa]
                .iter()
                .copied()
                .filter(|&k| k != a)
                .chain(std::iter::once(b))
                .collect();
            let gb: Vec<usize> = groups[pb]
                .iter()
                .copied()
                .filter(|&k| k != b)
                .chain(std::iter::once(a))
                .collect();
            let (ea, eb) = (eval(&ga), eval(&gb));
            let delta = ea + eb - energy[pa] - energy[pb];
            if delta < -1e-12 * total.max(1.0) {
                groups[pa] = ga;
                groups[pb] = gb;
                energy[pa] = ea;
                energy[pb] = eb;
                machine_of.swap(a, b);
                total += delta;
                improvements += 1;
                improved_this_pass = true;
            }
        }

        if improved_this_pass {
            stale = 0;
        } else {
            stale += 1;
        }
    }

    ssp_probe::counter!("local_search.evaluations", evaluations as u64);
    ssp_probe::counter!("local_search.moves_accepted", improvements as u64);
    ssp_probe::counter!(
        "local_search.moves_rejected",
        (evaluations - improvements) as u64
    );
    ssp_probe::counter!("local_search.budget_used", meter.used());
    let assignment = Assignment::new(machine_of);
    let energy_final = crate::assignment::assignment_energy(instance, &assignment);
    assert!(
        energy_final <= initial_energy * (1.0 + 1e-9),
        "local search made things worse: {energy_final} vs {initial_energy}"
    );
    LocalSearchResult {
        assignment,
        energy: energy_final,
        initial_energy,
        improvements,
        evaluations,
        budget_exhausted: meter.exhausted(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::assignment_energy;
    use crate::exact::exact_nonmigratory;
    use crate::rr::rr_assignment;
    use ssp_workloads::families;

    #[test]
    fn oracle_path_replays_the_reference_transcript_bitwise() {
        // Same seeds through the oracle-backed `improve` and the retained
        // `improve_reference`: identical trajectories end to end.
        for (seed, n, m) in [(1u64, 18usize, 3usize), (7, 24, 4), (13, 12, 2)] {
            let inst = families::general(n, m, 2.3).gen(seed);
            let start = rr_assignment(&inst);
            let opts = LocalSearchOptions {
                max_stale_passes: 2,
                seed: seed ^ 0xABCD,
                ..Default::default()
            };
            let new = improve(&inst, &start, opts.clone());
            let old = improve_reference(&inst, &start, opts);
            assert_eq!(new.assignment, old.assignment, "seed {seed}");
            assert_eq!(new.energy.to_bits(), old.energy.to_bits(), "seed {seed}");
            assert_eq!(
                new.initial_energy.to_bits(),
                old.initial_energy.to_bits(),
                "seed {seed}"
            );
            assert_eq!(new.evaluations, old.evaluations, "seed {seed}");
            assert_eq!(new.improvements, old.improvements, "seed {seed}");
        }
    }

    #[test]
    fn never_worse_than_the_seed() {
        for seed in [1u64, 2, 3] {
            let inst = families::general(14, 3, 2.5).gen(seed);
            let start = rr_assignment(&inst);
            let res = improve(&inst, &start, Default::default());
            assert!(res.energy <= assignment_energy(&inst, &start) * (1.0 + 1e-9));
            assert!(res.energy >= ssp_migratory::bal::bal(&inst).energy * (1.0 - 1e-6));
        }
    }

    #[test]
    fn repairs_a_deliberately_bad_assignment() {
        // Pile everything on machine 0 — local search must spread it out.
        let inst = families::general(10, 4, 2.0).gen(7);
        let bad = Assignment::new(vec![0; 10]);
        let res = improve(&inst, &bad, Default::default());
        assert!(
            res.improvements > 0,
            "no improving move found from a pileup?"
        );
        assert!(
            res.energy < res.initial_energy * 0.9,
            "expected a large repair: {} -> {}",
            res.initial_energy,
            res.energy
        );
    }

    #[test]
    fn close_to_the_exact_optimum_on_small_instances() {
        // Hill-climbing finds a *local* optimum: require the global optimum
        // in at least half the trials and within 5 % always.
        let mut hits = 0;
        let trials = 6;
        for seed in 0..trials as u64 {
            let inst = families::general(8, 2, 2.0).gen(seed);
            let res = improve(
                &inst,
                &rr_assignment(&inst),
                LocalSearchOptions {
                    max_stale_passes: 2,
                    ..Default::default()
                },
            );
            let opt = exact_nonmigratory(&inst).energy;
            assert!(res.energy >= opt * (1.0 - 1e-9));
            assert!(
                res.energy <= opt * 1.05,
                "seed {seed}: local optimum {} far from global {opt}",
                res.energy
            );
            if res.energy <= opt * (1.0 + 1e-6) {
                hits += 1;
            }
        }
        assert!(
            hits * 2 >= trials,
            "local search should often find the optimum on n=8: {hits}/{trials}"
        );
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let inst = families::general(12, 3, 2.0).gen(11);
        let start = rr_assignment(&inst);
        let a = improve(&inst, &start, Default::default());
        let b = improve(&inst, &start, Default::default());
        assert_eq!(a.assignment, b.assignment);
        let c = improve(
            &inst,
            &start,
            LocalSearchOptions {
                seed: 999,
                ..Default::default()
            },
        );
        // Different seed may or may not differ, but must still be no worse.
        assert!(c.energy <= a.initial_energy * (1.0 + 1e-9));
    }

    #[test]
    fn single_machine_is_a_noop() {
        let inst = families::general(6, 1, 2.0).gen(3);
        let start = rr_assignment(&inst);
        let res = improve(&inst, &start, Default::default());
        assert_eq!(res.improvements, 0);
        assert_eq!(res.evaluations, 0);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let inst = families::general(20, 4, 2.0).gen(5);
        let res = improve(
            &inst,
            &Assignment::new(vec![0; 20]),
            LocalSearchOptions {
                max_evaluations: 25,
                ..Default::default()
            },
        );
        assert!(
            res.evaluations <= 25,
            "strict cap violated: {}",
            res.evaluations
        );
        assert_eq!(res.budget_exhausted, Some("iterations"));
        // Even a capped run must not be worse than its seed (asserted inside
        // `improve` too, but make the contract visible here).
        assert!(res.energy <= res.initial_energy * (1.0 + 1e-9));
    }

    #[test]
    fn zero_time_budget_returns_the_seed_assignment() {
        let inst = families::general(16, 4, 2.0).gen(9);
        let start = rr_assignment(&inst);
        let res = improve(
            &inst,
            &start,
            LocalSearchOptions {
                max_time: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        assert_eq!(res.budget_exhausted, Some("time"));
        assert_eq!(res.evaluations, 0);
        assert_eq!(res.assignment, start);
    }

    #[test]
    fn uncapped_run_reports_no_exhaustion() {
        let inst = families::general(10, 3, 2.0).gen(2);
        let res = improve(&inst, &rr_assignment(&inst), Default::default());
        assert_eq!(res.budget_exhausted, None);
    }

    #[test]
    fn pre_cancelled_token_returns_the_seed_assignment() {
        let inst = families::general(16, 4, 2.0).gen(9);
        let start = rr_assignment(&inst);
        let token = CancelToken::new();
        token.cancel();
        let res = improve(
            &inst,
            &start,
            LocalSearchOptions {
                cancel: Some(token),
                ..Default::default()
            },
        );
        assert_eq!(res.budget_exhausted, Some("cancelled"));
        assert_eq!(res.evaluations, 0);
        assert_eq!(res.assignment, start);
    }

    #[test]
    fn expired_deadline_returns_the_seed_assignment() {
        let inst = families::general(16, 4, 2.0).gen(9);
        let start = rr_assignment(&inst);
        let res = improve(
            &inst,
            &start,
            LocalSearchOptions {
                deadline: Some(Instant::now() - Duration::from_millis(1)),
                ..Default::default()
            },
        );
        assert_eq!(res.budget_exhausted, Some("deadline"));
        assert_eq!(res.assignment, start);
    }
}
