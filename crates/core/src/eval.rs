//! `YdsEval` — the incremental per-machine energy oracle.
//!
//! Every non-migratory algorithm in this crate reduces to "pick an
//! assignment, price it as the sum of per-machine YDS energies". The naive
//! pattern — materialize a `Vec<Job>` for the touched machine and re-run
//! YDS from scratch — is what made local search and branch-and-bound slow:
//! a candidate move touches two machines but the surrounding search re-asks
//! the *same* machine/job-set questions over and over (the from-side of a
//! move is shared by all `m-1` targets, a rejected pass re-prices last
//! pass's candidates, sibling branch-and-bound subtrees rebuild identical
//! machine contents).
//!
//! [`YdsEval`] holds the current job→machine state, prices candidate
//! [`Candidate::Move`]/[`Candidate::Swap`] mutations by recomputing only the
//! (at most two) touched machines, and memoizes energies keyed by the
//! **ordered** job-index list of a machine. Ordered keys matter: YDS is
//! deterministic for a fixed job order, so a cache hit returns a
//! bit-identical energy to the recomputation it replaces — the oracle is an
//! exact drop-in for the materialize-and-recompute pattern, transcript
//! included. (A set-valued key would also hit permuted lists, whose energies
//! agree only up to floating-point rounding.)
//!
//! On top of the memo sits **certified rejection**
//! ([`YdsEval::certified_reject`]): most local-search candidates are bad,
//! and for most of the bad ones two analytic bounds prove it without
//! running the kernel at all. Convexity of the optimal energy in a job's
//! work upper-bounds what a machine saves by shedding the job, and
//! superadditivity plus pointwise profile monotonicity lower-bound what the
//! receiving machine pays to take it. When the bounds prove the exact delta
//! non-improving (with safety margins far above the kernel's float error),
//! the candidate can be skipped with a transcript identical to pricing and
//! rejecting it. See DESIGN.md §3.11 for the full argument.
//!
//! Probe counters: `eval.cache_hit`, `eval.cache_miss`, `eval.cache_evict`,
//! `eval.reject_bound`, `eval.reject_depleted`, `eval.reject_partial`,
//! `eval.profile_rebuild`, `eval.depleted_build` (see
//! docs/OBSERVABILITY.md).

use crate::assignment::Assignment;
use ssp_model::numeric::energy_of;
use ssp_model::{Instance, Job};
use ssp_single::yds::{yds_energy_in, yds_schedule, YdsArena};
use std::collections::HashMap;

/// Relative safety margin applied to every analytic bound before it is
/// allowed to certify a rejection. The bounds are computed from the float
/// YDS kernel's speeds, whose relative error is ~1e-13 at realistic group
/// sizes; 1e-9 dominates that by four orders of magnitude while still being
/// far below the energy differences that make a candidate interesting.
const REL_MARGIN: f64 = 1e-9;

/// Outcome codes recorded into the `eval.reject_tier` histogram by
/// [`YdsEval::certified_reject`]. Powers of two, so each tier occupies its
/// own log2 bucket and the histogram doubles as an outcome breakdown.
const TIER_BOUND: u64 = 1;
/// See [`TIER_BOUND`]: rejected by a depleted-snapshot bound.
const TIER_DEPLETED: u64 = 2;
/// See [`TIER_BOUND`]: rejected by partial exact pricing.
const TIER_PARTIAL: u64 = 4;
/// See [`TIER_BOUND`]: not rejected — fell through to exact `delta_energy`.
const TIER_ACCEPTED: u64 = 8;

/// Lower bound on the energy a machine gains when a job of work `w` and
/// window length `span` arrives, given a certified lower bound `smin` on
/// the machine's speed profile over the job's window (0 = no information).
///
/// At work level `t` the job's own speed is at least
/// `max(smin, t/span)` — its critical interval lies inside its window, so
/// its intensity is at least `t/span`, and the job executes somewhere in
/// the window at the profile speed there, which pointwise dominates the
/// job-free profile. The marginal energy of the job's work is `α·s^{α-1}`
/// at its current speed, so integrating from 0 to `w`:
///
/// * `w ≤ smin·span`: `α·w·smin^{α-1}`;
/// * otherwise: `E({job}) + (α-1)·smin^α·span` — the standalone energy
///   `e_single` plus the surplus from the floor.
///
/// Strictly dominates `max(e_single, α·w·smin^{α-1})`.
fn marginal_gain_lb(e_single: f64, w: f64, span: f64, smin: f64, alpha: f64) -> f64 {
    if smin <= 0.0 {
        return e_single;
    }
    let cap = smin * span;
    if cap >= w {
        alpha * energy_of(w, smin, alpha)
    } else {
        // `smin^α · span` expressed through `energy_of`: work `smin·span`
        // processed at speed `smin`.
        e_single + (alpha - 1.0) * energy_of(cap, smin, alpha)
    }
}

/// Minimum speed of a start-sorted segment profile over `[r, d]`, treating
/// idle time — and any segment with speed `<= floor` (up to a relative ulp
/// guard) — as 0. A positive return is a certified lower bound on the
/// profile's speed everywhere in the window; 0 is always sound.
fn min_speed_over(segs: &[(f64, f64, f64)], r: f64, d: f64, floor: f64) -> f64 {
    // NaN bounds fall through to the empty-window answer.
    if d <= r {
        return 0.0;
    }
    // Segment speeds come out of EDF as `w / (w / s)`, which can round one
    // ulp *above* the kernel's speed `s` — so a segment from the floored
    // job's own peel (exactly `floor` in exact arithmetic) can escape a
    // plain `<=` test and survive as certified fast region, inflating the
    // gain bound. Compare against a relatively widened floor instead:
    // segments from strictly earlier peels sit well above `floor`, so
    // widening by 1e-9 only floors near-ties, which is conservative
    // (smaller `smin`, weaker bound).
    let floor = floor * (1.0 + 1e-9);
    let mut idx = segs.partition_point(|&(_, end, _)| end <= r);
    let mut t = r;
    let mut min_speed = f64::INFINITY;
    while idx < segs.len() && segs[idx].0 < d {
        let (start, end, speed) = segs[idx];
        if start > t || speed <= floor {
            return 0.0;
        }
        min_speed = min_speed.min(speed);
        t = end;
        if t >= d {
            return min_speed;
        }
        idx += 1;
    }
    0.0
}

/// Sentinel for "job not currently placed on any machine".
const UNASSIGNED: usize = usize::MAX;

/// Snapshot of a machine solved *without* one of its jobs: the depleted
/// energy (an exact marginal save for shedding the job) and the depleted
/// speed profile (an unfloored gain floor for any arriving partner job).
/// Valid only while the job is still on `machine` and `stamp` matches that
/// machine's mutation stamp (a committed move touches two machines and
/// leaves the other machines' snapshots valid).
struct DeplEntry {
    machine: u32,
    stamp: u64,
    energy: f64,
    profile: Vec<(f64, f64, f64)>,
}

/// A candidate mutation of the current assignment, priced by
/// [`YdsEval::delta_energy`] and committed by [`YdsEval::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Candidate {
    /// Reassign `job` to machine `to` (must differ from its current machine).
    Move {
        /// Job index (instance indexing).
        job: usize,
        /// Target machine.
        to: usize,
    },
    /// Exchange the machines of jobs `a` and `b` (must differ).
    Swap {
        /// First job index.
        a: usize,
        /// Second job index.
        b: usize,
    },
}

/// Incremental per-machine YDS energy oracle (see module docs).
pub struct YdsEval<'a> {
    instance: &'a Instance,
    /// Machine of each job, or [`UNASSIGNED`].
    machine_of: Vec<usize>,
    /// Ordered job-index list per machine. The order is the insertion order
    /// (append on add, order-preserving filter on remove) — exactly the
    /// order the materialize-and-recompute pattern produced.
    groups: Vec<Vec<u32>>,
    /// Current YDS energy per machine.
    energy: Vec<f64>,
    /// Memo: ordered job-index list → YDS energy of that list.
    cache: HashMap<Box<[u32]>, f64>,
    /// Entry cap; the cache is cleared (not LRU-evicted) on overflow.
    cache_cap: usize,
    scratch_jobs: Vec<Job>,
    /// Kernel buffers reused across every memoized energy query, so a cache
    /// miss costs only the YDS arithmetic ([`yds_energy_in`]).
    arena: YdsArena,
    key_a: Vec<u32>,
    key_b: Vec<u32>,
    key_peek: Vec<u32>,
    /// Standalone energy `E({i})` of each job run alone in its window —
    /// `w_i^α / span_i^{α-1}` — precomputed once; a lower bound on any
    /// machine's energy increase when the job arrives (superadditivity).
    e_single: Vec<f64>,
    /// Speed each job runs at in its machine's current YDS solution. Valid
    /// for job `i` only while `profile_dirty[machine_of[i]]` is false.
    speed_of_job: Vec<f64>,
    /// Per-machine speed profile: `(start, end, speed)` segments of the
    /// machine's current YDS schedule, sorted by start. Rebuilt lazily.
    profiles: Vec<Vec<(f64, f64, f64)>>,
    /// Machines whose profile (and jobs' `speed_of_job`) is stale.
    profile_dirty: Vec<bool>,
    /// Per-job depleted snapshots (machine solved without the job), each
    /// tagged with the machine and its stamp at build time. At most one
    /// entry per job.
    depl: HashMap<u32, DeplEntry>,
    /// Per-machine mutation stamps, bumped whenever a machine's job set
    /// changes; invalidate that machine's snapshots in `depl` without
    /// walking the map (snapshots of untouched machines stay valid).
    mstamp: Vec<u64>,
}

impl<'a> YdsEval<'a> {
    /// Oracle over `instance` with every machine empty.
    pub fn new(instance: &'a Instance) -> Self {
        let m = instance.machines();
        let n = instance.len();
        // Entry cap sized to hold several local-search passes of distinct
        // lists within a ~256 MB key budget at the expected list length
        // n/m. A cap overflow clears the whole memo, turning every warm
        // entry back into a kernel call, so the budget is deliberately
        // generous: local search at n=1600 prices ~10^5 distinct lists.
        let avg_len = (n / m.max(1)).max(8);
        let cache_cap = (64_000_000 / avg_len).clamp(4096, 1_048_576);
        let alpha = instance.alpha();
        let e_single = (0..n)
            .map(|i| {
                let j = instance.job(i);
                energy_of(j.work, j.work / j.span(), alpha)
            })
            .collect();
        YdsEval {
            instance,
            machine_of: vec![UNASSIGNED; n],
            groups: vec![Vec::new(); m],
            energy: vec![0.0; m],
            cache: HashMap::new(),
            cache_cap,
            scratch_jobs: Vec::new(),
            arena: YdsArena::default(),
            key_a: Vec::new(),
            key_b: Vec::new(),
            key_peek: Vec::new(),
            e_single,
            speed_of_job: vec![f64::NAN; n],
            profiles: vec![Vec::new(); m],
            profile_dirty: vec![true; m],
            depl: HashMap::new(),
            mstamp: vec![0; m],
        }
    }

    /// Oracle seeded with a full assignment.
    pub fn with_assignment(instance: &'a Instance, assignment: &Assignment) -> Self {
        assert_eq!(
            assignment.len(),
            instance.len(),
            "assignment length mismatch"
        );
        let mut eval = Self::new(instance);
        for (i, &p) in assignment.as_slice().iter().enumerate() {
            assert!(p < eval.groups.len(), "job {i} on machine {p}");
            eval.machine_of[i] = p;
            eval.groups[p].push(i as u32);
        }
        for p in 0..eval.groups.len() {
            eval.energy[p] = eval.group_energy(p);
        }
        eval
    }

    /// Machine currently holding job `i`; panics if unplaced.
    #[inline]
    pub fn machine_of(&self, i: usize) -> usize {
        let p = self.machine_of[i];
        assert_ne!(p, UNASSIGNED, "job {i} is not placed");
        p
    }

    /// Current YDS energy of machine `p`.
    #[inline]
    pub fn machine_energy(&self, p: usize) -> f64 {
        self.energy[p]
    }

    /// Sum of per-machine energies (same fold order as summing a
    /// freshly-computed per-machine energy vector).
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }

    /// The current placement as an [`Assignment`] (every job must be placed).
    pub fn assignment(&self) -> Assignment {
        assert!(
            self.machine_of.iter().all(|&p| p != UNASSIGNED),
            "assignment() with unplaced jobs"
        );
        Assignment::new(self.machine_of.clone())
    }

    /// Place job `i` on machine `p` (append semantics).
    pub fn add(&mut self, i: usize, p: usize) {
        assert_eq!(self.machine_of[i], UNASSIGNED, "job {i} already placed");
        self.machine_of[i] = p;
        self.groups[p].push(i as u32);
        self.energy[p] = self.group_energy(p);
        self.profile_dirty[p] = true;
        self.mstamp[p] += 1;
    }

    /// Remove job `i` from its machine (order-preserving).
    pub fn remove(&mut self, i: usize) {
        let p = self.machine_of(i);
        self.machine_of[i] = UNASSIGNED;
        self.groups[p].retain(|&k| k != i as u32);
        self.energy[p] = self.group_energy(p);
        self.profile_dirty[p] = true;
        self.mstamp[p] += 1;
    }

    /// Energy of machine `p` if job `i` were appended to it — priced without
    /// mutating anything.
    pub fn energy_with(&mut self, p: usize, i: usize) -> f64 {
        let mut key = std::mem::take(&mut self.key_a);
        key.clear();
        key.extend_from_slice(&self.groups[p]);
        key.push(i as u32);
        let e = self.list_energy_key(&key);
        self.key_a = key;
        e
    }

    /// Energy change of applying `candidate`, computed with the exact
    /// floating-point expression the materialize-and-recompute pattern used:
    /// `e_first + e_second - energy[first] - energy[second]` (left
    /// associated), so accept/reject decisions — and hence search
    /// transcripts — are bit-for-bit reproducible.
    pub fn delta_energy(&mut self, candidate: Candidate) -> f64 {
        let (first, second, e_first, e_second) = self.price(candidate);
        e_first + e_second - self.energy[first] - self.energy[second]
    }

    /// Commit `candidate`. The touched machines' energies are recomputed
    /// through the memo, so an `apply` right after [`Self::delta_energy`]
    /// costs two cache hits.
    pub fn apply(&mut self, candidate: Candidate) {
        let (first, second, e_first, e_second) = self.price(candidate);
        match candidate {
            Candidate::Move { job, to } => {
                let from = self.machine_of(job);
                self.groups[from].retain(|&k| k != job as u32);
                self.groups[to].push(job as u32);
                self.machine_of[job] = to;
            }
            Candidate::Swap { a, b } => {
                let (pa, pb) = (self.machine_of(a), self.machine_of(b));
                self.groups[pa].retain(|&k| k != a as u32);
                self.groups[pa].push(b as u32);
                self.groups[pb].retain(|&k| k != b as u32);
                self.groups[pb].push(a as u32);
                self.machine_of[a] = pb;
                self.machine_of[b] = pa;
            }
        }
        self.energy[first] = e_first;
        self.energy[second] = e_second;
        self.profile_dirty[first] = true;
        self.profile_dirty[second] = true;
        self.mstamp[first] += 1;
        self.mstamp[second] += 1;
    }

    /// Try to prove `candidate` non-improving without pricing it exactly.
    ///
    /// Returns `true` only when rejection is *certified*: the exact delta
    /// that [`Self::delta_energy`] would compute provably fails the
    /// local-search accept test `delta < -1e-12 · total`. Skipping a
    /// certified candidate therefore changes neither the search state nor
    /// its transcript — `improve` stays bit-identical to pricing every
    /// candidate. Two tiers (see DESIGN.md §3.11 for the proofs):
    ///
    /// 1. **bound** — no kernel call. Convexity of the optimal energy in a
    ///    job's work bounds what a machine saves by shedding the job from
    ///    above by `α·w·s^{α-1}` at the job's current speed `s`;
    ///    superadditivity and pointwise profile monotonicity bound what the
    ///    receiver pays from below by `max(E({job}), α·w·s_min^{α-1})`
    ///    with `s_min` the receiver's minimum profile speed over the job's
    ///    window (0 if the window contains idle time). For swaps each
    ///    machine's (remove, add) pair is bounded against the *depleted*
    ///    machine via a floored profile — peel-prefix stability keeps every
    ///    region faster than the removed job intact.
    /// 2. **partial** — one kernel call. Price the cheap side exactly (the
    ///    from-side of a move is shared by all its targets; a swap's priced
    ///    side becomes a cache hit if the candidate falls through to
    ///    `delta_energy`) and combine with the other side's bound.
    ///
    /// Counters: `eval.reject_bound`, `eval.reject_partial`. Every call
    /// also records its outcome tier into the `eval.reject_tier` histogram
    /// (1 = bound, 2 = depleted, 4 = partial, 8 = fell through to exact
    /// pricing).
    pub fn certified_reject(&mut self, candidate: Candidate) -> bool {
        match candidate {
            Candidate::Move { job, to } => self.certify_move_reject(job, to),
            Candidate::Swap { a, b } => self.certify_swap_reject(a, b),
        }
    }

    fn certify_move_reject(&mut self, job: usize, to: usize) -> bool {
        let from = self.machine_of(job);
        // Non-finite machine energy (unreachable through a validated
        // `Instance`, kept for robustness): the exact delta is then +inf or
        // NaN in every case — removing a job from an infeasible machine
        // leaves it infeasible unless the job is infeasible on its own, in
        // which case it makes the target infeasible — so the accept test
        // always fails.
        if !self.energy[from].is_finite() || !self.energy[to].is_finite() {
            ssp_probe::counter!("eval.reject_bound");
            ssp_probe::histogram!("eval.reject_tier", TIER_BOUND);
            return true;
        }
        self.refresh_profile(from);
        self.refresh_profile(to);
        let j = *self.instance.job(job);
        let alpha = self.instance.alpha();
        let slack = 1e-11 * (self.energy[from] + self.energy[to]);
        // A fresh depleted snapshot (left over from the swap phase of an
        // unimproving pass) upgrades the convexity bound to the exact save
        // for free. The `slack` term below absorbs the float error of the
        // exact difference (and only strengthens the convexity case).
        let save_ub = match self.depl.get(&(job as u32)) {
            Some(e) if e.machine == from as u32 && e.stamp == self.mstamp[from] => {
                self.energy[from] - e.energy
            }
            _ => alpha * energy_of(j.work, self.speed_of_job[job], alpha) * (1.0 + REL_MARGIN),
        };
        let smin = self.profile_min_speed(to, j.release, j.deadline, 0.0);
        let gain_lb = marginal_gain_lb(self.e_single[job], j.work, j.span(), smin, alpha)
            * (1.0 - REL_MARGIN);
        if gain_lb >= save_ub + slack {
            ssp_probe::counter!("eval.reject_bound");
            ssp_probe::histogram!("eval.reject_tier", TIER_BOUND);
            return true;
        }
        // Partial tier: the from-side is shared by all m-1 targets of this
        // job, so pricing it exactly costs at most one kernel call per job
        // (and zero if `delta_energy` runs anyway — the memo keeps it).
        let mut key = std::mem::take(&mut self.key_a);
        key.clear();
        key.extend(
            self.groups[from]
                .iter()
                .copied()
                .filter(|&k| k != job as u32),
        );
        let e_from = self.list_energy_key(&key);
        self.key_a = key;
        let exact_save = self.energy[from] - e_from;
        if gain_lb >= exact_save + slack {
            ssp_probe::counter!("eval.reject_partial");
            ssp_probe::histogram!("eval.reject_tier", TIER_PARTIAL);
            return true;
        }
        ssp_probe::histogram!("eval.reject_tier", TIER_ACCEPTED);
        false
    }

    fn certify_swap_reject(&mut self, a: usize, b: usize) -> bool {
        let (pa, pb) = (self.machine_of(a), self.machine_of(b));
        if !self.energy[pa].is_finite() || !self.energy[pb].is_finite() {
            ssp_probe::counter!("eval.reject_bound");
            ssp_probe::histogram!("eval.reject_tier", TIER_BOUND);
            return true;
        }
        self.refresh_profile(pa);
        self.refresh_profile(pb);
        let ja = *self.instance.job(a);
        let jb = *self.instance.job(b);
        let alpha = self.instance.alpha();
        let (sa, sb) = (self.speed_of_job[a], self.speed_of_job[b]);
        let slack = 1e-11 * (self.energy[pa] + self.energy[pb]);
        // Free tier: convexity save bounds and gains against the machines'
        // own profiles *floored* at the removed job's speed — regions at
        // most that fast may vanish with the job, regions strictly faster
        // survive its removal intact (peel-prefix stability). No kernel
        // call.
        let save_a_ub = alpha * energy_of(ja.work, sa, alpha) * (1.0 + REL_MARGIN);
        let save_b_ub = alpha * energy_of(jb.work, sb, alpha) * (1.0 + REL_MARGIN);
        let smin_a_fl = self.profile_min_speed(pa, jb.release, jb.deadline, sa);
        let gain_b_fl = marginal_gain_lb(self.e_single[b], jb.work, jb.span(), smin_a_fl, alpha)
            * (1.0 - REL_MARGIN);
        let smin_b_fl = self.profile_min_speed(pb, ja.release, ja.deadline, sb);
        let gain_a_fl = marginal_gain_lb(self.e_single[a], ja.work, ja.span(), smin_b_fl, alpha)
            * (1.0 - REL_MARGIN);
        if (gain_b_fl - save_a_ub) + (gain_a_fl - save_b_ub) >= slack {
            ssp_probe::counter!("eval.reject_bound");
            ssp_probe::histogram!("eval.reject_tier", TIER_BOUND);
            return true;
        }
        // Depleted tier: one snapshot solve per (job, state), amortized
        // across every partner the job is paired with until the next
        // committed mutation. The snapshot gives the *exact* marginal save
        // and the true depleted profile — no flooring, so windows that the
        // free tier zeroed out (the removed job's own peel covering them)
        // recover their genuine post-removal speed. Tighten one side at a
        // time — starting with whichever snapshot is already fresh — and
        // retest before paying for the second solve.
        let a_first = self.depl_fresh(a) || !self.depl_fresh(b);
        // `jx` is the *partner's* job — the one arriving on the depleted
        // machine; `side_x_free` is the other side's free-tier bound.
        let (x, px, jx, side_x_free) = if a_first {
            (a, pa, jb, gain_a_fl - save_b_ub)
        } else {
            (b, pb, ja, gain_b_fl - save_a_ub)
        };
        let (save_x, smin_x) = self.depleted_side(px, x, jx.release, jx.deadline);
        let gain_x = marginal_gain_lb(
            self.e_single[if a_first { b } else { a }],
            jx.work,
            jx.span(),
            smin_x,
            alpha,
        ) * (1.0 - REL_MARGIN);
        if (gain_x - save_x) + side_x_free >= slack {
            ssp_probe::counter!("eval.reject_depleted");
            ssp_probe::histogram!("eval.reject_tier", TIER_DEPLETED);
            return true;
        }
        let (y, py, jy) = if a_first { (b, pb, ja) } else { (a, pa, jb) };
        let (save_y, smin_y) = self.depleted_side(py, y, jy.release, jy.deadline);
        let gain_y = marginal_gain_lb(
            self.e_single[if a_first { a } else { b }],
            jy.work,
            jy.span(),
            smin_y,
            alpha,
        ) * (1.0 - REL_MARGIN);
        let (side_a, side_b) = if a_first {
            (gain_x - save_x, gain_y - save_y)
        } else {
            (gain_y - save_y, gain_x - save_x)
        };
        if side_a + side_b >= slack {
            ssp_probe::counter!("eval.reject_depleted");
            ssp_probe::histogram!("eval.reject_tier", TIER_DEPLETED);
            return true;
        }
        // Partial tier: price the loosest side exactly. If the candidate
        // still falls through to `delta_energy`, the priced side is a memo
        // hit — the partial tier never costs an extra kernel call.
        let mut key = std::mem::take(&mut self.key_a);
        key.clear();
        let exact_side = if side_a <= side_b {
            key.extend(self.groups[pa].iter().copied().filter(|&k| k != a as u32));
            key.push(b as u32);
            let e_a = self.list_energy_key(&key);
            (e_a - self.energy[pa]) + side_b
        } else {
            key.extend(self.groups[pb].iter().copied().filter(|&k| k != b as u32));
            key.push(a as u32);
            let e_b = self.list_energy_key(&key);
            (e_b - self.energy[pb]) + side_a
        };
        self.key_a = key;
        if exact_side >= slack {
            ssp_probe::counter!("eval.reject_partial");
            ssp_probe::histogram!("eval.reject_tier", TIER_PARTIAL);
            return true;
        }
        ssp_probe::histogram!("eval.reject_tier", TIER_ACCEPTED);
        false
    }

    /// Whether job `i`'s depleted snapshot is valid for the current state:
    /// built against the machine the job is on now, at its current stamp.
    fn depl_fresh(&self, i: usize) -> bool {
        let p = self.machine_of[i];
        self.depl
            .get(&(i as u32))
            .is_some_and(|e| e.machine == p as u32 && e.stamp == self.mstamp[p])
    }

    /// Exact marginal save and depleted-profile floor for removing job `i`
    /// from machine `p`: `(energy[p] - E(groups[p] ∖ i), min depleted speed
    /// over [r, d])`. Solves the depleted list once per (job, state) —
    /// counter `eval.depleted_build` — snapshots it under the machine's
    /// current stamp, and seeds the solved energy into the memo so later
    /// exact pricing of the same list (a move's from-side, a move partial
    /// tier) is a cache hit.
    fn depleted_side(&mut self, p: usize, i: usize, r: f64, d: f64) -> (f64, f64) {
        let id = i as u32;
        if !self.depl_fresh(i) {
            let mut key = std::mem::take(&mut self.key_peek);
            key.clear();
            key.extend(self.groups[p].iter().copied().filter(|&k| k != id));
            let mut entry = self.depl.remove(&id).unwrap_or(DeplEntry {
                machine: 0,
                stamp: 0,
                energy: 0.0,
                profile: Vec::new(),
            });
            entry.machine = p as u32;
            entry.stamp = self.mstamp[p];
            entry.profile.clear();
            if key.is_empty() {
                entry.energy = 0.0;
            } else {
                ssp_probe::counter!("eval.depleted_build");
                self.scratch_jobs.clear();
                self.scratch_jobs
                    .extend(key.iter().map(|&k| *self.instance.job(k as usize)));
                let (sol, sched) = yds_schedule(&self.scratch_jobs, self.instance.alpha(), 0);
                entry.energy = sol.energy;
                entry
                    .profile
                    .extend(sched.segments().iter().map(|s| (s.start, s.end, s.speed)));
                entry.profile.sort_by(|x, y| x.0.total_cmp(&y.0));
                // The snapshot energy is the same bits `list_energy_key`
                // would compute — the kernel is deterministic per ordered
                // list — so it is a legitimate memo entry.
                if !self.cache.contains_key(key.as_slice()) {
                    if self.cache.len() >= self.cache_cap {
                        ssp_probe::counter!("eval.cache_evict");
                        self.cache.clear();
                    }
                    self.cache
                        .insert(key.to_vec().into_boxed_slice(), sol.energy);
                }
            }
            self.key_peek = key;
            self.depl.insert(id, entry);
        }
        let e = &self.depl[&id];
        (
            self.energy[p] - e.energy,
            min_speed_over(&e.profile, r, d, 0.0),
        )
    }

    /// Rebuild machine `p`'s speed profile (and its jobs' `speed_of_job`)
    /// from its current YDS schedule, if stale.
    fn refresh_profile(&mut self, p: usize) {
        if !self.profile_dirty[p] {
            return;
        }
        self.profile_dirty[p] = false;
        self.profiles[p].clear();
        if self.groups[p].is_empty() || !self.energy[p].is_finite() {
            // An empty profile makes every min-speed query return 0, which
            // only weakens the bounds (and non-finite machines are
            // short-circuited before any profile query).
            return;
        }
        ssp_probe::counter!("eval.profile_rebuild");
        self.scratch_jobs.clear();
        self.scratch_jobs.extend(
            self.groups[p]
                .iter()
                .map(|&i| *self.instance.job(i as usize)),
        );
        let (sol, sched) = yds_schedule(&self.scratch_jobs, self.instance.alpha(), 0);
        for (&i, &s) in self.groups[p].iter().zip(&sol.speeds) {
            self.speed_of_job[i as usize] = s;
        }
        let profile = &mut self.profiles[p];
        profile.extend(sched.segments().iter().map(|s| (s.start, s.end, s.speed)));
        profile.sort_by(|x, y| x.0.total_cmp(&y.0));
    }

    /// Minimum profile speed of machine `p` over `[r, d]`, treating idle
    /// time — and any segment with speed `<= floor` (up to a relative ulp
    /// guard) — as 0. A positive return is a certified lower bound on the
    /// machine's speed everywhere in the window; 0 is always sound.
    fn profile_min_speed(&self, p: usize, r: f64, d: f64, floor: f64) -> f64 {
        min_speed_over(&self.profiles[p], r, d, floor)
    }

    /// Memoized YDS energy of an arbitrary ordered job-index list (used by
    /// the branch-and-bound frontier expansion, which prices prefixes that
    /// are not the oracle's own state).
    pub fn list_energy(&mut self, jobs: &[u32]) -> f64 {
        self.list_energy_key(jobs)
    }

    /// Price `candidate`: `(first_machine, second_machine, e_first,
    /// e_second)` where the energies are for the post-candidate contents.
    fn price(&mut self, candidate: Candidate) -> (usize, usize, f64, f64) {
        match candidate {
            Candidate::Move { job, to } => {
                let from = self.machine_of(job);
                assert_ne!(from, to, "move to the current machine");
                let mut key_a = std::mem::take(&mut self.key_a);
                let mut key_b = std::mem::take(&mut self.key_b);
                key_a.clear();
                key_a.extend(
                    self.groups[from]
                        .iter()
                        .copied()
                        .filter(|&k| k != job as u32),
                );
                key_b.clear();
                key_b.extend_from_slice(&self.groups[to]);
                key_b.push(job as u32);
                let e_from = self.list_energy_key(&key_a);
                let e_to = self.list_energy_key(&key_b);
                self.key_a = key_a;
                self.key_b = key_b;
                (from, to, e_from, e_to)
            }
            Candidate::Swap { a, b } => {
                let (pa, pb) = (self.machine_of(a), self.machine_of(b));
                assert_ne!(pa, pb, "swap within one machine");
                let mut key_a = std::mem::take(&mut self.key_a);
                let mut key_b = std::mem::take(&mut self.key_b);
                key_a.clear();
                key_a.extend(self.groups[pa].iter().copied().filter(|&k| k != a as u32));
                key_a.push(b as u32);
                key_b.clear();
                key_b.extend(self.groups[pb].iter().copied().filter(|&k| k != b as u32));
                key_b.push(a as u32);
                let e_a = self.list_energy_key(&key_a);
                let e_b = self.list_energy_key(&key_b);
                self.key_a = key_a;
                self.key_b = key_b;
                (pa, pb, e_a, e_b)
            }
        }
    }

    /// Current energy of machine `p`'s group, through the memo.
    fn group_energy(&mut self, p: usize) -> f64 {
        let key = std::mem::take(&mut self.groups);
        let e = self.list_energy_key(&key[p]);
        self.groups = key;
        e
    }

    /// The memoized kernel call.
    fn list_energy_key(&mut self, key: &[u32]) -> f64 {
        if key.is_empty() {
            return 0.0;
        }
        if let Some(&e) = self.cache.get(key) {
            ssp_probe::counter!("eval.cache_hit");
            return e;
        }
        ssp_probe::counter!("eval.cache_miss");
        self.scratch_jobs.clear();
        self.scratch_jobs
            .extend(key.iter().map(|&i| *self.instance.job(i as usize)));
        let e = yds_energy_in(&mut self.arena, &self.scratch_jobs, self.instance.alpha());
        if self.cache.len() >= self.cache_cap {
            ssp_probe::counter!("eval.cache_evict");
            self.cache.clear();
        }
        self.cache.insert(key.to_vec().into_boxed_slice(), e);
        e
    }
}

/// The oracle's online sibling: a memoized YDS pricer over **owned job
/// lists** instead of a fixed [`Instance`].
///
/// [`YdsEval`] assumes a closed universe — every job exists up front, keyed
/// by instance index. A streaming engine has the opposite shape: jobs appear
/// over time, expire, and are compacted away, so there is no instance to
/// index into; what repeats is the *live window* of a machine (the alive
/// job list), which is re-priced by every density-aware dispatch decision
/// against `m` machines and changes by one job per arrival. `LiveEval`
/// memoizes exactly that: the YDS energy of an ordered job list, keyed by
/// the job-id sequence.
///
/// **Contract:** within one `LiveEval`, a job id always denotes the same
/// `(work, release, deadline)` triple — the id *is* the job. Arrival
/// traces guarantee this (ids are unique per stream); violating it silently
/// poisons the memo. Ordered keys for the same reason as [`YdsEval`]: the
/// kernel is deterministic per ordered list, so a hit is bit-identical to
/// the recomputation it replaces.
///
/// Counters: `eval.live_hit`, `eval.live_miss`, `eval.live_evict`.
pub struct LiveEval {
    alpha: f64,
    cache: HashMap<Box<[u32]>, f64>,
    cache_cap: usize,
    key: Vec<u32>,
    jobs: Vec<Job>,
    /// Kernel buffers reused across misses (see [`YdsEval::arena`] — same
    /// role, same bit-identity contract via [`yds_energy_in`]).
    arena: YdsArena,
}

impl LiveEval {
    /// Empty oracle for power exponent `alpha`.
    pub fn new(alpha: f64) -> Self {
        LiveEval {
            alpha,
            // Live windows are short (the whole point of compaction), so a
            // flat entry cap keeps the memo well under ~64 MB of keys.
            cache_cap: 262_144,
            cache: HashMap::new(),
            key: Vec::new(),
            jobs: Vec::new(),
            arena: YdsArena::default(),
        }
    }

    /// Memoized YDS energy of the ordered job list `window`.
    pub fn energy(&mut self, window: &[Job]) -> f64 {
        let mut key = std::mem::take(&mut self.key);
        key.clear();
        key.extend(window.iter().map(|j| j.id.0));
        let e = self.keyed_energy(&key, window, None);
        self.key = key;
        e
    }

    /// Memoized YDS energy of `window` with `candidate` appended — the
    /// add-side of a dispatch decision, priced without materializing the
    /// appended list at the call site.
    pub fn energy_with(&mut self, window: &[Job], candidate: &Job) -> f64 {
        let mut key = std::mem::take(&mut self.key);
        key.clear();
        key.extend(window.iter().map(|j| j.id.0));
        key.push(candidate.id.0);
        let e = self.keyed_energy(&key, window, Some(candidate));
        self.key = key;
        e
    }

    /// Marginal YDS energy of appending `candidate` to `window`:
    /// `energy(window ∪ {candidate}) - energy(window)`, both sides through
    /// the memo (the base term is shared by every candidate priced against
    /// the same window, and the appended term becomes the next base when
    /// the candidate is actually dispatched here).
    pub fn marginal(&mut self, window: &[Job], candidate: &Job) -> f64 {
        self.energy_with(window, candidate) - self.energy(window)
    }

    fn keyed_energy(&mut self, key: &[u32], window: &[Job], extra: Option<&Job>) -> f64 {
        if key.is_empty() {
            return 0.0;
        }
        if let Some(&e) = self.cache.get(key) {
            ssp_probe::counter!("eval.live_hit");
            return e;
        }
        ssp_probe::counter!("eval.live_miss");
        self.jobs.clear();
        self.jobs.extend_from_slice(window);
        if let Some(j) = extra {
            self.jobs.push(*j);
        }
        let e = yds_energy_in(&mut self.arena, &self.jobs, self.alpha);
        if self.cache.len() >= self.cache_cap {
            ssp_probe::counter!("eval.live_evict");
            self.cache.clear();
        }
        self.cache.insert(key.to_vec().into_boxed_slice(), e);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::rr_assignment;
    use ssp_single::yds::{yds, yds_reference};
    use ssp_workloads::families;

    /// Recompute a machine's energy the naive way, with the reference peel.
    fn naive(instance: &Instance, group: &[u32]) -> f64 {
        let jobs: Vec<Job> = group.iter().map(|&i| *instance.job(i as usize)).collect();
        yds_reference(&jobs, instance.alpha()).energy
    }

    #[test]
    fn seeded_state_matches_naive_recompute_bitwise() {
        let inst = families::general(24, 3, 2.0).gen(5);
        let eval = YdsEval::with_assignment(&inst, &rr_assignment(&inst));
        for p in 0..3 {
            assert_eq!(
                eval.machine_energy(p).to_bits(),
                naive(&inst, &eval.groups[p]).to_bits()
            );
        }
    }

    #[test]
    fn move_pricing_matches_apply_and_naive() {
        let inst = families::general(18, 3, 2.2).gen(9);
        let mut eval = YdsEval::with_assignment(&inst, &rr_assignment(&inst));
        let mv = Candidate::Move {
            job: 4,
            to: (eval.machine_of(4) + 1) % 3,
        };
        let before = eval.total_energy();
        let delta = eval.delta_energy(mv);
        eval.apply(mv);
        let after = eval.total_energy();
        assert!((after - (before + delta)).abs() <= 1e-9 * before.abs().max(1.0));
        for p in 0..3 {
            assert_eq!(
                eval.machine_energy(p).to_bits(),
                naive(&inst, &eval.groups[p]).to_bits(),
                "machine {p} drifted from naive recompute"
            );
        }
    }

    #[test]
    fn swap_preserves_group_order_semantics() {
        // After a swap, the incoming job is appended — the same order the
        // filter+chain pattern in the old local search produced.
        let inst = families::general(12, 2, 2.0).gen(3);
        let mut eval = YdsEval::with_assignment(&inst, &rr_assignment(&inst));
        let a = 0usize;
        let b = (1..12)
            .find(|&j| eval.machine_of(j) != eval.machine_of(a))
            .expect("two machines must both be populated");
        let (pa, pb) = (eval.machine_of(a), eval.machine_of(b));
        let mut expect_a: Vec<u32> = eval.groups[pa]
            .iter()
            .copied()
            .filter(|&k| k != a as u32)
            .collect();
        expect_a.push(b as u32);
        eval.apply(Candidate::Swap { a, b });
        assert_eq!(eval.groups[pa], expect_a);
        assert_eq!(eval.machine_of(a), pb);
        assert_eq!(eval.machine_of(b), pa);
    }

    #[test]
    fn add_remove_round_trip_restores_energy_bitwise() {
        let inst = families::general(15, 3, 2.0).gen(1);
        let mut eval = YdsEval::with_assignment(&inst, &rr_assignment(&inst));
        let snapshot: Vec<u64> = (0..3).map(|p| eval.machine_energy(p).to_bits()).collect();
        let p = eval.machine_of(7);
        eval.remove(7);
        assert_ne!(eval.machine_energy(p).to_bits(), snapshot[p]);
        // Re-adding at the *end* of the group is a different order than the
        // original mid-group position, but the energy must still match the
        // naive recompute of that order.
        eval.add(7, p);
        assert_eq!(
            eval.machine_energy(p).to_bits(),
            naive(&inst, &eval.groups[p]).to_bits()
        );
    }

    #[test]
    fn repeated_pricing_hits_the_cache() {
        let session = ssp_probe::Session::begin();
        let inst = families::general(16, 2, 2.0).gen(2);
        let mut eval = YdsEval::with_assignment(&inst, &rr_assignment(&inst));
        let mv = Candidate::Move {
            job: 3,
            to: (eval.machine_of(3) + 1) % 2,
        };
        let d1 = eval.delta_energy(mv);
        let misses_after_first = ssp_probe::counter_value("eval.cache_miss");
        let d2 = eval.delta_energy(mv);
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(
            ssp_probe::counter_value("eval.cache_miss"),
            misses_after_first,
            "second pricing of the same candidate must be all cache hits"
        );
        assert!(ssp_probe::counter_value("eval.cache_hit") >= 2);
        if let Some(s) = session {
            let _ = s.end();
        }
    }

    #[test]
    fn energy_with_equals_append_energy() {
        let inst = families::general(10, 2, 2.4).gen(8);
        let mut eval = YdsEval::new(&inst);
        for i in 0..5 {
            eval.add(i, 0);
        }
        let priced = eval.energy_with(0, 7);
        eval.add(7, 0);
        assert_eq!(priced.to_bits(), eval.machine_energy(0).to_bits());
    }

    /// Certified rejection must be *sound*: a rejected candidate can never
    /// improve by more than the local-search accept tolerance. This sweeps
    /// every move and cross-machine swap on seeded instances, twice per
    /// instance so the second round exercises the warm memo and the
    /// depleted-snapshot tier (whose stamps are fresh after round one).
    #[test]
    fn certified_rejection_is_sound() {
        for seed in 0..12u64 {
            for (n, m) in [(12usize, 2usize), (18, 3), (24, 4)] {
                let inst = families::general(n, m, 2.3).gen(seed);
                let start = rr_assignment(&inst);
                let mut eval = YdsEval::with_assignment(&inst, &start);
                let total: f64 = eval.total_energy();
                let tau = 1e-12 * total.max(1.0);
                let mut cands = Vec::new();
                for job in 0..n {
                    for to in 0..m {
                        if to != eval.machine_of(job) {
                            cands.push(Candidate::Move { job, to });
                        }
                    }
                }
                for a in 0..n {
                    for b in (a + 1)..n {
                        if eval.machine_of(a) != eval.machine_of(b) {
                            cands.push(Candidate::Swap { a, b });
                        }
                    }
                }
                for round in 0..2 {
                    for &c in &cands {
                        let rejected = eval.certified_reject(c);
                        let delta = eval.delta_energy(c);
                        assert!(
                            !rejected || delta >= -tau,
                            "unsound rejection: seed={seed} n={n} m={m} \
                             round={round} {c:?} delta={delta:e} tau={tau:e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn live_eval_matches_kernel_bitwise() {
        let inst = families::general(14, 1, 2.3).gen(6);
        let mut live = LiveEval::new(2.3);
        for cut in [1usize, 5, 14] {
            let window = &inst.jobs()[..cut];
            let direct = yds(window, 2.3).energy;
            assert_eq!(live.energy(window).to_bits(), direct.to_bits());
            // Second query of the same window must hit the memo and agree.
            assert_eq!(live.energy(window).to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn live_eval_marginal_is_append_delta() {
        let inst = families::bursty(10, 1, 2.0).gen(3);
        let mut live = LiveEval::new(2.0);
        let (window, cand) = (&inst.jobs()[..6], inst.job(7));
        let marginal = live.marginal(window, cand);
        let mut appended = window.to_vec();
        appended.push(*cand);
        let expect = yds(&appended, 2.0).energy - yds(window, 2.0).energy;
        assert_eq!(marginal.to_bits(), expect.to_bits());
        // energy_with prices the appended list without materializing it.
        assert_eq!(
            live.energy_with(window, cand).to_bits(),
            yds(&appended, 2.0).energy.to_bits()
        );
    }
}
