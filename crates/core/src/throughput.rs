//! Throughput maximization under a maximum-speed cap.
//!
//! When `s_max` is too low for the whole job set (see
//! `ssp_migratory::bounded`), a scheduler must choose *which* jobs to admit.
//! Maximizing the number of admitted jobs is the classic
//! throughput objective of the bounded-speed literature (Chan et al.); the
//! selection problem is NP-hard in general.
//!
//! Tools provided:
//!
//! * [`admissible`] — is a given subset feasible under the cap? (Run
//!   everything at `s_max` — slower speeds only use *more* time, so this is
//!   exact, via one WAP max-flow.)
//! * [`max_throughput_exact`] — largest admissible subset by subset-lattice
//!   search with pruning (`n ≤ 20`).
//! * [`max_throughput_greedy`] — polynomial greedy admission (smallest work
//!   first, skip-on-infeasible); its quality is measured in EXP-12.

use ssp_migratory::wap::Wap;
use ssp_model::Instance;

/// Is the subset (instance indices) schedulable with every speed `≤ s_max`?
/// Exact: feasibility with a cap ⟺ feasibility running everything *at* the
/// cap, which is one max-flow.
pub fn admissible(instance: &Instance, subset: &[usize], s_max: f64) -> bool {
    assert!(s_max > 0.0);
    let (wap, _) = Wap::from_instance(instance);
    let mut demands = vec![0.0; instance.len()];
    for &i in subset {
        demands[i] = instance.job(i).work / s_max;
    }
    wap.solve(&demands).feasible()
}

/// Result of a throughput search.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSolution {
    /// Admitted instance indices, ascending.
    pub admitted: Vec<usize>,
    /// Rejected instance indices, ascending.
    pub rejected: Vec<usize>,
}

impl ThroughputSolution {
    /// Number of admitted jobs.
    pub fn throughput(&self) -> usize {
        self.admitted.len()
    }
}

/// Greedy admission: consider jobs in nondecreasing work order (cheap jobs
/// are easiest to fit and each counts the same), keep a job iff the set so
/// far plus the job stays admissible. `O(n)` max-flows.
pub fn max_throughput_greedy(instance: &Instance, s_max: f64) -> ThroughputSolution {
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .work
            .total_cmp(&instance.job(b).work)
            .then(instance.job(a).id.cmp(&instance.job(b).id))
    });
    let mut admitted: Vec<usize> = Vec::new();
    let mut rejected: Vec<usize> = Vec::new();
    for &i in &order {
        admitted.push(i);
        if admissible(instance, &admitted, s_max) {
            continue;
        }
        admitted.pop();
        rejected.push(i);
    }
    admitted.sort_unstable();
    rejected.sort_unstable();
    ThroughputSolution { admitted, rejected }
}

/// Exact maximum throughput by depth-first subset search with two prunings:
/// stop when even admitting every remaining job cannot beat the incumbent,
/// and seed the incumbent with the greedy solution. Exponential; `n ≤ 20`.
pub fn max_throughput_exact(instance: &Instance, s_max: f64) -> ThroughputSolution {
    let n = instance.len();
    assert!(n <= 20, "exact throughput search is for small n (got {n})");
    let greedy = max_throughput_greedy(instance, s_max);
    let mut best: Vec<usize> = greedy.admitted.clone();

    // DFS over include/exclude decisions in work order (cheap first gives
    // the greedy-like incumbent early).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| instance.job(a).work.total_cmp(&instance.job(b).work));

    fn dfs(
        instance: &Instance,
        s_max: f64,
        order: &[usize],
        k: usize,
        current: &mut Vec<usize>,
        best: &mut Vec<usize>,
    ) {
        if current.len() + (order.len() - k) <= best.len() {
            return; // cannot beat the incumbent
        }
        if k == order.len() {
            if current.len() > best.len() {
                *best = current.clone();
            }
            return;
        }
        // Include order[k] if the partial set stays admissible (admissible
        // sets are downward closed, so pruning here is safe).
        current.push(order[k]);
        if admissible(instance, current, s_max) {
            dfs(instance, s_max, order, k + 1, current, best);
        }
        current.pop();
        // Exclude.
        dfs(instance, s_max, order, k + 1, current, best);
    }
    let mut current = Vec::new();
    dfs(instance, s_max, &order, 0, &mut current, &mut best);
    best.sort_unstable();
    let rejected: Vec<usize> = (0..n).filter(|i| !best.contains(i)).collect();
    ThroughputSolution {
        admitted: best,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_migratory::bounded::min_peak_speed;
    use ssp_model::{Instance, Job};
    use ssp_workloads::families;

    fn overloaded() -> Instance {
        // 4 unit jobs in [0,1] on 1 machine: k admissible iff k <= s_max.
        let jobs: Vec<Job> = (0..4).map(|i| Job::new(i, 1.0, 0.0, 1.0)).collect();
        Instance::new(jobs, 1, 2.0).unwrap()
    }

    #[test]
    fn admissible_counts_match_cap() {
        let inst = overloaded();
        assert!(admissible(&inst, &[0], 1.0));
        assert!(admissible(&inst, &[0, 1], 2.0));
        assert!(!admissible(&inst, &[0, 1, 2], 2.0));
        assert!(admissible(&inst, &[], 0.5), "empty subset always fits");
    }

    #[test]
    fn greedy_and_exact_on_uniform_overload() {
        let inst = overloaded();
        for (cap, expect) in [(1.0, 1usize), (2.0, 2), (3.5, 3), (4.0, 4)] {
            let g = max_throughput_greedy(&inst, cap);
            let e = max_throughput_exact(&inst, cap);
            assert_eq!(e.throughput(), expect, "exact at cap {cap}");
            assert_eq!(g.throughput(), expect, "greedy at cap {cap}");
            assert_eq!(g.admitted.len() + g.rejected.len(), 4);
        }
    }

    #[test]
    fn greedy_prefers_small_jobs() {
        // One huge job vs three small ones, cap admits either the huge one
        // alone or all three small ones: greedy (smallest first) takes 3.
        let jobs = vec![
            Job::new(0, 3.0, 0.0, 1.0),
            Job::new(1, 1.0, 0.0, 1.0),
            Job::new(2, 1.0, 0.0, 1.0),
            Job::new(3, 1.0, 0.0, 1.0),
        ];
        let inst = Instance::new(jobs, 1, 2.0).unwrap();
        let g = max_throughput_greedy(&inst, 3.0);
        assert_eq!(g.throughput(), 3);
        assert_eq!(g.admitted, vec![1, 2, 3]);
        assert_eq!(max_throughput_exact(&inst, 3.0).throughput(), 3);
    }

    #[test]
    fn exact_beats_greedy_when_order_misleads() {
        // Greedy admits cheap long-window jobs that block a pair of tight
        // ones. Jobs: two tight unit jobs in [0,1]; one job w=0.9 spanning
        // [0,2] (cheapest, admitted first, eats capacity everywhere).
        // Cap 1.45, m=1: {tight, tight} infeasible (needs 2);
        // {w0.9, tight}: demand in [0,1]: 1/1.45 + 0.9 part... engineered
        // check below just asserts exact >= greedy.
        let jobs = vec![
            Job::new(0, 0.9, 0.0, 2.0),
            Job::new(1, 1.0, 0.0, 1.0),
            Job::new(2, 1.0, 1.0, 2.0),
        ];
        let inst = Instance::new(jobs, 1, 2.0).unwrap();
        for cap in [1.0, 1.2, 1.45, 2.0] {
            let g = max_throughput_greedy(&inst, cap);
            let e = max_throughput_exact(&inst, cap);
            assert!(e.throughput() >= g.throughput(), "cap {cap}");
        }
    }

    #[test]
    fn full_admission_above_the_peak() {
        for seed in [3u64, 4] {
            let inst = families::general(10, 2, 2.0).gen(seed);
            let peak = min_peak_speed(&inst);
            let g = max_throughput_greedy(&inst, peak * 1.01);
            assert_eq!(g.throughput(), 10, "everything fits above the min peak");
            assert!(g.rejected.is_empty());
            let e = max_throughput_exact(&inst, peak * 1.01);
            assert_eq!(e.throughput(), 10);
        }
    }

    #[test]
    fn throughput_is_monotone_in_the_cap() {
        let inst = families::unit_arbitrary(12, 2, 2.0).gen(5);
        let peak = min_peak_speed(&inst);
        let mut prev = 0usize;
        for f in [0.3, 0.5, 0.7, 0.9, 1.1] {
            let t = max_throughput_greedy(&inst, peak * f).throughput();
            assert!(t >= prev, "greedy throughput dropped as the cap rose");
            prev = t;
        }
        assert_eq!(prev, 12);
    }

    #[test]
    #[should_panic(expected = "for small n")]
    fn exact_guards_size() {
        let inst = families::general(21, 2, 2.0).gen(0);
        max_throughput_exact(&inst, 1.0);
    }
}
