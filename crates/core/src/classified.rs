//! ClassifiedRR — work classification + per-class round-robin for arbitrary
//! works with agreeable deadlines (the paper's R3 regime).
//!
//! Heterogeneous works break plain round-robin: one huge job dealt like a
//! unit job starves its machine. The classification fix (the source of the
//! `2^α`-type factors in the paper's `α^α 2^{4α}` analysis): bucket jobs into
//! **power-of-two work classes** `[2^k·w_min, 2^(k+1)·w_min)`. Inside a class
//! works differ by at most 2×, so the class behaves like a unit-work
//! agreeable instance and sorted round-robin (with a per-class rotating
//! cursor) spreads it near-optimally; classes are dealt independently and the
//! per-machine union is re-optimized with YDS.

use crate::assignment::Assignment;
use ssp_model::{Instance, Schedule};

/// The classified round-robin assignment (power-of-two classes). Also fine
/// as a heuristic outside the agreeable regime.
pub fn classified_assignment(instance: &Instance) -> Assignment {
    classified_assignment_with_base(instance, 2.0)
}

/// [`classified_assignment`] with an explicit class base `b > 1` — the
/// ablation axis of EXP-10: works in `[b^k·w_min, b^(k+1)·w_min)` share a
/// class. `b = 2` is the paper's choice; `b → ∞` degenerates to plain RR
/// (one class), small `b` approaches per-work classes.
pub fn classified_assignment_with_base(instance: &Instance, base: f64) -> Assignment {
    assert!(base > 1.0, "class base must exceed 1");
    let n = instance.len();
    let mut machine_of = vec![0usize; n];
    if n == 0 {
        return Assignment::new(machine_of);
    }
    let w_min = instance
        .jobs()
        .iter()
        .map(|j| j.work)
        .fold(f64::INFINITY, f64::min);
    let class_of = |w: f64| -> usize {
        // floor(log_base(w / w_min)), robust at exact class boundaries.
        ((w / w_min).log2() / base.log2() + 1e-12).floor() as usize
    };
    let num_classes = instance
        .jobs()
        .iter()
        .map(|j| class_of(j.work))
        .max()
        .unwrap()
        + 1;
    let m = instance.machines();
    // Per-class rotating cursor; offset classes by their index so different
    // classes do not all start hammering machine 0.
    let mut cursor: Vec<usize> = (0..num_classes).map(|c| c % m).collect();
    for &i in &instance.release_order() {
        let c = class_of(instance.job(i).work);
        machine_of[i] = cursor[c];
        cursor[c] = (cursor[c] + 1) % m;
    }
    Assignment::new(machine_of)
}

/// ClassifiedRR followed by per-machine YDS.
pub fn classified_rr(instance: &Instance) -> Schedule {
    crate::assignment::assignment_schedule(instance, &classified_assignment(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::assignment_energy;
    use crate::exact::exact_nonmigratory;
    use crate::rr::rr_assignment;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::{Instance, Job};
    use ssp_workloads::families;

    /// The paper's factor for this regime (very loose; measurements sit far
    /// below it).
    fn bound(alpha: f64) -> f64 {
        alpha.powf(alpha) * 2.0f64.powf(4.0 * alpha)
    }

    #[test]
    fn unit_works_collapse_to_plain_rr() {
        let inst = families::unit_agreeable(20, 3, 2.0).gen(5);
        assert_eq!(classified_assignment(&inst), rr_assignment(&inst));
    }

    #[test]
    fn heavy_jobs_are_dealt_in_their_own_class() {
        // 2 machines; alternating heavy (w=8) and light (w=1) jobs released
        // together in pairs. Plain RR in release order puts both heavies of a
        // pair... actually deals heavy+light per machine; classified RR deals
        // heavies round-robin *among themselves*, so consecutive heavies
        // alternate machines.
        let mut jobs = Vec::new();
        for k in 0..4u32 {
            jobs.push(Job::new(
                2 * k,
                8.0,
                k as f64 * 10.0,
                k as f64 * 10.0 + 12.0,
            ));
            jobs.push(Job::new(
                2 * k + 1,
                1.0,
                k as f64 * 10.0,
                k as f64 * 10.0 + 12.0,
            ));
        }
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let a = classified_assignment(&inst);
        let heavy_machines: Vec<usize> = (0..4).map(|k| a.machine_of(2 * k)).collect();
        assert_ne!(heavy_machines[0], heavy_machines[1]);
        assert_ne!(heavy_machines[1], heavy_machines[2]);
    }

    #[test]
    fn within_paper_bound_against_migratory_lb() {
        for (seed, m, alpha) in [(1u64, 2usize, 2.0), (2, 4, 2.5), (3, 3, 1.5)] {
            let inst = families::weighted_agreeable(24, m, alpha).gen(seed);
            let e = assignment_energy(&inst, &classified_assignment(&inst));
            let lb = ssp_migratory::bal::bal(&inst).energy;
            let ratio = e / lb;
            assert!(ratio >= 1.0 - 1e-6);
            assert!(
                ratio <= bound(alpha),
                "seed {seed}: ratio {ratio} exceeds bound {}",
                bound(alpha)
            );
        }
    }

    #[test]
    fn reasonable_against_exact_on_small_instances() {
        for seed in [7u64, 8] {
            let inst = families::weighted_agreeable(8, 2, 2.0).gen(seed);
            let approx = assignment_energy(&inst, &classified_assignment(&inst));
            let opt = exact_nonmigratory(&inst).energy;
            let ratio = approx / opt;
            assert!(ratio >= 1.0 - 1e-9);
            // Empirical sanity: the measured gap on these families is small
            // even though the proof-level bound is huge.
            assert!(ratio <= 2.0, "seed {seed}: ratio {ratio}");
        }
    }

    #[test]
    fn schedule_validates_non_migratory() {
        let inst = families::weighted_agreeable(30, 4, 2.0).gen(9);
        let s = classified_rr(&inst);
        s.validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
    }

    #[test]
    fn beats_plain_rr_on_bimodal_works() {
        // Bimodal loads where naive RR alternation correlates classes onto
        // the same machine; classification decorrelates them.
        let mut jobs = Vec::new();
        for k in 0..8u32 {
            let heavy = k % 2 == 0;
            let w = if heavy { 10.0 } else { 1.0 };
            jobs.push(Job::new(k, w, 0.0, 20.0));
        }
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        let e_class = assignment_energy(&inst, &classified_assignment(&inst));
        let e_rr = assignment_energy(&inst, &rr_assignment(&inst));
        assert!(
            e_class <= e_rr * (1.0 + 1e-9),
            "classified {e_class} worse than plain RR {e_rr}"
        );
    }
}
